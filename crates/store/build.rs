//! Computes the workspace *code digest* baked into `lightwsp-store`.
//!
//! The digest fingerprints every Rust source file whose behaviour can
//! influence a stored simulation result: the IR, compiler, memory
//! system, simulator, model, workload roster, the core facade, and the
//! store itself (its key/codec formats are part of a record's meaning).
//! The `lightwsp-bench` harness is deliberately excluded — it only
//! orchestrates which cells run, and each cell's own inputs are already
//! captured by its configuration digest.
//!
//! Every hashed file is also declared `rerun-if-changed`, so editing
//! any of them rebuilds this crate and flips
//! `env!("LIGHTWSP_CODE_DIGEST")` — which is exactly the invalidation
//! signal the incremental re-bench machinery keys on.

use std::fs;
use std::path::{Path, PathBuf};

/// Crates (relative to `crates/`) whose sources define what a result
/// *means*. Keep in sync with the list in `DESIGN.md` §6.6.
const DIGESTED_CRATES: &[&str] = &[
    "ir",
    "compiler",
    "mem",
    "sim",
    "model",
    "workloads",
    "core",
    "store",
    "shims/rand",
];

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap());
    let crates_root = manifest.parent().unwrap().to_path_buf();
    let mut files = Vec::new();
    for krate in DIGESTED_CRATES {
        collect(&crates_root.join(krate).join("src"), &mut files);
    }
    // build.rs of this crate is part of the scheme too.
    files.push(manifest.join("build.rs"));
    files.sort();

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for file in &files {
        // Hash the path relative to crates/ (stable across checkouts)
        // and the file contents.
        let rel = file
            .strip_prefix(&crates_root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        fnv1a(&mut h, rel.as_bytes());
        fnv1a(&mut h, &[0]);
        fnv1a(&mut h, &fs::read(file).unwrap_or_default());
        fnv1a(&mut h, &[0xFF]);
        println!("cargo:rerun-if-changed={}", file.display());
    }
    println!("cargo:rustc-env=LIGHTWSP_CODE_DIGEST={h:016x}");
}
