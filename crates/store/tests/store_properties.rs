//! Property tests for the result store.
//!
//! Two contracts matter to the incremental re-bench machinery and are
//! pinned here:
//!
//! 1. **Compaction invisibility** — any interleaving of puts, flushes
//!    (batch seals) and merge/compaction steps yields exactly the same
//!    queryable contents as sealing every entry into one batch: queries
//!    are last-writer-wins by global sequence number, independent of
//!    the batch layout history.
//! 2. **Digest invalidation exactness** — perturbing one configuration
//!    knob invalidates exactly the cells whose config digest includes
//!    that knob, and perturbing the code digest invalidates every cell
//!    at once (that is the contract the warm/cold CI job relies on).

use lightwsp_store::{digest_debug, Batch, Entry, ResultStore, StoreKey};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A compact op language: put (key-index, value-tag), flush, compact.
#[derive(Clone, Debug)]
enum Op {
    Put(u8, u16),
    Flush,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k % 24, v)),
        Just(Op::Flush),
        Just(Op::Compact),
    ]
}

/// Key space: three kinds, a few workloads/schemes, point from index.
fn key(i: u8) -> StoreKey {
    let kinds = ["run", "crashcell", "steptime"];
    let workloads = ["bzip2", "hmmer", "queue"];
    StoreKey::new(
        kinds[(i % 3) as usize],
        workloads[(i / 3 % 3) as usize],
        if i.is_multiple_of(2) {
            "LightWSP"
        } else {
            "Capri"
        },
        u64::from(i / 6),
        u64::from(i % 5),
        0xC0DE,
    )
}

proptest! {
    /// Contract 1: the store's merged view equals a single sealed batch
    /// of the same entries, whatever the flush/compaction interleaving.
    #[test]
    fn interleaved_ops_match_single_batch(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let store = ResultStore::in_memory_with(0xC0DE);
        let mut all: Vec<Entry> = Vec::new();
        let mut seq = 0u64;
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let value = format!("v{v}");
                    all.push(Entry { key: key(*k), seq, value: value.clone() });
                    seq += 1;
                    store.put(key(*k), value);
                }
                Op::Flush => { store.flush().unwrap(); }
                Op::Compact => { store.compact_all().unwrap(); }
            }
        }
        let reference = Batch::seal(all);
        let got: Vec<Entry> = store.cursor(None).collect();
        prop_assert_eq!(got.len(), reference.entries().len());
        for (g, r) in got.iter().zip(reference.entries()) {
            prop_assert_eq!(&g.key, &r.key);
            prop_assert_eq!(&g.value, &r.value, "key {}", g.key);
        }
        // Point lookups agree too, and kind cursors partition the view.
        for r in reference.entries() {
            let got = store.get(&r.key);
            prop_assert_eq!(got.as_deref(), Some(r.value.as_str()));
        }
        let by_kind: usize = ["run", "crashcell", "steptime"]
            .iter()
            .map(|k| store.kind_entries(k).len())
            .sum();
        prop_assert_eq!(by_kind, reference.entries().len());
    }

    /// Contract 2: knob perturbation invalidates exactly the cells
    /// whose config digest includes that knob; code-digest perturbation
    /// invalidates everything.
    #[test]
    fn digest_perturbation_invalidates_exactly_affected_cells(
        knob_a in any::<u32>(),
        knob_b in any::<u32>(),
        delta in 1u32..1000,
    ) {
        let code = 0xC0DEu64;
        let workloads = ["bzip2", "hmmer", "queue", "btree"];
        // Scheme "narrow" depends only on knob_a; scheme "wide" on both.
        let keys_for = |a: u32, b: u32, code: u64| -> BTreeMap<StoreKey, &'static str> {
            let mut m = BTreeMap::new();
            for w in workloads {
                m.insert(
                    StoreKey::new("run", w, "narrow", digest_debug(&a), 0, code),
                    w,
                );
                m.insert(
                    StoreKey::new("run", w, "wide", digest_debug(&(a, b)), 0, code),
                    w,
                );
            }
            m
        };

        let store = ResultStore::in_memory_with(code);
        for (k, w) in keys_for(knob_a, knob_b, code) {
            store.put(k, format!("result-{w}"));
        }

        // Unchanged knobs: every cell is served.
        for k in keys_for(knob_a, knob_b, code).keys() {
            prop_assert!(store.get(k).is_some());
        }
        // Perturb knob_b: exactly the "wide" cells miss.
        for (k, _) in keys_for(knob_a, knob_b.wrapping_add(delta), code) {
            let hit = store.get(&k).is_some();
            prop_assert_eq!(hit, k.scheme == "narrow", "key {}", k);
        }
        // Perturb knob_a: every cell misses (both schemes depend on it).
        for k in keys_for(knob_a.wrapping_add(delta), knob_b, code).keys() {
            prop_assert!(store.get(k).is_none(), "key {}", k);
        }
        // Perturb the code digest: every cell misses.
        for k in keys_for(knob_a, knob_b, code ^ u64::from(delta)).keys() {
            prop_assert!(store.get(k).is_none(), "key {}", k);
        }
    }
}
