//! Immutable sorted result batches.
//!
//! A [`Batch`] is the store's unit of persistence: a sorted,
//! deduplicated run of `(key, seq, value)` entries, never modified
//! after sealing (the feldera/DBSP "batch" discipline). Appends build
//! new batches; compaction merges existing ones; queries binary-search
//! or cursor over them. Each batch covers a contiguous range of global
//! sequence numbers, and on key collisions the entry with the higher
//! sequence number wins — so merging batches in any order yields the
//! same queryable contents (the determinism property the proptests
//! pin).
//!
//! The on-disk form is line-oriented text: a header line followed by
//! one tab-separated entry per line, with `\t`/`\n`/`\\` escaped in
//! string fields. Text keeps the artifacts greppable and
//! diff-reviewable; at the ~10⁶-entry scale the mega-sweeps produce,
//! parsing is far from the bottleneck (the simulations behind a batch
//! cost seconds to hours).

use crate::key::StoreKey;

/// One stored record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The record's coordinate.
    pub key: StoreKey,
    /// Global sequence number (assigned by the store at put time);
    /// resolves key collisions last-writer-wins.
    pub seq: u64,
    /// The record payload (an opaque codec string to the store).
    pub value: String,
}

/// An immutable sorted batch of entries.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    entries: Vec<Entry>,
    seq_lo: u64,
    seq_hi: u64,
}

/// Escapes tabs, newlines and backslashes for the line format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl Batch {
    /// Seals `entries` into a batch: sorts by key, and on duplicate
    /// keys keeps only the entry with the highest sequence number.
    /// The sequence range is taken over *all* input entries so merged
    /// batches keep covering their inputs' ranges.
    pub fn seal(mut entries: Vec<Entry>) -> Batch {
        if entries.is_empty() {
            return Batch::default();
        }
        let seq_lo = entries.iter().map(|e| e.seq).min().unwrap_or(0);
        let seq_hi = entries.iter().map(|e| e.seq).max().unwrap_or(0);
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        entries.dedup_by(|next, prev| {
            // `dedup_by` keeps `prev`; the sort put the higher seq in
            // `next`, so move it into the survivor slot.
            if next.key == prev.key {
                std::mem::swap(prev, next);
                true
            } else {
                false
            }
        });
        Batch {
            entries,
            seq_lo,
            seq_hi,
        }
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the batch holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lowest sequence number covered.
    pub fn seq_lo(&self) -> u64 {
        self.seq_lo
    }

    /// Highest sequence number covered.
    pub fn seq_hi(&self) -> u64 {
        self.seq_hi
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Binary-searches for `key`.
    pub fn get(&self, key: &StoreKey) -> Option<&Entry> {
        self.entries
            .binary_search_by(|e| e.key.cmp(key))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Index of the first entry with `entry.key >= key`.
    pub fn lower_bound(&self, key: &StoreKey) -> usize {
        self.entries.partition_point(|e| e.key < *key)
    }

    /// Merges two batches into one (two-way sorted merge; on key
    /// collisions the higher sequence number wins). The result covers
    /// the union of both sequence ranges.
    pub fn merge(a: &Batch, b: &Batch) -> Batch {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.entries.len() && j < b.entries.len() {
            let (ea, eb) = (&a.entries[i], &b.entries[j]);
            match ea.key.cmp(&eb.key) {
                std::cmp::Ordering::Less => {
                    out.push(ea.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(eb.clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(if ea.seq >= eb.seq {
                        ea.clone()
                    } else {
                        eb.clone()
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a.entries[i..]);
        out.extend_from_slice(&b.entries[j..]);
        Batch {
            entries: out,
            seq_lo: a.seq_lo.min(b.seq_lo),
            seq_hi: a.seq_hi.max(b.seq_hi),
        }
    }

    /// Serialises the batch to the line format.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "lightwsp-store-batch v1 {} {} {}\n",
            self.seq_lo,
            self.seq_hi,
            self.entries.len()
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:016x}\t{}\t{:016x}\t{}\t{}\n",
                escape(&e.key.kind),
                escape(&e.key.workload),
                escape(&e.key.scheme),
                e.key.config,
                e.key.point,
                e.key.code,
                e.seq,
                escape(&e.value),
            ));
        }
        out
    }

    /// Parses [`Batch::encode`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line. Entries are
    /// re-sealed on load, so a decoded batch is valid even if the file
    /// was hand-edited out of order.
    pub fn decode(text: &str) -> Result<Batch, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty batch file")?;
        let mut hp = header.split(' ');
        if hp.next() != Some("lightwsp-store-batch") || hp.next() != Some("v1") {
            return Err(format!("bad batch header: {header}"));
        }
        let seq_lo: u64 = hp
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad header seq_lo")?;
        let seq_hi: u64 = hp
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad header seq_hi")?;
        let count: usize = hp
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad header count")?;
        let mut entries = Vec::with_capacity(count);
        for (n, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 8 {
                return Err(format!(
                    "line {}: expected 8 fields, got {}",
                    n + 2,
                    fields.len()
                ));
            }
            let parse_hex =
                |s: &str| u64::from_str_radix(s, 16).map_err(|e| format!("line {}: {e}", n + 2));
            entries.push(Entry {
                key: StoreKey {
                    kind: unescape(fields[0]),
                    workload: unescape(fields[1]),
                    scheme: unescape(fields[2]),
                    config: parse_hex(fields[3])?,
                    point: fields[4]
                        .parse()
                        .map_err(|e| format!("line {}: {e}", n + 2))?,
                    code: parse_hex(fields[5])?,
                },
                seq: fields[6]
                    .parse()
                    .map_err(|e| format!("line {}: {e}", n + 2))?,
                value: unescape(fields[7]),
            });
        }
        if entries.len() != count {
            return Err(format!(
                "header promises {count} entries, file has {}",
                entries.len()
            ));
        }
        let mut b = Batch::seal(entries);
        // Preserve the recorded coverage: a merged batch can cover seqs
        // whose entries were superseded and dropped.
        b.seq_lo = seq_lo;
        b.seq_hi = seq_hi;
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(w: &str, point: u64) -> StoreKey {
        StoreKey::new("run", w, "LightWSP", 42, point, 7)
    }

    fn entry(w: &str, point: u64, seq: u64, value: &str) -> Entry {
        Entry {
            key: key(w, point),
            seq,
            value: value.to_string(),
        }
    }

    #[test]
    fn seal_sorts_and_dedupes_last_writer_wins() {
        let b = Batch::seal(vec![
            entry("b", 0, 3, "old"),
            entry("a", 1, 2, "x"),
            entry("b", 0, 5, "new"),
        ]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(&key("b", 0)).unwrap().value, "new");
        assert_eq!((b.seq_lo(), b.seq_hi()), (2, 5));
    }

    #[test]
    fn merge_prefers_higher_seq() {
        let a = Batch::seal(vec![entry("a", 0, 1, "v1"), entry("c", 0, 2, "c1")]);
        let b = Batch::seal(vec![entry("a", 0, 9, "v2"), entry("b", 0, 3, "b1")]);
        let m = Batch::merge(&a, &b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&key("a", 0)).unwrap().value, "v2");
        assert_eq!((m.seq_lo(), m.seq_hi()), (1, 9));
    }

    #[test]
    fn encode_decode_roundtrip_with_nasty_strings() {
        let mut e = entry("w\tname", 3, 11, "line1\nline2\\tail\tend");
        e.key.scheme = "s\\x".into();
        let b = Batch::seal(vec![e.clone(), entry("z", 0, 12, "")]);
        let d = Batch::decode(&b.encode()).unwrap();
        assert_eq!(d.entries(), b.entries());
        assert_eq!((d.seq_lo(), d.seq_hi()), (b.seq_lo(), b.seq_hi()));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Batch::decode("").is_err());
        assert!(Batch::decode("wrong header\n").is_err());
        assert!(Batch::decode("lightwsp-store-batch v1 0 0 1\nonly\tthree\tfields\n").is_err());
    }
}
