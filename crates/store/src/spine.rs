//! The spine: a collection of immutable batches presenting one merged,
//! last-writer-wins view.
//!
//! Modelled on the DBSP/feldera trace spine: appends push whole sealed
//! [`Batch`]es, queries run against *all* resident batches through a
//! k-way merged [`Cursor`], and a size-tiered policy picks adjacent
//! batch pairs to merge so the batch count stays bounded without ever
//! mutating a sealed batch. Because key collisions always resolve to
//! the highest sequence number — inside a batch, across batches in a
//! cursor, and during merges alike — the queryable contents are
//! independent of when or how often compaction ran.

use crate::batch::{Batch, Entry};
use crate::key::StoreKey;
use std::sync::Arc;

/// Merge fan-out: a merge step fires once a spine holds more batches
/// than this.
pub const MERGE_FANOUT: usize = 4;

/// An ordered collection of immutable batches (oldest first).
#[derive(Clone, Debug, Default)]
pub struct Spine {
    batches: Vec<Arc<Batch>>,
}

impl Spine {
    /// An empty spine.
    pub fn new() -> Spine {
        Spine::default()
    }

    /// Inserts a sealed batch, keeping the list ordered by sequence
    /// coverage (oldest first). Empty batches are dropped.
    pub fn insert(&mut self, batch: Arc<Batch>) {
        if batch.is_empty() {
            return;
        }
        let at = self
            .batches
            .partition_point(|b| b.seq_lo() <= batch.seq_lo());
        self.batches.insert(at, batch);
    }

    /// Number of resident batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Total resident entries (pre-dedup across batches).
    pub fn entry_count(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// The resident batches, oldest first.
    pub fn batches(&self) -> &[Arc<Batch>] {
        &self.batches
    }

    /// Looks `key` up across all batches (newest batch wins ties by
    /// construction: entries carry their sequence number).
    pub fn get(&self, key: &StoreKey) -> Option<&Entry> {
        self.batches
            .iter()
            .filter_map(|b| b.get(key))
            .max_by_key(|e| e.seq)
    }

    /// Picks the next merge: the adjacent pair with the smallest
    /// combined entry count, but only when the spine exceeds
    /// [`MERGE_FANOUT`] batches. Deterministic: ties go to the lower
    /// index.
    pub fn merge_candidate(&self) -> Option<(usize, usize)> {
        if self.batches.len() <= MERGE_FANOUT {
            return None;
        }
        (0..self.batches.len() - 1)
            .min_by_key(|&i| self.batches[i].len() + self.batches[i + 1].len())
            .map(|i| (i, i + 1))
    }

    /// Replaces batches `i` and `i + 1` with `merged` (built by the
    /// caller via [`Batch::merge`], possibly off-lock). Returns the
    /// two replaced batches so the caller can retire their files.
    pub fn replace_pair(&mut self, i: usize, merged: Arc<Batch>) -> (Arc<Batch>, Arc<Batch>) {
        let b = self.batches.remove(i + 1);
        let a = std::mem::replace(&mut self.batches[i], merged);
        (a, b)
    }

    /// A merged, deduplicated cursor over the whole spine.
    pub fn cursor(&self) -> Cursor {
        Cursor::new(self.batches.clone(), None)
    }

    /// A cursor positioned at the first key of `kind` that stops after
    /// the family ends.
    pub fn cursor_kind(&self, kind: &str) -> Cursor {
        let mut c = Cursor::new(self.batches.clone(), Some(kind.to_string()));
        c.seek(&StoreKey::kind_floor(kind));
        c
    }
}

/// A merged last-writer-wins iterator over a snapshot of batches.
///
/// Owns `Arc` clones of the batches it reads, so it stays valid after
/// the spine advances (appends/merges behind it affect later cursors,
/// not this one) — the "consistent view" half of the spine contract.
pub struct Cursor {
    batches: Vec<Arc<Batch>>,
    pos: Vec<usize>,
    kind: Option<String>,
}

impl Cursor {
    fn new(batches: Vec<Arc<Batch>>, kind: Option<String>) -> Cursor {
        let pos = vec![0; batches.len()];
        Cursor { batches, pos, kind }
    }

    /// Advances every head to the first entry `>= key`.
    pub fn seek(&mut self, key: &StoreKey) {
        for (b, p) in self.batches.iter().zip(self.pos.iter_mut()) {
            *p = (*p).max(b.lower_bound(key));
        }
    }

    /// The smallest un-consumed key, if any (ignoring the kind bound).
    fn min_key(&self) -> Option<StoreKey> {
        self.batches
            .iter()
            .zip(&self.pos)
            .filter_map(|(b, &p)| b.entries().get(p).map(|e| e.key.clone()))
            .min()
    }
}

impl Iterator for Cursor {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        let key = self.min_key()?;
        if let Some(kind) = &self.kind {
            if key.kind != *kind {
                return None;
            }
        }
        // Take the winning entry for `key` and advance every head
        // sitting on it.
        let mut best: Option<Entry> = None;
        for (b, p) in self.batches.iter().zip(self.pos.iter_mut()) {
            if let Some(e) = b.entries().get(*p) {
                if e.key == key {
                    if best.as_ref().is_none_or(|cur| e.seq > cur.seq) {
                        best = Some(e.clone());
                    }
                    *p += 1;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(w: &str, seq: u64, value: &str) -> Entry {
        Entry {
            key: StoreKey::new("run", w, "s", 0, 0, 0),
            seq,
            value: value.into(),
        }
    }

    fn spine_of(groups: &[&[Entry]]) -> Spine {
        let mut s = Spine::new();
        for g in groups {
            s.insert(Arc::new(Batch::seal(g.to_vec())));
        }
        s
    }

    #[test]
    fn cursor_is_merged_and_last_writer_wins() {
        let s = spine_of(&[
            &[entry("a", 1, "a1"), entry("c", 2, "c1")],
            &[entry("b", 3, "b1"), entry("c", 4, "c2")],
        ]);
        let got: Vec<(String, String)> = s
            .cursor()
            .map(|e| (e.key.workload.clone(), e.value.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), "a1".into()),
                ("b".into(), "b1".into()),
                ("c".into(), "c2".into()),
            ]
        );
        assert_eq!(s.get(&entry("c", 0, "").key).unwrap().value, "c2");
    }

    #[test]
    fn merge_candidate_fires_only_above_fanout() {
        let one = [entry("a", 1, "x")];
        let mut groups: Vec<&[Entry]> = Vec::new();
        for _ in 0..MERGE_FANOUT {
            groups.push(&one);
        }
        let s = spine_of(&groups);
        assert!(s.merge_candidate().is_none());
        groups.push(&one);
        let s = spine_of(&groups);
        assert!(s.merge_candidate().is_some());
    }

    #[test]
    fn replace_pair_preserves_query_results() {
        let mut s = spine_of(&[
            &[entry("a", 1, "a1")],
            &[entry("a", 2, "a2"), entry("b", 3, "b1")],
            &[entry("c", 4, "c1")],
        ]);
        let merged = Arc::new(Batch::merge(&s.batches()[0], &s.batches()[1]));
        s.replace_pair(0, merged);
        assert_eq!(s.batch_count(), 2);
        assert_eq!(s.get(&entry("a", 0, "").key).unwrap().value, "a2");
        assert_eq!(s.cursor().count(), 3);
    }

    #[test]
    fn kind_cursor_stops_at_family_end() {
        let mut s = Spine::new();
        let mut e1 = entry("w", 1, "r");
        e1.key.kind = "run".into();
        let mut e2 = entry("w", 2, "t");
        e2.key.kind = "steptime".into();
        s.insert(Arc::new(Batch::seal(vec![e1, e2])));
        let runs: Vec<Entry> = s.cursor_kind("run").collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].value, "r");
    }
}
