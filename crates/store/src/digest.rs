//! Input digests: the invalidation currency of the result store.
//!
//! A stored record is addressed by a [`StoreKey`](crate::StoreKey)
//! whose `config` field is a digest of *everything the producing
//! computation consumed* (options, workload spec, budgets, seeds) and
//! whose `code` field is the workspace **code digest** — a build-time
//! fingerprint of every source file that can change what a simulation
//! produces (see `build.rs`). A cell is served from the store only when
//! both digests match, so:
//!
//! * changing a configuration knob invalidates exactly the cells whose
//!   config digest includes that knob;
//! * changing any simulation-relevant source file flips the code digest
//!   and invalidates every cell at once.
//!
//! Digests are 64-bit FNV-1a over stable text (usually a value's
//! `Debug` rendering, the same fingerprinting idiom the campaign's
//! in-memory caches use). FNV is not cryptographic; keys also carry the
//! workload/scheme names in the clear, so an accidental collision would
//! additionally have to agree on those to alias a record.

use std::fmt::Debug;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// 64-bit FNV-1a over a byte string.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a over a string.
pub fn digest_str(s: &str) -> u64 {
    digest_bytes(s.as_bytes())
}

/// Digest of a value's `Debug` rendering — the standard way to
/// fingerprint a configuration struct for a store key.
pub fn digest_debug<T: Debug + ?Sized>(value: &T) -> u64 {
    digest_str(&format!("{value:?}"))
}

/// Order-sensitive combination of two digests (not XOR, so swapped
/// operands produce a different result).
pub fn combine(a: u64, b: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&a.to_le_bytes());
    bytes[8..].copy_from_slice(&b.to_le_bytes());
    digest_bytes(&bytes)
}

/// The code digest baked in at build time (hex; see `build.rs`).
pub const BUILD_CODE_DIGEST_HEX: &str = env!("LIGHTWSP_CODE_DIGEST");

/// The build-time code digest as a number.
pub fn build_code_digest() -> u64 {
    u64::from_str_radix(BUILD_CODE_DIGEST_HEX, 16).expect("build script emits 16 hex digits")
}

/// The effective code digest: the build-time digest, perturbed by
/// `salt` when one is given. The CI incremental-rebench job uses
/// `LIGHTWSP_DIGEST_SALT` (threaded through [`code_digest_from_env`])
/// to simulate a code change without editing a source file.
pub fn code_digest(salt: Option<&str>) -> u64 {
    match salt {
        None | Some("") => build_code_digest(),
        Some(s) => combine(build_code_digest(), digest_str(s)),
    }
}

/// [`code_digest`] with the salt taken from the `LIGHTWSP_DIGEST_SALT`
/// environment variable (unset or empty = unsalted).
pub fn code_digest_from_env() -> u64 {
    code_digest(std::env::var("LIGHTWSP_DIGEST_SALT").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_distinct() {
        assert_eq!(digest_str("abc"), digest_str("abc"));
        assert_ne!(digest_str("abc"), digest_str("abd"));
        assert_ne!(digest_debug(&(1u32, "x")), digest_debug(&(2u32, "x")));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn salt_perturbs_code_digest() {
        assert_eq!(code_digest(None), build_code_digest());
        assert_eq!(code_digest(Some("")), build_code_digest());
        assert_ne!(code_digest(Some("x")), build_code_digest());
        assert_ne!(code_digest(Some("x")), code_digest(Some("y")));
    }
}
