//! Result-store keys.
//!
//! Every record is addressed by a [`StoreKey`] — the
//! `(workload, scheme, config, point, code-digest)` coordinate of the
//! roadmap, plus a leading `kind` discriminator so one store can hold
//! heterogeneous record families (whole-run results, crash-audit
//! cells, step/exec timing records, sweep-engine comparisons, …)
//! without colliding. Keys order lexicographically by field, which
//! groups a cursor's walk by record family, then workload, then
//! series — the natural aggregation order for figure emission.

use std::fmt;

/// The sort key of one stored record.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// Record family (`"run"`, `"crashcell"`, `"steptime"`, …).
    pub kind: String,
    /// Workload / case / structure name — the x-axis of most figures.
    pub workload: String,
    /// Scheme or configuration series name.
    pub scheme: String,
    /// Digest of the full input configuration (options, spec, budget,
    /// seeds) — see [`crate::digest`].
    pub config: u64,
    /// Sweep point within the cell (crash cycle, case index); 0 for
    /// whole-run records.
    pub point: u64,
    /// Workspace code digest of the producing build.
    pub code: u64,
}

impl StoreKey {
    /// Builds a key.
    pub fn new(
        kind: impl Into<String>,
        workload: impl Into<String>,
        scheme: impl Into<String>,
        config: u64,
        point: u64,
        code: u64,
    ) -> StoreKey {
        StoreKey {
            kind: kind.into(),
            workload: workload.into(),
            scheme: scheme.into(),
            config,
            point,
            code,
        }
    }

    /// The smallest key of a record family — the seek target for a
    /// cursor walking one `kind`.
    pub fn kind_floor(kind: &str) -> StoreKey {
        StoreKey::new(kind, "", "", 0, 0, 0)
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/cfg={:016x}/pt={}/code={:016x}",
            self.kind, self.workload, self.scheme, self.config, self.point, self.code
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_kind_then_workload() {
        let a = StoreKey::new("run", "bzip2", "LightWSP", 1, 0, 1);
        let b = StoreKey::new("run", "hmmer", "Capri", 0, 0, 0);
        let c = StoreKey::new("steptime", "aaa", "zzz", 0, 0, 0);
        assert!(a < b, "workload orders within a kind");
        assert!(b < c, "kind dominates");
        assert!(StoreKey::kind_floor("run") <= a);
    }

    #[test]
    fn point_and_code_break_ties() {
        let base = StoreKey::new("run", "w", "s", 7, 0, 10);
        let later_point = StoreKey::new("run", "w", "s", 7, 1, 10);
        let other_code = StoreKey::new("run", "w", "s", 7, 0, 11);
        assert!(base < later_point);
        assert!(base < other_code);
    }
}
