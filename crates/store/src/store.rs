//! The durable result store: a [`Spine`] of immutable batch files plus
//! a pending write buffer, cache statistics, and an optional background
//! compactor thread.
//!
//! ## Layout
//!
//! A store is a directory of `batch-<lo>-<hi>.lwsb` files, one sealed
//! [`Batch`] each, named by the contiguous global-sequence range they
//! cover. There is no manifest: opening a store globs the directory,
//! drops any file whose range is covered by a wider file (the only
//! leftover an interrupted compaction can produce — merged output is
//! renamed into place *before* its inputs are retired), and rebuilds
//! the spine. All writes go through a write-temp-then-rename protocol,
//! in keeping with the repository's crash-consistency sensibilities.
//!
//! ## Write path
//!
//! [`ResultStore::put`] appends to an in-memory pending buffer;
//! [`ResultStore::flush`] (or the automatic flush every
//! [`AUTOFLUSH_ENTRIES`] puts, or `Drop`) seals the buffer into a new
//! immutable batch, persists it, and hands it to the spine — campaigns
//! therefore append batches instead of accumulating results in memory.
//! Once the spine exceeds [`MERGE_FANOUT`](crate::MERGE_FANOUT) batches, adjacent pairs are
//! merged — inline by the flusher, or off the caller's path when
//! [`ResultStore::start_compactor`] has spawned the background merger.
//! Merging never changes query results (last-writer-wins by sequence
//! number at every level), which is the determinism property the
//! proptests pin.

use crate::batch::{Batch, Entry};
use crate::digest::code_digest_from_env;
use crate::key::StoreKey;
use crate::spine::{Cursor, Spine};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pending-buffer size that triggers an automatic flush.
pub const AUTOFLUSH_ENTRIES: usize = 4096;

/// Point-in-time counters of one store's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing (the caller then computes + puts).
    pub misses: u64,
    /// Records written this session.
    pub puts: u64,
    /// Batches sealed and appended this session.
    pub batches_appended: u64,
    /// Merge/compaction steps performed this session.
    pub compactions: u64,
    /// Batches loaded from disk at open.
    pub loaded_batches: u64,
    /// Entries loaded from disk at open.
    pub loaded_entries: u64,
    /// Batches currently resident in the spine.
    pub resident_batches: u64,
    /// Entries currently resident (pre-dedup across batches).
    pub resident_entries: u64,
}

struct State {
    spine: Spine,
    pending: Vec<Entry>,
    next_seq: u64,
}

struct Inner {
    dir: Option<PathBuf>,
    code: u64,
    state: Mutex<State>,
    /// Serialises mergers (inline flusher vs background compactor);
    /// held across the off-`state`-lock merge work.
    merge_lock: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    batches_appended: AtomicU64,
    compactions: AtomicU64,
    loaded_batches: u64,
    loaded_entries: u64,
    compactor: Mutex<CompactorState>,
    signal: Condvar,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CompactorState {
    /// No background thread: flushes merge inline.
    Inline,
    /// Background thread running; flushes just signal it.
    Running,
    /// Background thread asked to exit.
    ShuttingDown,
}

/// A digest-keyed, spine-backed result store. Cheap to clone (shared
/// handle); safe to use from campaign worker threads.
#[derive(Clone)]
pub struct ResultStore {
    inner: Arc<Inner>,
    /// Joins the compactor on the last handle's drop.
    thread: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

fn batch_file_name(b: &Batch) -> String {
    format!("batch-{:012}-{:012}.lwsb", b.seq_lo(), b.seq_hi())
}

fn parse_file_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("batch-")?.strip_suffix(".lwsb")?;
    let (lo, hi) = rest.split_once('-')?;
    Some((lo.parse().ok()?, hi.parse().ok()?))
}

fn write_atomically(dir: &Path, name: &str, contents: &str) -> io::Result<()> {
    let tmp = dir.join(format!(".tmp-{name}"));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, dir.join(name))
}

impl ResultStore {
    /// Opens (or creates) the store at `dir` with the environment's
    /// code digest (`LIGHTWSP_DIGEST_SALT` applied).
    ///
    /// # Errors
    ///
    /// Propagates directory/IO errors; a malformed batch file is an
    /// `InvalidData` error naming the file.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        ResultStore::open_with(dir, code_digest_from_env())
    }

    /// Opens (or creates) the store at `dir` with an explicit code
    /// digest (tests use this to model code changes without touching
    /// the environment).
    ///
    /// # Errors
    ///
    /// Propagates directory/IO errors and batch-file parse failures.
    pub fn open_with(dir: impl Into<PathBuf>, code: u64) -> io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Collect batch files; prune any whose seq range is covered by
        // a wider file (interrupted-compaction leftovers).
        let mut ranged: Vec<(u64, u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some((lo, hi)) = parse_file_name(&name) {
                ranged.push((lo, hi, entry.path()));
            } else if name.starts_with(".tmp-") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        ranged.sort();
        let keep: Vec<(u64, u64, PathBuf)> = ranged
            .iter()
            .filter(|(lo, hi, path)| {
                let covered = ranged
                    .iter()
                    .any(|(l, h, p)| p != path && *l <= *lo && *hi <= *h && (*l, *h) != (*lo, *hi));
                if covered {
                    let _ = std::fs::remove_file(path);
                }
                !covered
            })
            .cloned()
            .collect();

        let mut spine = Spine::new();
        let mut next_seq = 0u64;
        let mut loaded_batches = 0u64;
        let mut loaded_entries = 0u64;
        for (_, hi, path) in &keep {
            let text = std::fs::read_to_string(path)?;
            let batch = Batch::decode(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            loaded_batches += 1;
            loaded_entries += batch.len() as u64;
            next_seq = next_seq.max(hi + 1);
            spine.insert(Arc::new(batch));
        }
        Ok(ResultStore::from_parts(
            Some(dir),
            code,
            spine,
            next_seq,
            loaded_batches,
            loaded_entries,
        ))
    }

    /// A store with no backing directory (session-local caching and
    /// tests; batches live only in memory).
    pub fn in_memory() -> ResultStore {
        ResultStore::in_memory_with(code_digest_from_env())
    }

    /// [`ResultStore::in_memory`] with an explicit code digest.
    pub fn in_memory_with(code: u64) -> ResultStore {
        ResultStore::from_parts(None, code, Spine::new(), 0, 0, 0)
    }

    fn from_parts(
        dir: Option<PathBuf>,
        code: u64,
        spine: Spine,
        next_seq: u64,
        loaded_batches: u64,
        loaded_entries: u64,
    ) -> ResultStore {
        ResultStore {
            inner: Arc::new(Inner {
                dir,
                code,
                state: Mutex::new(State {
                    spine,
                    pending: Vec::new(),
                    next_seq,
                }),
                merge_lock: Mutex::new(()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                puts: AtomicU64::new(0),
                batches_appended: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
                loaded_batches,
                loaded_entries,
                compactor: Mutex::new(CompactorState::Inline),
                signal: Condvar::new(),
            }),
            thread: Arc::new(Mutex::new(None)),
        }
    }

    /// The code digest this store keys new records under.
    pub fn code(&self) -> u64 {
        self.inner.code
    }

    /// The backing directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &StoreKey) -> Option<String> {
        let state = self.inner.state.lock().unwrap();
        let found = state
            .pending
            .iter()
            .rev()
            .find(|e| e.key == *key)
            .map(|e| e.value.clone())
            .or_else(|| state.spine.get(key).map(|e| e.value.clone()));
        drop(state);
        match &found {
            Some(_) => self.inner.hits.fetch_add(1, Ordering::Relaxed),
            None => self.inner.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Buffers one record; flushes automatically at
    /// [`AUTOFLUSH_ENTRIES`].
    pub fn put(&self, key: StoreKey, value: String) {
        let mut state = self.inner.state.lock().unwrap();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.pending.push(Entry { key, seq, value });
        self.inner.puts.fetch_add(1, Ordering::Relaxed);
        if state.pending.len() >= AUTOFLUSH_ENTRIES {
            drop(state);
            let _ = self.flush();
        }
    }

    /// Serves `key` from the store or computes, records, and returns
    /// it. The boolean is `true` on a store hit.
    pub fn memo(&self, key: &StoreKey, compute: impl FnOnce() -> String) -> (String, bool) {
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let v = compute();
        self.put(key.clone(), v.clone());
        (v, false)
    }

    /// Seals the pending buffer into a new immutable batch, persists
    /// it, and triggers compaction (inline, or via the background
    /// thread when running). Returns the number of entries sealed.
    ///
    /// # Errors
    ///
    /// Propagates batch-file write errors (the sealed batch still
    /// lands in the in-memory spine first).
    pub fn flush(&self) -> io::Result<usize> {
        let mut state = self.inner.state.lock().unwrap();
        if state.pending.is_empty() {
            return Ok(0);
        }
        let batch = Batch::seal(std::mem::take(&mut state.pending));
        let n = batch.len();
        let batch = Arc::new(batch);
        state.spine.insert(batch.clone());
        drop(state);
        self.inner.batches_appended.fetch_add(1, Ordering::Relaxed);
        let mut result = Ok(n);
        if let Some(dir) = &self.inner.dir {
            result = write_atomically(dir, &batch_file_name(&batch), &batch.encode()).map(|()| n);
        }
        match *self.inner.compactor.lock().unwrap() {
            CompactorState::Running => self.inner.signal.notify_all(),
            _ => while self.merge_step() {},
        }
        result
    }

    /// Performs one merge step if the spine exceeds the fan-out.
    /// Returns whether a merge happened.
    fn merge_step(&self) -> bool {
        let _serial = self.inner.merge_lock.lock().unwrap();
        let (i, a, b) = {
            let state = self.inner.state.lock().unwrap();
            let Some((i, j)) = state.spine.merge_candidate() else {
                return false;
            };
            (
                i,
                state.spine.batches()[i].clone(),
                state.spine.batches()[j].clone(),
            )
        };
        self.merge_pair(i, &a, &b);
        true
    }

    /// Merges the pair at `i` (batches `a`, `b`): builds the merged
    /// batch off the state lock, persists it, swaps it in, then
    /// retires the input files. Caller holds `merge_lock`.
    fn merge_pair(&self, i: usize, a: &Arc<Batch>, b: &Arc<Batch>) {
        let merged = Arc::new(Batch::merge(a, b));
        if let Some(dir) = &self.inner.dir {
            // Persist the merged batch before retiring its inputs so an
            // interruption leaves covered files, never missing data.
            let _ = write_atomically(dir, &batch_file_name(&merged), &merged.encode());
        }
        {
            let mut state = self.inner.state.lock().unwrap();
            state.spine.replace_pair(i, merged.clone());
        }
        if let Some(dir) = &self.inner.dir {
            for old in [a, b] {
                let name = batch_file_name(old);
                if name != batch_file_name(&merged) {
                    let _ = std::fs::remove_file(dir.join(name));
                }
            }
        }
        self.inner.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes, then merges the whole spine down to a single batch
    /// (full compaction, regardless of the fan-out threshold).
    ///
    /// # Errors
    ///
    /// Propagates the flush's write error.
    pub fn compact_all(&self) -> io::Result<()> {
        self.flush()?;
        loop {
            let _serial = self.inner.merge_lock.lock().unwrap();
            let (a, b) = {
                let state = self.inner.state.lock().unwrap();
                if state.spine.batch_count() < 2 {
                    return Ok(());
                }
                (
                    state.spine.batches()[0].clone(),
                    state.spine.batches()[1].clone(),
                )
            };
            self.merge_pair(0, &a, &b);
        }
    }

    /// Spawns the background compactor: subsequent flushes return
    /// immediately and merging happens off the caller's path. Idempotent.
    pub fn start_compactor(&self) {
        let mut comp = self.inner.compactor.lock().unwrap();
        if *comp != CompactorState::Inline {
            return;
        }
        *comp = CompactorState::Running;
        drop(comp);
        let store = ResultStore {
            inner: self.inner.clone(),
            // The worker must not own the joiner slot (it would
            // self-join on drop).
            thread: Arc::new(Mutex::new(None)),
        };
        let handle = std::thread::Builder::new()
            .name("lightwsp-store-compactor".into())
            .spawn(move || loop {
                {
                    let mut comp = store.inner.compactor.lock().unwrap();
                    while *comp == CompactorState::Running
                        && store
                            .inner
                            .state
                            .lock()
                            .unwrap()
                            .spine
                            .merge_candidate()
                            .is_none()
                    {
                        comp = store.inner.signal.wait(comp).unwrap();
                    }
                    if *comp == CompactorState::ShuttingDown {
                        return;
                    }
                }
                while store.merge_step() {}
            })
            .expect("spawn store compactor");
        *self.thread.lock().unwrap() = Some(handle);
    }

    /// Stops the background compactor (if running), draining remaining
    /// merge work inline first. Idempotent.
    pub fn stop_compactor(&self) {
        {
            let mut comp = self.inner.compactor.lock().unwrap();
            if *comp != CompactorState::Running {
                return;
            }
            *comp = CompactorState::ShuttingDown;
            self.inner.signal.notify_all();
        }
        if let Some(handle) = self.thread.lock().unwrap().take() {
            let _ = handle.join();
        }
        *self.inner.compactor.lock().unwrap() = CompactorState::Inline;
        while self.merge_step() {}
    }

    /// A merged cursor over a consistent snapshot (pending entries
    /// included), optionally restricted to one record family.
    pub fn cursor(&self, kind: Option<&str>) -> Cursor {
        let state = self.inner.state.lock().unwrap();
        let mut spine = state.spine.clone();
        if !state.pending.is_empty() {
            spine.insert(Arc::new(Batch::seal(state.pending.clone())));
        }
        drop(state);
        match kind {
            Some(k) => spine.cursor_kind(k),
            None => spine.cursor(),
        }
    }

    /// All records of one family, in key order (cursor convenience).
    pub fn kind_entries(&self, kind: &str) -> Vec<Entry> {
        self.cursor(Some(kind)).collect()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.inner.state.lock().unwrap();
        let (resident_batches, resident_entries) = (
            state.spine.batch_count() as u64,
            (state.spine.entry_count() + state.pending.len()) as u64,
        );
        drop(state);
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            puts: self.inner.puts.load(Ordering::Relaxed),
            batches_appended: self.inner.batches_appended.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            loaded_batches: self.inner.loaded_batches,
            loaded_entries: self.inner.loaded_entries,
            resident_batches,
            resident_entries,
        }
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        // Last handle out seals the pending buffer and parks the
        // compactor; intermediate clones must not.
        if Arc::strong_count(&self.inner) == 1 + 1 {
            // One count is ours; the compactor thread (if any) holds
            // another — stop it first, then flush.
            self.stop_compactor();
        }
        if Arc::strong_count(&self.inner) == 1 {
            self.stop_compactor();
            let _ = self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> StoreKey {
        StoreKey::new("run", format!("w{n}"), "LightWSP", n, 0, 7)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lwsp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memo_hits_after_put_and_counts() {
        let s = ResultStore::in_memory_with(1);
        let (v, hit) = s.memo(&key(1), || "computed".into());
        assert!(!hit);
        assert_eq!(v, "computed");
        let (v, hit) = s.memo(&key(1), || unreachable!("must be served"));
        assert!(hit);
        assert_eq!(v, "computed");
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.puts), (1, 1, 1));
    }

    #[test]
    fn persists_across_open_and_prunes_covered_files() {
        let dir = tmp_dir("reopen");
        {
            let s = ResultStore::open_with(&dir, 7).unwrap();
            for n in 0..10 {
                s.put(key(n), format!("v{n}"));
            }
            s.flush().unwrap();
            for n in 10..20 {
                s.put(key(n), format!("v{n}"));
            }
            // Drop flushes the second half.
        }
        let s = ResultStore::open_with(&dir, 7).unwrap();
        for n in 0..20 {
            assert_eq!(s.get(&key(n)).as_deref(), Some(format!("v{n}").as_str()));
        }
        assert!(s.stats().loaded_entries >= 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrites_are_last_writer_wins_across_flushes() {
        let s = ResultStore::in_memory_with(1);
        s.put(key(5), "old".into());
        s.flush().unwrap();
        s.put(key(5), "new".into());
        assert_eq!(s.get(&key(5)).as_deref(), Some("new"));
        s.flush().unwrap();
        assert_eq!(s.get(&key(5)).as_deref(), Some("new"));
        let all = s.kind_entries("run");
        assert_eq!(all.iter().filter(|e| e.key == key(5)).count(), 1);
    }

    #[test]
    fn compaction_inline_and_background_preserve_contents() {
        for background in [false, true] {
            let dir = tmp_dir(if background { "bg" } else { "inline" });
            let s = ResultStore::open_with(&dir, 7).unwrap();
            if background {
                s.start_compactor();
            }
            for n in 0..40 {
                s.put(key(n), format!("v{n}"));
                if n % 5 == 4 {
                    s.flush().unwrap();
                }
            }
            s.stop_compactor();
            s.compact_all().unwrap();
            let st = s.stats();
            assert_eq!(st.resident_batches, 1);
            assert!(st.compactions > 0);
            for n in 0..40 {
                assert_eq!(s.get(&key(n)).as_deref(), Some(format!("v{n}").as_str()));
            }
            drop(s);
            // Reopen sees exactly the compacted contents.
            let s = ResultStore::open_with(&dir, 7).unwrap();
            assert_eq!(s.kind_entries("run").len(), 40);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn cursor_includes_pending_and_orders_keys() {
        let s = ResultStore::in_memory_with(1);
        s.put(key(3), "c".into());
        s.flush().unwrap();
        s.put(key(1), "a".into());
        let keys: Vec<u64> = s.cursor(Some("run")).map(|e| e.key.config).collect();
        assert_eq!(keys, vec![1, 3]);
    }
}
