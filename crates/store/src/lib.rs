//! `lightwsp-store`: a spine-style persistent result store for
//! million-point simulation campaigns.
//!
//! The evaluation harness produces results at four scales — whole-run
//! figure cells, crash-audit sweeps with thousands of fork points,
//! model-litmus capture sweeps, and data-structure audits — and before
//! this crate every `cargo run --bin all_figures` recomputed all of
//! them from scratch. The store makes results *durable and addressable*
//! instead: each record is keyed by
//! `(kind, workload, scheme, config-digest, point, code-digest)`
//! ([`StoreKey`]), appended to immutable sorted [`Batch`]es, organised
//! into a [`Spine`] with background merge/compaction, and queried
//! through merged [`Cursor`]s. Because the **code digest** (a
//! build-time fingerprint of every simulation-relevant source file,
//! see [`digest`]) is part of the key, a warm re-run on unchanged code
//! re-simulates nothing, a config tweak invalidates exactly the
//! affected cells, and historical records from older builds remain
//! queryable for perf-trajectory analysis.
//!
//! The crate is dependency-free (it sits *below* `lightwsp-core` in
//! the workspace graph) and stores opaque string payloads; the codec
//! for each record family lives with the type that owns it, in
//! `lightwsp-core::cache`.
//!
//! ```
//! use lightwsp_store::{ResultStore, StoreKey};
//!
//! let store = ResultStore::in_memory_with(0xC0DE);
//! let key = StoreKey::new("run", "bzip2", "LightWSP", 42, 0, store.code());
//! let (value, hit) = store.memo(&key, || "cycles=123".to_string());
//! assert!(!hit);
//! let (value2, hit2) = store.memo(&key, || unreachable!("served from store"));
//! assert!(hit2);
//! assert_eq!(value, value2);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod digest;
pub mod key;
pub mod spine;
pub mod store;

pub use batch::{Batch, Entry};
pub use digest::{
    build_code_digest, code_digest, code_digest_from_env, combine, digest_bytes, digest_debug,
    digest_str, BUILD_CODE_DIGEST_HEX,
};
pub use key::StoreKey;
pub use spine::{Cursor, Spine, MERGE_FANOUT};
pub use store::{CacheStats, ResultStore, AUTOFLUSH_ENTRIES};
