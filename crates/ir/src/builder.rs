//! Ergonomic construction of IR functions.
//!
//! Used throughout the test suite and by the synthetic workload
//! generators. The builder keeps a *current block*; instruction-emitting
//! methods append to it, and terminator-emitting methods seal it.

use crate::inst::{AluOp, BoundaryKind, BranchRhs, Cond, Inst, Terminator};
use crate::program::{Block, BlockId, FuncId, Function, LoopHint};
use crate::reg::Reg;

/// Builds one [`Function`] incrementally.
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    current: BlockId,
    sealed: Vec<bool>,
}

impl FuncBuilder {
    /// Starts a new function; the current block is its entry block.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        let func = Function::new(name);
        let current = func.entry;
        FuncBuilder {
            func,
            current,
            sealed: vec![false],
        }
    }

    /// Creates a new (empty, unsealed) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let id = self.func.add_block(Block {
            insts: Vec::new(),
            term: Terminator::Halt,
        });
        self.sealed.push(false);
        id
    }

    /// Makes `block` the current block.
    ///
    /// # Panics
    ///
    /// Panics if `block` has already been sealed with a terminator.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            !self.sealed[block.index()],
            "cannot append to sealed {block:?}"
        );
        self.current = block;
    }

    /// The current block.
    pub fn current(&self) -> BlockId {
        self.current
    }

    /// Records a trip-count hint for the loop headed at `header`.
    pub fn hint_trip_count(&mut self, header: BlockId, trip_count: u32) {
        self.func.loop_hints.push(LoopHint {
            header,
            trip_count: Some(trip_count),
        });
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            !self.sealed[self.current.index()],
            "current block already sealed"
        );
        self.func.block_mut(self.current).insts.push(inst);
    }

    fn seal(&mut self, term: Terminator) {
        assert!(
            !self.sealed[self.current.index()],
            "current block already sealed"
        );
        self.func.block_mut(self.current).term = term;
        self.sealed[self.current.index()] = true;
    }

    /// Emits `dst = op(lhs, rhs)`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, lhs: Reg, rhs: Reg) {
        self.push(Inst::Alu { op, dst, lhs, rhs });
    }

    /// Emits `dst = op(src, imm)`.
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, src: Reg, imm: i64) {
        self.push(Inst::AluImm { op, dst, src, imm });
    }

    /// Emits `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) {
        self.push(Inst::MovImm { dst, imm });
    }

    /// Emits an 8-byte load `dst = [base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.push(Inst::Load { dst, base, offset });
    }

    /// Emits an 8-byte store `[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) {
        self.push(Inst::Store { src, base, offset });
    }

    /// Emits a call to `callee`.
    pub fn call(&mut self, callee: FuncId) {
        self.push(Inst::Call { callee });
    }

    /// Emits a memory fence.
    pub fn fence(&mut self) {
        self.push(Inst::Fence);
    }

    /// Emits an atomic read-modify-write.
    pub fn atomic_rmw(&mut self, op: AluOp, dst: Reg, addr: Reg, src: Reg) {
        self.push(Inst::AtomicRmw { op, dst, addr, src });
    }

    /// Emits a lock acquire on the lock word addressed by `lock`.
    pub fn lock_acquire(&mut self, lock: Reg) {
        self.push(Inst::LockAcquire { lock });
    }

    /// Emits a lock release on the lock word addressed by `lock`.
    pub fn lock_release(&mut self, lock: Reg) {
        self.push(Inst::LockRelease { lock });
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    /// Emits an irrevocable I/O output of `src` (§IV-A "I/O Functions").
    pub fn io_out(&mut self, src: Reg) {
        self.push(Inst::Io { src });
    }

    /// Emits a region boundary (normally inserted by the LightWSP
    /// compiler; exposed for tests and hand-written examples).
    pub fn region_boundary(&mut self) {
        self.push(Inst::RegionBoundary {
            kind: BoundaryKind::Manual,
        });
    }

    /// Emits a checkpoint store of `reg` (normally inserted by the
    /// LightWSP compiler; exposed for tests and hand-written examples).
    pub fn checkpoint(&mut self, reg: Reg) {
        self.push(Inst::CheckpointStore { reg });
    }

    /// Seals the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.seal(Terminator::Jump { target });
    }

    /// Seals the current block with `if cond(src, imm) goto then_bb else
    /// else_bb`.
    pub fn branch_imm(
        &mut self,
        cond: Cond,
        src: Reg,
        imm: i64,
        then_bb: BlockId,
        else_bb: BlockId,
    ) {
        self.seal(Terminator::Branch {
            cond,
            src,
            rhs: BranchRhs::Imm(imm),
            then_bb,
            else_bb,
        });
    }

    /// Seals the current block with a register-register conditional branch.
    pub fn branch_reg(
        &mut self,
        cond: Cond,
        src: Reg,
        rhs: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    ) {
        self.seal(Terminator::Branch {
            cond,
            src,
            rhs: BranchRhs::Reg(rhs),
            then_bb,
            else_bb,
        });
    }

    /// Seals the current block with a function return.
    pub fn ret(&mut self) {
        self.seal(Terminator::Ret);
    }

    /// Seals the current block with a thread halt.
    pub fn halt(&mut self) {
        self.seal(Terminator::Halt);
    }

    /// Finishes construction and returns the function.
    ///
    /// # Panics
    ///
    /// Panics if any block was left unsealed (no terminator emitted).
    pub fn finish(self) -> Function {
        for (i, sealed) in self.sealed.iter().enumerate() {
            assert!(*sealed, "block bb{i} in '{}' left unsealed", self.func.name);
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_blocks_and_terminators() {
        let mut b = FuncBuilder::new("x");
        b.mov_imm(Reg::R1, 42);
        let next = b.new_block();
        b.jump(next);
        b.switch_to(next);
        b.ret();
        let f = b.finish();
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.block(f.entry).insts.len(), 1);
        assert!(matches!(f.block(next).term, Terminator::Ret));
    }

    #[test]
    #[should_panic(expected = "left unsealed")]
    fn finish_rejects_unsealed_blocks() {
        let mut b = FuncBuilder::new("bad");
        b.nop();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn cannot_append_after_seal() {
        let mut b = FuncBuilder::new("bad2");
        b.ret();
        b.nop();
    }

    #[test]
    fn trip_count_hints_recorded() {
        let mut b = FuncBuilder::new("h");
        let header = b.new_block();
        b.hint_trip_count(header, 16);
        b.jump(header);
        b.switch_to(header);
        b.ret();
        let f = b.finish();
        assert_eq!(f.loop_hints.len(), 1);
        assert_eq!(f.loop_hints[0].trip_count, Some(16));
    }
}
