//! Natural-loop detection.
//!
//! A back edge is an edge `latch -> header` where `header` dominates
//! `latch`; the natural loop of that edge is the set of blocks that can
//! reach the latch without passing through the header. The
//! initial-boundary pass places a region boundary at every loop header
//! that contains stores (§IV-A), and the unrolling pass enlarges loops to
//! reduce checkpoint pressure.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::program::{BlockId, Function};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Latch blocks (sources of back edges into the header).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// True if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function. Loops sharing a header are merged
/// (standard practice), so headers are unique.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// The loops, in discovery order.
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Detects the natural loops of `func`.
    pub fn compute(func: &Function, cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let mut by_header: Vec<Option<NaturalLoop>> = vec![None; func.blocks.len()];
        for (b, block) in func.iter_blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for succ in block.term.successors() {
                if dom.dominates(succ, b) {
                    // b -> succ is a back edge; succ is the header.
                    let body = natural_loop_body(cfg, succ, b);
                    let slot = &mut by_header[succ.index()];
                    match slot {
                        Some(l) => {
                            l.latches.push(b);
                            for nb in body {
                                if !l.blocks.contains(&nb) {
                                    l.blocks.push(nb);
                                }
                            }
                        }
                        None => {
                            *slot = Some(NaturalLoop {
                                header: succ,
                                latches: vec![b],
                                blocks: body,
                            });
                        }
                    }
                }
            }
        }
        LoopForest {
            loops: by_header.into_iter().flatten().collect(),
        }
    }

    /// The loop headed at `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// True if `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loop_with_header(b).is_some()
    }

    /// The innermost loop containing `b`, by smallest block count.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.blocks.len())
    }
}

/// Blocks that can reach `latch` without passing through `header`, plus
/// the header itself.
fn natural_loop_body(cfg: &Cfg, header: BlockId, latch: BlockId) -> Vec<BlockId> {
    let mut body = vec![header];
    if latch == header {
        return body;
    }
    let mut stack = vec![latch];
    body.push(latch);
    while let Some(b) = stack.pop() {
        for &p in cfg.preds(b) {
            if !body.contains(&p) {
                body.push(p);
                stack.push(p);
            }
        }
        if b == header {
            unreachable!("header is never pushed");
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Cond;
    use crate::reg::Reg;

    #[test]
    fn simple_loop_detected() {
        let mut b = FuncBuilder::new("l");
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch_imm(Cond::Eq, Reg::R0, 0, exit, body);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches, vec![body]);
        assert!(l.contains(header) && l.contains(body));
        assert!(!l.contains(exit));
        assert!(forest.is_header(header));
        assert!(!forest.is_header(body));
    }

    #[test]
    fn nested_loops_innermost() {
        // outer_header -> inner_header -> inner_body -> inner_header
        //              ^--------------- outer_latch <- inner exit
        let mut b = FuncBuilder::new("nested");
        let outer_h = b.new_block();
        let inner_h = b.new_block();
        let inner_b = b.new_block();
        let outer_latch = b.new_block();
        let exit = b.new_block();
        b.jump(outer_h);
        b.switch_to(outer_h);
        b.jump(inner_h);
        b.switch_to(inner_h);
        b.branch_imm(Cond::Eq, Reg::R1, 0, outer_latch, inner_b);
        b.switch_to(inner_b);
        b.jump(inner_h);
        b.switch_to(outer_latch);
        b.branch_imm(Cond::Eq, Reg::R2, 0, exit, outer_h);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        let inner = forest.innermost_containing(inner_b).unwrap();
        assert_eq!(inner.header, inner_h);
        let outer = forest.loop_with_header(outer_h).unwrap();
        assert!(outer.contains(inner_h) && outer.contains(inner_b) && outer.contains(outer_latch));
    }

    #[test]
    fn self_loop() {
        let mut b = FuncBuilder::new("selfloop");
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.branch_imm(Cond::Eq, Reg::R0, 0, exit, l);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].blocks, vec![l]);
        assert_eq!(forest.loops[0].latches, vec![l]);
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut b = FuncBuilder::new("line");
        b.nop();
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert!(forest.loops.is_empty());
    }
}
