//! Human-readable disassembly of IR programs.
//!
//! The format is stable enough for snapshot-style assertions in tests
//! and for the worked examples; it is not a parseable interchange
//! format.

use crate::inst::Terminator;
use crate::program::{Function, Program};
use std::fmt;

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump { target } => write!(f, "jump {target:?}"),
            Terminator::Branch {
                cond,
                src,
                rhs,
                then_bb,
                else_bb,
            } => {
                write!(
                    f,
                    "if {cond:?}({src}, {rhs:?}) -> {then_bb:?} else {else_bb:?}"
                )
            }
            Terminator::Ret => write!(f, "ret"),
            Terminator::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {} (entry {:?}):", self.name, self.entry)?;
        for (id, block) in self.iter_blocks() {
            writeln!(f, "  {id:?}:")?;
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program (entry f{}):", self.entry.index())?;
        for func in &self.funcs {
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FuncBuilder;
    use crate::inst::Cond;
    use crate::{Program, Reg};

    #[test]
    fn function_disassembly_lists_blocks_and_instructions() {
        let mut b = FuncBuilder::new("demo");
        b.mov_imm(Reg::R1, 5);
        let exit = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R1, 5, exit, exit);
        b.switch_to(exit);
        b.store(Reg::R1, Reg::R2, 8);
        b.halt();
        let p = Program::from_single(b.finish());
        let text = p.to_string();
        assert!(text.contains("program (entry f0):"));
        assert!(text.contains("func demo (entry bb0):"));
        assert!(text.contains("r1 = #5"));
        assert!(text.contains("[r2 + 8] = r1"));
        assert!(text.contains("if Eq(r1, Imm(5)) -> bb1 else bb1"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn terminator_display_forms() {
        let mut b = FuncBuilder::new("t");
        b.ret();
        let f = b.finish();
        assert!(f.to_string().contains("ret"));
    }
}
