//! Firefox-style multiplicative hashing (the algorithm behind the
//! `rustc-hash`/`fxhash` crates), implemented in-repo because the build
//! environment is offline.
//!
//! The simulator's hot loops key hash maps by small integers (addresses,
//! region ids, program points). The default `SipHash13` hasher is
//! DoS-resistant but costs ~2× the whole map probe on such keys; Fx is a
//! single rotate + xor + multiply per word, which profiles as a large win
//! on `Memory::read_word`/`write_word` and `DirectMappedCache::access`.
//! Simulation inputs are program-generated (never attacker-controlled),
//! so losing DoS resistance is free.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier: `2^64 / phi`, the same constant rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Non-cryptographic, word-at-a-time multiplicative hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes any `Hash` value with [`FxHasher`] — used to fingerprint
/// configuration structs (via their `Debug` text) for cache keys.
pub fn fx_hash<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 8, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 8)), Some(&i));
        }
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&42));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(fx_hash(&0x1234u64), fx_hash(&0x1234u64));
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
        // Byte-wise writes of the same logical value agree with themselves.
        let a = fx_hash("configuration string");
        let b = fx_hash("configuration string");
        assert_eq!(a, b);
    }
}
