//! Dominator tree, via the Cooper–Harvey–Kennedy iterative algorithm.
//!
//! Natural-loop detection ([`crate::loops`]) identifies back edges as edges
//! whose target dominates their source, which is what the initial-boundary
//! pass needs to find loop headers (§IV-A "Initial Region Boundary
//! Insertion").

use crate::cfg::Cfg;
use crate::program::{BlockId, Function};

/// The dominator tree of a function's reachable blocks.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`; unreachable
    /// blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators for `func` given its `cfg`.
    pub fn compute(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.blocks.len();
        let rpo = cfg.reverse_post_order();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[func.entry.index()] = Some(func.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up by RPO index until the fingers meet.
            while a != b {
                while cfg.rpo_index(a).unwrap() > cfg.rpo_index(b).unwrap() {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while cfg.rpo_index(b).unwrap() > cfg.rpo_index(a).unwrap() {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            entry: func.entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// True if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable block has idom");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Cond;
    use crate::reg::Reg;

    fn diamond_with_loop() -> (Function, [BlockId; 5]) {
        // entry -> header; header -> (body | exit); body -> header
        // exit -> tail
        let mut b = FuncBuilder::new("t");
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let tail = b.new_block();
        let entry = b.current();
        b.jump(header);
        b.switch_to(header);
        b.branch_imm(Cond::Eq, Reg::R0, 0, exit, body);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.jump(tail);
        b.switch_to(tail);
        b.ret();
        (b.finish(), [entry, header, body, exit, tail])
    }

    #[test]
    fn idoms_in_loop_cfg() {
        let (f, [entry, header, body, exit, tail]) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert_eq!(dom.idom(tail), Some(exit));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, [entry, header, body, _exit, tail]) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        assert!(dom.dominates(header, header));
        assert!(dom.dominates(entry, tail));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, header));
        assert!(!dom.dominates(tail, body));
    }

    #[test]
    fn diamond_merge_dominated_only_by_entry() {
        let mut b = FuncBuilder::new("d");
        let left = b.new_block();
        let right = b.new_block();
        let merge = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R0, 0, left, right);
        b.switch_to(left);
        b.jump(merge);
        b.switch_to(right);
        b.jump(merge);
        b.switch_to(merge);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        assert_eq!(dom.idom(merge), Some(f.entry));
        assert!(!dom.dominates(left, merge));
    }
}
