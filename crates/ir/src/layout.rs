//! Address-space layout of the modelled whole-system-persistent machine.
//!
//! Everything is persistent main memory (PM) in LightWSP — there is no
//! volatile main memory. The layout carves PM into:
//!
//! * the per-thread **checkpoint storage** (§IV-A "Checkpoint Storage
//!   Management"): a PM-resident array with one 8-byte slot per
//!   architectural register, plus a PC slot written by every region
//!   boundary;
//! * per-thread **stacks** (return addresses are ordinary stores, so the
//!   call stack survives power failure);
//! * a **lock region** for synchronisation words; and
//! * the **heap/globals** region used by workloads.

use crate::reg::{Reg, NUM_REGS};

/// Base address of the checkpoint storage.
pub const CHECKPOINT_BASE: u64 = 0x1000_0000;
/// Bytes of checkpoint storage per thread (32 register slots + PC slot,
/// rounded to a power of two).
pub const CHECKPOINT_STRIDE: u64 = 0x200;
/// Offset of the PC slot inside a thread's checkpoint area.
pub const PC_SLOT_OFFSET: u64 = (NUM_REGS as u64) * 8;

/// Base address of thread stacks (grow downward from the top of each
/// thread's window).
pub const STACK_BASE: u64 = 0x2000_0000;
/// Stack bytes reserved per thread.
pub const STACK_STRIDE: u64 = 0x1_0000;

/// Base address of the lock region.
pub const LOCK_BASE: u64 = 0x3000_0000;

/// Base address of the workload heap/global region.
pub const HEAP_BASE: u64 = 0x4000_0000;

/// Address of the checkpoint slot for register `reg` of thread `tid`.
pub fn checkpoint_slot(tid: usize, reg: Reg) -> u64 {
    CHECKPOINT_BASE + tid as u64 * CHECKPOINT_STRIDE + reg.index() as u64 * 8
}

/// Address of the PC checkpoint slot of thread `tid` (written by every
/// region boundary).
pub fn pc_slot(tid: usize) -> u64 {
    CHECKPOINT_BASE + tid as u64 * CHECKPOINT_STRIDE + PC_SLOT_OFFSET
}

/// Initial stack-pointer value for thread `tid` (stacks grow downward).
pub fn initial_sp(tid: usize) -> u64 {
    STACK_BASE + (tid as u64 + 1) * STACK_STRIDE
}

/// Address of lock word `n`.
pub fn lock_addr(n: usize) -> u64 {
    LOCK_BASE + n as u64 * 64 // one lock per cache line to avoid false sharing
}

/// True if `addr` lies inside any thread's checkpoint storage.
pub fn is_checkpoint_addr(addr: u64) -> bool {
    (CHECKPOINT_BASE..STACK_BASE).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_slots_disjoint_across_threads() {
        let t0_last = checkpoint_slot(0, Reg::SP);
        let t1_first = checkpoint_slot(1, Reg::R0);
        assert!(t0_last < t1_first);
        assert!(pc_slot(0) < t1_first);
        assert!(pc_slot(0) > t0_last);
    }

    #[test]
    fn slots_are_8_byte_aligned() {
        for tid in 0..4 {
            assert_eq!(pc_slot(tid) % 8, 0);
            for r in Reg::all() {
                assert_eq!(checkpoint_slot(tid, r) % 8, 0);
            }
        }
    }

    #[test]
    fn stack_windows_disjoint() {
        assert!(initial_sp(0) <= STACK_BASE + STACK_STRIDE);
        assert_eq!(initial_sp(1) - initial_sp(0), STACK_STRIDE);
        assert!(initial_sp(63) <= LOCK_BASE);
    }

    #[test]
    fn region_predicates() {
        assert!(is_checkpoint_addr(checkpoint_slot(0, Reg::R5)));
        assert!(is_checkpoint_addr(pc_slot(3)));
        assert!(!is_checkpoint_addr(HEAP_BASE));
        assert!(!is_checkpoint_addr(lock_addr(0)));
    }

    #[test]
    fn locks_are_cacheline_separated() {
        assert_eq!(lock_addr(1) - lock_addr(0), 64);
    }
}
