//! Control-flow-graph utilities: predecessors, successors, traversal
//! orders.
//!
//! The region-formation pass (§IV-A) traverses the CFG "in topological
//! order" when combining regions; [`Cfg::reverse_post_order`] provides that
//! order (topological on the acyclic condensation, with loop headers
//! visited before their bodies).

use crate::program::{BlockId, Function};

/// Predecessor/successor maps and traversal orders for one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (id, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }

        // Iterative DFS post-order from the entry block.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        visited[func.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
            reachable: visited,
        }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks in reverse post-order (entry first); unreachable blocks are
    /// omitted.
    pub fn reverse_post_order(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// True if `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Number of blocks in the underlying function (including unreachable).
    pub fn num_blocks(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Cond;
    use crate::reg::Reg;

    /// Diamond: entry -> (left|right) -> merge.
    fn diamond() -> Function {
        let mut b = FuncBuilder::new("diamond");
        let left = b.new_block();
        let right = b.new_block();
        let merge = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R0, 0, left, right);
        b.switch_to(left);
        b.jump(merge);
        b.switch_to(right);
        b.jump(merge);
        b.switch_to(merge);
        b.ret();
        b.finish()
    }

    #[test]
    fn diamond_preds_succs() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let entry = f.entry;
        assert_eq!(cfg.succs(entry).len(), 2);
        let merge = BlockId::from_index(3);
        assert_eq!(cfg.preds(merge).len(), 2);
        assert!(cfg.preds(entry).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), BlockId::from_index(3));
        // RPO index is consistent.
        for (i, b) in rpo.iter().enumerate() {
            assert_eq!(cfg.rpo_index(*b), Some(i));
        }
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut b = FuncBuilder::new("unreachable");
        b.ret();
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.reverse_post_order().len(), 1);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo_index(dead), None);
    }

    #[test]
    fn loop_rpo_header_before_body() {
        let mut b = FuncBuilder::new("loop");
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch_imm(Cond::Eq, Reg::R0, 0, exit, body);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let hi = cfg.rpo_index(header).unwrap();
        let bi = cfg.rpo_index(body).unwrap();
        assert!(hi < bi, "header must precede body in RPO");
    }
}
