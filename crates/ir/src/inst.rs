//! Instructions and block terminators of the machine IR.
//!
//! The set is intentionally small but covers everything the LightWSP
//! compiler passes and the timing simulator need to distinguish:
//!
//! * plain ALU work (timing slot accounting),
//! * loads and stores (the persist path and WPQ consume store events;
//!   loads drive the cache hierarchy),
//! * control flow (region boundaries are placed along CFG structure),
//! * calls/returns (always region boundaries per §IV-A),
//! * fences and atomics (region boundaries for multi-threaded
//!   happens-before order, §III-D), and
//! * the two instructions the LightWSP compiler *inserts*:
//!   [`Inst::RegionBoundary`] (the PC-checkpointing store) and
//!   [`Inst::CheckpointStore`] (a live-out register checkpoint, a plain
//!   store to the PM-resident checkpoint array).

use crate::program::{BlockId, FuncId};
use crate::reg::{Reg, RegSet};
use std::fmt;

/// Why a region boundary exists (§IV-A): used by the region-formation
/// pass to decide which boundaries may be merged away (only
/// [`BoundaryKind::Threshold`] boundaries are removable; the rest are
/// required for correctness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// Function entry.
    FuncEntry,
    /// Function exit.
    FuncExit,
    /// Immediately before a call site.
    CallSite,
    /// Loop header (of a loop containing stores).
    LoopHeader,
    /// Before a synchronisation instruction (fence/atomic/lock), §III-D.
    Sync,
    /// Inserted to keep the in-region store count below the threshold.
    Threshold,
    /// Hand-placed (tests, examples).
    Manual,
}

/// Binary ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise exclusive or.
    Xor,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Logical shift left (by rhs & 63).
    Shl,
    /// Logical shift right (by rhs & 63).
    Shr,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Xor => lhs ^ rhs,
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            AluOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
        }
    }
}

/// Branch conditions, evaluated against an immediate or register operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two 64-bit values.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
        }
    }
}

/// A non-terminator machine instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `dst = op(lhs, rhs)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `dst = op(src, imm)`.
    AluImm {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// The immediate.
        imm: i64,
    },
    /// `dst = mem[base + offset]` (8-byte load).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `mem[base + offset] = src` (8-byte store).
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Calls `callee`; pushes the return point on the in-memory stack via
    /// the architectural stack pointer, so return addresses persist like
    /// any other data (whole-system persistence).
    Call {
        /// The called function.
        callee: FuncId,
    },
    /// Memory fence; the LightWSP compiler places a region boundary
    /// immediately before it (§III-D).
    Fence,
    /// Atomic read-modify-write: `dst = mem[addr]; mem[addr] = op(dst, src)`.
    /// Treated as a synchronisation point (region boundary before it).
    AtomicRmw {
        /// The read-modify-write operation.
        op: AluOp,
        /// Receives the old memory value.
        dst: Reg,
        /// Address register.
        addr: Reg,
        /// Operand register.
        src: Reg,
    },
    /// Spin-acquires the lock word addressed by `lock`. A synchronisation
    /// point: establishes happens-before with the previous release.
    LockAcquire {
        /// Lock-address register.
        lock: Reg,
    },
    /// Releases the lock word addressed by `lock`. A synchronisation point.
    LockRelease {
        /// Lock-address register.
        lock: Reg,
    },
    /// No operation (occupies a pipeline slot).
    Nop,
    /// An irrevocable I/O operation emitting the value of `src` to an
    /// output port (§IV-A "I/O Functions"). The compiler places a region
    /// boundary immediately before it so necessary state is checkpointed
    /// and an interrupted operation restarts from the I/O itself.
    Io {
        /// Source register.
        src: Reg,
    },
    /// LightWSP-inserted region boundary: the PC-checkpointing store
    /// (§IV-A). Broadcasts the current region ID to all memory controllers
    /// and samples a fresh one. The operand-free form stores the encoded
    /// address of the *next* program point into the per-thread PC slot of
    /// the checkpoint array.
    RegionBoundary {
        /// Why the boundary was inserted.
        kind: BoundaryKind,
    },
    /// LightWSP-inserted checkpoint of a live-out register: a plain store
    /// of `reg` into its dedicated slot of the PM-resident checkpoint
    /// array (§IV-A "Checkpoint Storage Management").
    CheckpointStore {
        /// The checkpointed register.
        reg: Reg,
    },
}

/// The modelled calling convention.
///
/// Calls communicate through registers `r16..=r23` (arguments and return
/// values) and may clobber `r16..=r30`; `r1..=r15` are callee-preserved
/// (generated callees never touch them). This keeps liveness analysis
/// intraprocedural while staying sound: a [`Inst::Call`] *uses* the
/// argument registers and *defines* (clobbers) every caller-saved
/// register, and [`Terminator::Ret`] uses the return registers so values
/// handed back to the caller stay live to the callee's exit boundary.
pub mod abi {
    use crate::reg::{Reg, RegSet};

    /// Argument/return registers (`r16..=r23`).
    pub fn arg_regs() -> RegSet {
        (16..=23).map(Reg::from_index).collect()
    }

    /// Registers a call may clobber (`r16..=r30`).
    pub fn clobbered_regs() -> RegSet {
        (16..=30).map(Reg::from_index).collect()
    }

    /// Callee-preserved registers (`r0..=r15`).
    pub fn preserved_regs() -> RegSet {
        (0..=15).map(Reg::from_index).collect()
    }
}

impl Inst {
    /// The single register this instruction computes into, if any
    /// (clobbers from calls are excluded; see [`Inst::defs`]).
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::MovImm { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::AtomicRmw { dst, .. } => Some(dst),
            // Call/Ret adjust SP; modelled as a def of SP.
            Inst::Call { .. } => Some(Reg::SP),
            _ => None,
        }
    }

    /// Every register this instruction may write, including call clobbers.
    pub fn defs(&self) -> RegSet {
        let mut s = RegSet::new();
        if let Inst::Call { .. } = self {
            s = abi::clobbered_regs();
        }
        if let Some(d) = self.def() {
            s.insert(d);
        }
        s
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> RegSet {
        let mut s = RegSet::new();
        match *self {
            Inst::Alu { lhs, rhs, .. } => {
                s.insert(lhs);
                s.insert(rhs);
            }
            Inst::AluImm { src, .. } => {
                s.insert(src);
            }
            Inst::MovImm { .. } | Inst::Nop | Inst::Fence | Inst::RegionBoundary { .. } => {}
            Inst::Load { base, .. } => {
                s.insert(base);
            }
            Inst::Store { src, base, .. } => {
                s.insert(src);
                s.insert(base);
            }
            Inst::Call { .. } => {
                s.insert(Reg::SP);
                s.union_with(&abi::arg_regs());
            }
            Inst::AtomicRmw { addr, src, .. } => {
                s.insert(addr);
                s.insert(src);
            }
            Inst::LockAcquire { lock } | Inst::LockRelease { lock } => {
                s.insert(lock);
            }
            Inst::Io { src } => {
                s.insert(src);
            }
            Inst::CheckpointStore { reg } => {
                s.insert(reg);
            }
        }
        s
    }

    /// True for instructions that perform a data store on the persist path
    /// (plain stores, atomics, checkpoint stores, boundaries, calls — the
    /// latter push a return address).
    ///
    /// This is the store count used by the region-partitioning threshold
    /// (§III-C): every one of these occupies a WPQ entry.
    pub fn is_store_like(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::AtomicRmw { .. }
                | Inst::CheckpointStore { .. }
                | Inst::RegionBoundary { .. }
                | Inst::Call { .. }
                | Inst::LockAcquire { .. }
                | Inst::LockRelease { .. }
        )
    }

    /// True for the *program's own* stores (excluding compiler-inserted
    /// checkpoints and boundaries); used by compiler statistics.
    pub fn is_program_store(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::AtomicRmw { .. }
                | Inst::Call { .. }
                | Inst::LockAcquire { .. }
                | Inst::LockRelease { .. }
        )
    }

    /// True if this instruction must start a new region *before* it
    /// executes (synchronisation points and call sites, §III-D & §IV-A).
    pub fn forces_boundary_before(&self) -> bool {
        matches!(
            self,
            Inst::Call { .. }
                | Inst::Fence
                | Inst::AtomicRmw { .. }
                | Inst::LockAcquire { .. }
                | Inst::LockRelease { .. }
                | Inst::Io { .. }
        )
    }

    /// True for the instructions the LightWSP compiler inserts.
    pub fn is_instrumentation(&self) -> bool {
        matches!(
            self,
            Inst::RegionBoundary { .. } | Inst::CheckpointStore { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, dst, lhs, rhs } => write!(f, "{dst} = {op:?}({lhs}, {rhs})"),
            Inst::AluImm { op, dst, src, imm } => write!(f, "{dst} = {op:?}({src}, #{imm})"),
            Inst::MovImm { dst, imm } => write!(f, "{dst} = #{imm}"),
            Inst::Load { dst, base, offset } => write!(f, "{dst} = [{base} + {offset}]"),
            Inst::Store { src, base, offset } => write!(f, "[{base} + {offset}] = {src}"),
            Inst::Call { callee } => write!(f, "call f{}", callee.index()),
            Inst::Fence => write!(f, "fence"),
            Inst::AtomicRmw { op, dst, addr, src } => {
                write!(f, "{dst} = atomic_{op:?}([{addr}], {src})")
            }
            Inst::LockAcquire { lock } => write!(f, "lock_acquire [{lock}]"),
            Inst::LockRelease { lock } => write!(f, "lock_release [{lock}]"),
            Inst::Nop => write!(f, "nop"),
            Inst::Io { src } => write!(f, "io.out {src}"),
            Inst::RegionBoundary { .. } => write!(f, "region_boundary"),
            Inst::CheckpointStore { reg } => write!(f, "checkpoint {reg}"),
        }
    }
}

/// Block terminators; every basic block ends in exactly one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// The target block.
        target: BlockId,
    },
    /// Two-way conditional branch comparing `src` against `rhs`.
    Branch {
        /// The comparison.
        cond: Cond,
        /// Left comparison register.
        src: Reg,
        /// Right comparison operand.
        rhs: BranchRhs,
        /// Taken-path block.
        then_bb: BlockId,
        /// Fall-through block.
        else_bb: BlockId,
    },
    /// Function return: pops the return point from the in-memory stack.
    Ret,
    /// Thread exit (only valid in a thread's entry function).
    Halt,
}

/// The right-hand side of a branch comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchRhs {
    /// Compare against an immediate.
    Imm(i64),
    /// Compare against a register.
    Reg(Reg),
}

impl Terminator {
    /// Successor blocks of this terminator, in (then, else) order.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump { target } => vec![target],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Ret | Terminator::Halt => vec![],
        }
    }

    /// Registers read by this terminator.
    pub fn uses(&self) -> RegSet {
        let mut s = RegSet::new();
        match *self {
            Terminator::Branch { src, rhs, .. } => {
                s.insert(src);
                if let BranchRhs::Reg(r) = rhs {
                    s.insert(r);
                }
            }
            Terminator::Ret => {
                s.insert(Reg::SP);
                // Return values flow back to the caller through the ABI
                // registers; treating them as used keeps them live to the
                // function-exit boundary so they get checkpointed there.
                s.union_with(&abi::arg_regs());
            }
            _ => {}
        }
        s
    }

    /// Rewrites successor block ids through `map` (used by unrolling).
    pub fn map_targets(&mut self, mut map: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump { target } => *target = map(*target),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = map(*then_bb);
                *else_bb = map(*else_bb);
            }
            Terminator::Ret | Terminator::Halt => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift counts wrap mod 64");
        assert_eq!(AluOp::Shr.apply(8, 2), 2);
    }

    #[test]
    fn cond_semantics_are_unsigned() {
        assert!(Cond::Lt.eval(1, u64::MAX));
        assert!(Cond::Ge.eval(u64::MAX, 1));
        assert!(Cond::Eq.eval(7, 7));
        assert!(Cond::Ne.eval(7, 8));
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            lhs: Reg::R2,
            rhs: Reg::R3,
        };
        assert_eq!(i.def(), Some(Reg::R1));
        assert!(i.uses().contains(Reg::R2) && i.uses().contains(Reg::R3));

        let s = Inst::Store {
            src: Reg::R4,
            base: Reg::R5,
            offset: 8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses().len(), 2);

        let c = Inst::Call {
            callee: FuncId::from_index(0),
        };
        assert_eq!(
            c.def(),
            Some(Reg::SP),
            "call pushes a return address via SP"
        );
    }

    #[test]
    fn store_like_classification() {
        assert!(Inst::Store {
            src: Reg::R0,
            base: Reg::R1,
            offset: 0
        }
        .is_store_like());
        assert!(Inst::RegionBoundary {
            kind: BoundaryKind::Manual
        }
        .is_store_like());
        assert!(Inst::CheckpointStore { reg: Reg::R0 }.is_store_like());
        assert!(!Inst::Nop.is_store_like());
        assert!(!Inst::Load {
            dst: Reg::R0,
            base: Reg::R1,
            offset: 0
        }
        .is_store_like());
        assert!(!Inst::RegionBoundary {
            kind: BoundaryKind::Manual
        }
        .is_program_store());
    }

    #[test]
    fn sync_points_force_boundaries() {
        assert!(Inst::Fence.forces_boundary_before());
        assert!(Inst::LockAcquire { lock: Reg::R1 }.forces_boundary_before());
        assert!(Inst::Call {
            callee: FuncId::from_index(1)
        }
        .forces_boundary_before());
        assert!(!Inst::Nop.forces_boundary_before());
    }

    #[test]
    fn terminator_successors_and_uses() {
        let b0 = BlockId::from_index(0);
        let b1 = BlockId::from_index(1);
        let t = Terminator::Branch {
            cond: Cond::Eq,
            src: Reg::R2,
            rhs: BranchRhs::Reg(Reg::R3),
            then_bb: b0,
            else_bb: b1,
        };
        assert_eq!(t.successors(), vec![b0, b1]);
        assert!(t.uses().contains(Reg::R2) && t.uses().contains(Reg::R3));
        assert!(Terminator::Ret.uses().contains(Reg::SP));
        assert!(Terminator::Halt.successors().is_empty());
    }

    #[test]
    fn map_targets_rewrites() {
        let b0 = BlockId::from_index(0);
        let b9 = BlockId::from_index(9);
        let mut t = Terminator::Jump { target: b0 };
        t.map_targets(|_| b9);
        assert_eq!(t.successors(), vec![b9]);
    }
}
