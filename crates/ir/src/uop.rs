//! Micro-ops: the pre-decoded instruction format of the decoded
//! execution engine.
//!
//! [`crate::decode`] lowers every basic block of a [`crate::Program`]
//! into a flat run of [`MicroOp`]s at load time: operands are resolved,
//! branch targets pre-linked as *flat block indices* (no per-step
//! `FuncId`/`BlockId` map lookups), instrumentation addresses partially
//! precomputed, and adjacent instruction pairs fused into
//! superinstructions. [`crate::exec`] then executes micro-ops in a tight
//! loop that yields to the timing simulator only at instructions that
//! emit timed [`crate::DynEvent`]s.
//!
//! ## Components
//!
//! A fused micro-op retires as its original instructions, one
//! *component* at a time, so per-cycle retire accounting and crash
//! points are bit-identical to the reference tree-walker: the execution
//! cursor is `(micro-op index, components already retired)`, and the
//! decoder's entry tables map **every** [`crate::ProgramPoint`] — even
//! one landing inside a fused pair — to an exact cursor.

use crate::inst::{AluOp, BranchRhs, Cond};
use crate::reg::Reg;

/// A register-or-immediate right-hand operand with the immediate
/// pre-cast to the `u64` domain the ALU works in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A pre-cast immediate.
    Imm(u64),
    /// A register.
    Reg(Reg),
}

impl From<BranchRhs> for Operand {
    fn from(rhs: BranchRhs) -> Operand {
        match rhs {
            BranchRhs::Imm(i) => Operand::Imm(i as u64),
            BranchRhs::Reg(r) => Operand::Reg(r),
        }
    }
}

/// The ALU half of a fused micro-op: `dst = op(lhs, rhs)`. Covers both
/// `Inst::Alu` (register rhs) and `Inst::AluImm` (immediate rhs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusedAlu {
    /// The operation.
    pub op: AluOp,
    /// Destination register.
    pub dst: Reg,
    /// Left operand register.
    pub lhs: Reg,
    /// Right operand (register or pre-cast immediate).
    pub rhs: Operand,
}

/// One pre-decoded micro-op.
///
/// Single-component variants map 1:1 to an [`crate::Inst`] or
/// [`crate::Terminator`]; the fused variants at the bottom carry two
/// components each (see the module docs). Thread-dependent addresses
/// (PC slot, checkpoint slots, stack windows) are *not* baked in — the
/// decoded program is shared by every thread and every crash-sweep fork
/// — but everything thread-invariant is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroOp {
    /// `dst = op(lhs, rhs)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `dst = op(src, imm)`.
    AluImm {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Pre-cast immediate.
        imm: u64,
    },
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Pre-cast immediate.
        imm: u64,
    },
    /// No operation (occupies a retire slot).
    Nop,
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Pre-cast byte offset.
        offset: u64,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Pre-cast byte offset.
        offset: u64,
    },
    /// Memory fence.
    Fence,
    /// `dst = mem[addr]; mem[addr] = op(dst, src)`.
    AtomicRmw {
        /// The read-modify-write operation.
        op: AluOp,
        /// Receives the old memory value.
        dst: Reg,
        /// Address register.
        addr: Reg,
        /// Operand register.
        src: Reg,
    },
    /// Spin-acquire of the lock word addressed by `lock`.
    LockAcquire {
        /// Lock-address register.
        lock: Reg,
    },
    /// Release of the lock word addressed by `lock`.
    LockRelease {
        /// Lock-address register.
        lock: Reg,
    },
    /// Irrevocable I/O output of `src`.
    Io {
        /// Source register.
        src: Reg,
    },
    /// Region boundary: the PC-checkpointing store, with the recovery
    /// point pre-encoded.
    Boundary {
        /// Encoded [`crate::ProgramPoint`] of the instruction after the
        /// boundary (the §IV-F recovery PC).
        pc_enc: u64,
    },
    /// Live-out register checkpoint store.
    CheckpointStore {
        /// The checkpointed register.
        reg: Reg,
    },
    /// Call: pushes the pre-encoded return point and enters the
    /// callee's entry block.
    Call {
        /// Flat index of the callee's entry block.
        callee_block: u32,
        /// Encoded [`crate::ProgramPoint`] of the return point.
        ret_enc: u64,
    },
    /// Unconditional jump to a pre-linked block.
    Jump {
        /// Flat index of the target block.
        target: u32,
    },
    /// Two-way conditional branch with pre-linked targets.
    Branch {
        /// The comparison.
        cond: Cond,
        /// Left comparison register.
        src: Reg,
        /// Right comparison operand.
        rhs: Operand,
        /// Flat index of the taken-path block.
        then_blk: u32,
        /// Flat index of the fall-through block.
        else_blk: u32,
    },
    /// Function return: pops the return point from the in-memory stack
    /// (or halts when returning from the entry frame).
    Ret,
    /// Thread exit.
    Halt,
    /// Fused load-op: `dst = mem[base + offset]` then the dependent
    /// ALU component.
    LoadAlu {
        /// Load destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Pre-cast byte offset.
        offset: u64,
        /// The dependent ALU component (executed second).
        alu: FusedAlu,
    },
    /// Fused ALU-store: the ALU component then `mem[base + offset] =
    /// src`. Produced by both the *op-store* pattern (`src == alu.dst`)
    /// and the *addr-gen + store* pattern (`base == alu.dst`).
    AluStore {
        /// The ALU component (executed first).
        alu: FusedAlu,
        /// Store source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Pre-cast byte offset.
        offset: u64,
    },
    /// Fused addr-gen + load: the address-producing ALU component then
    /// `dst = mem[base + offset]` with `base == alu.dst`.
    AluLoad {
        /// The ALU component (executed first).
        alu: FusedAlu,
        /// Load destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Pre-cast byte offset.
        offset: u64,
    },
    /// Fused compare-and-branch: the ALU component then a dependent
    /// [`MicroOp::Branch`]-shaped terminator.
    CmpBr {
        /// The ALU component (executed first).
        alu: FusedAlu,
        /// The comparison.
        cond: Cond,
        /// Left comparison register.
        src: Reg,
        /// Right comparison operand.
        rhs: Operand,
        /// Flat index of the taken-path block.
        then_blk: u32,
        /// Flat index of the fall-through block.
        else_blk: u32,
    },
}

impl MicroOp {
    /// Number of retire components (original instructions) this
    /// micro-op carries: 2 for fused variants, 1 otherwise.
    pub fn components(&self) -> u8 {
        match self {
            MicroOp::LoadAlu { .. }
            | MicroOp::AluStore { .. }
            | MicroOp::AluLoad { .. }
            | MicroOp::CmpBr { .. } => 2,
            _ => 1,
        }
    }

    /// True for micro-ops whose every component retires as a plain
    /// [`crate::DynEvent::Alu`] — the class the inner loop batches
    /// without yielding to the timing simulator.
    pub fn is_alu_class(&self) -> bool {
        matches!(
            self,
            MicroOp::Alu { .. }
                | MicroOp::AluImm { .. }
                | MicroOp::MovImm { .. }
                | MicroOp::Nop
                | MicroOp::Jump { .. }
                | MicroOp::Branch { .. }
                | MicroOp::CmpBr { .. }
        )
    }
}
