//! Backward liveness dataflow analysis.
//!
//! The checkpoint-insertion pass (§IV-A "Checkpoint Store Insertion")
//! computes the live-out registers of each region and checkpoints them
//! after their last update point. Regions start at block boundaries after
//! the block-splitting step, so block-level live-in/live-out sets plus a
//! per-instruction backward walk give everything the pass needs.

use crate::cfg::Cfg;
use crate::program::{BlockId, Function};
use crate::reg::RegSet;

/// Block-level liveness results for one function.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Runs the backward dataflow to a fixpoint.
    pub fn compute(func: &Function, cfg: &Cfg) -> Liveness {
        let n = func.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![RegSet::new(); n];
        let mut kill = vec![RegSet::new(); n];
        for (id, block) in func.iter_blocks() {
            let (g, k) = (&mut gen[id.index()], &mut kill[id.index()]);
            for inst in &block.insts {
                let mut uses = inst.uses();
                uses.subtract(k);
                g.union_with(&uses);
                k.union_with(&inst.defs());
            }
            let mut uses = block.term.uses();
            uses.subtract(k);
            g.union_with(&uses);
        }

        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        // Iterate in post-order (reverse RPO) for fast convergence.
        let order: Vec<BlockId> = cfg.reverse_post_order().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = RegSet::new();
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inp = out;
                inp.subtract(&kill[b.index()]);
                inp.union_with(&gen[b.index()]);
                if out != live_out[b.index()] || inp != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }

    /// Registers live at exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    /// Per-instruction live-after sets for block `b`: element `i` is the
    /// set of registers live immediately after instruction `i` (index
    /// `insts.len()` is not included; use [`Liveness::live_out`] for the
    /// set after the terminator).
    pub fn live_after_insts(&self, func: &Function, b: BlockId) -> Vec<RegSet> {
        let block = func.block(b);
        let mut cur = *self.live_out(b);
        // Terminator uses are live before the terminator, i.e. after the
        // last instruction.
        cur.union_with(&block.term.uses());
        let mut result = vec![RegSet::new(); block.insts.len()];
        for i in (0..block.insts.len()).rev() {
            result[i] = cur;
            let inst = &block.insts[i];
            cur.subtract(&inst.defs());
            cur.union_with(&inst.uses());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{AluOp, Cond};
    use crate::reg::Reg;

    #[test]
    fn straight_line_liveness() {
        // r1 = 1; r2 = r1 + 1; [r2] = r1; ret
        let mut b = FuncBuilder::new("s");
        b.mov_imm(Reg::R1, 1);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1);
        b.store(Reg::R1, Reg::R2, 0);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let l = Liveness::compute(&f, &cfg);
        assert!(l.live_in(f.entry).contains(Reg::SP), "ret reads sp");
        assert!(
            !l.live_in(f.entry).contains(Reg::R1),
            "r1 defined before use"
        );
        assert!(l.live_out(f.entry).is_empty());
    }

    #[test]
    fn loop_carried_liveness() {
        // r1 = 0; loop: r1 = r1 + 1; if r1 != 10 goto loop; exit: [r2] = r1
        let mut b = FuncBuilder::new("l");
        b.mov_imm(Reg::R1, 0);
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 10, header, exit);
        b.switch_to(exit);
        b.store(Reg::R1, Reg::R2, 0);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let l = Liveness::compute(&f, &cfg);
        assert!(
            l.live_in(header).contains(Reg::R1),
            "loop-carried r1 live into header"
        );
        assert!(l.live_out(header).contains(Reg::R1));
        assert!(
            l.live_in(header).contains(Reg::R2),
            "r2 used after the loop"
        );
        assert!(l.live_in(f.entry).contains(Reg::R2));
    }

    #[test]
    fn per_instruction_live_after() {
        // r1 = 1; r2 = 2; [r1] = r2
        let mut b = FuncBuilder::new("p");
        b.mov_imm(Reg::R1, 1);
        b.mov_imm(Reg::R2, 2);
        b.store(Reg::R2, Reg::R1, 0);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let l = Liveness::compute(&f, &cfg);
        let after = l.live_after_insts(&f, f.entry);
        assert_eq!(after.len(), 3);
        // After r1 = 1: r1 live (used by store), r2 about to be defined.
        assert!(after[0].contains(Reg::R1));
        assert!(!after[0].contains(Reg::R2));
        // After r2 = 2: both live.
        assert!(after[1].contains(Reg::R1) && after[1].contains(Reg::R2));
        // After the store: nothing but SP (for ret).
        assert!(!after[2].contains(Reg::R1) && !after[2].contains(Reg::R2));
        assert!(after[2].contains(Reg::SP));
    }

    #[test]
    fn branch_merges_successor_liveins() {
        let mut b = FuncBuilder::new("m");
        let left = b.new_block();
        let right = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R9, 0, left, right);
        b.switch_to(left);
        b.store(Reg::R3, Reg::R4, 0);
        b.ret();
        b.switch_to(right);
        b.store(Reg::R5, Reg::R6, 0);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let l = Liveness::compute(&f, &cfg);
        let lo = l.live_out(f.entry);
        for r in [Reg::R3, Reg::R4, Reg::R5, Reg::R6] {
            assert!(lo.contains(r), "{r} live out of the branch block");
        }
        assert!(l.live_in(f.entry).contains(Reg::R9));
    }
}
