//! Load-time lowering of a [`Program`] into the flat micro-op format.
//!
//! [`DecodedProgram::decode`] walks every basic block once, resolves
//! operands, pre-links branch/call targets as flat block indices, fuses
//! adjacent instruction pairs into the superinstructions of
//! [`crate::uop`] (load-op, op-store, addr-gen+access, cmp-branch), and
//! records for each block an *entry table* mapping every instruction
//! index to an exact micro-op cursor. The result is immutable and
//! thread-independent: the simulator wraps it in an `Arc` shared by all
//! hardware threads and every crash-sweep fork.
//!
//! ## Fusion rules
//!
//! Pairs are fused greedily left-to-right, never overlapping, and only
//! when the second instruction depends on the first's destination:
//!
//! * **load-op** — `Load dst` + `Alu`/`AluImm` reading `dst` →
//!   [`MicroOp::LoadAlu`];
//! * **op-store** — `Alu`/`AluImm dst` + `Store` with `src == dst` →
//!   [`MicroOp::AluStore`];
//! * **addr-gen + access** — `Alu`/`AluImm dst` + `Load`/`Store` with
//!   `base == dst` → [`MicroOp::AluLoad`] / [`MicroOp::AluStore`];
//! * **cmp-branch** — a final `Alu`/`AluImm dst` + a `Branch`
//!   terminator reading `dst` → [`MicroOp::CmpBr`].
//!
//! Each fused micro-op still retires one component per slot, so cycle
//! accounting, crash points, and checkpoint re-entry stay bit-identical
//! to the tree-walking reference interpreter (see `crate::exec`).

use crate::inst::{BranchRhs, Inst, Terminator};
use crate::program::{BlockId, FuncId, Program, ProgramPoint};
use crate::uop::{FusedAlu, MicroOp, Operand};

/// An exact execution cursor: micro-op index plus the number of
/// components of that micro-op already retired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryRef {
    /// Index into [`DecodedProgram::uops`].
    pub uop: u32,
    /// Components of that micro-op already retired (0, or 1 when the
    /// cursor points inside a fused pair).
    pub comp: u8,
}

/// One decoded basic block.
#[derive(Clone, Debug)]
pub struct DecodedBlock {
    /// First micro-op of the block in [`DecodedProgram::uops`].
    pub start: u32,
    /// One past the block's last micro-op (always the terminator).
    pub end: u32,
    /// Entry table: for every instruction index `0..=insts.len()` of
    /// the source block, the exact cursor to resume at (index
    /// `insts.len()` is the terminator).
    pub entry: Box<[EntryRef]>,
    /// True if every component of every micro-op retires as a plain
    /// ALU event — the precondition for the hot-trace compiled tier.
    pub pure_alu: bool,
    /// Total retire components (source instructions incl. terminator).
    pub insts: u32,
}

/// A whole program lowered to micro-ops (see the module docs).
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    /// All micro-ops, blocks back to back.
    pub uops: Vec<MicroOp>,
    /// Per-block metadata, indexed by flat block id.
    pub blocks: Vec<DecodedBlock>,
    /// Flat id of a function's first block, indexed by function index:
    /// `flat = block_base[func] + block.index()`.
    pub block_base: Vec<u32>,
    /// Flat id of the program entry function's entry block.
    pub entry_block: u32,
    /// Per-micro-op encoded [`ProgramPoint`] of its first component;
    /// `base_enc[u] + comp` encodes the cursor `(u, comp)` exactly
    /// (components of a fused pair are consecutive instruction
    /// indices).
    pub base_enc: Vec<u64>,
}

impl DecodedProgram {
    /// Lowers `program`; cost is one linear pass over the static code.
    pub fn decode(program: &Program) -> DecodedProgram {
        Self::decode_with(program, true)
    }

    /// Lowering with superinstruction fusion switched on or off.
    ///
    /// `fuse = false` produces one micro-op per source instruction —
    /// semantically identical, just never pairing. The simulator always
    /// fuses; the unfused form exists for the `dispatch_loop`
    /// microbench, which separates the win of flat pre-decoded dispatch
    /// from the win of fusion on top of it.
    pub fn decode_with(program: &Program, fuse: bool) -> DecodedProgram {
        let mut block_base = Vec::with_capacity(program.funcs.len());
        let mut total = 0u32;
        for f in &program.funcs {
            block_base.push(total);
            total += f.blocks.len() as u32;
        }

        let mut d = Decoder {
            program,
            block_base,
            fuse,
            uops: Vec::new(),
            base_enc: Vec::new(),
            blocks: Vec::with_capacity(total as usize),
        };
        for (fi, f) in program.funcs.iter().enumerate() {
            for (bi, block) in f.blocks.iter().enumerate() {
                d.decode_block(FuncId::from_index(fi), BlockId::from_index(bi), block);
            }
        }

        let entry_func = program.func(program.entry);
        let entry_block = d.block_base[program.entry.index()] + entry_func.entry.index() as u32;
        DecodedProgram {
            uops: d.uops,
            blocks: d.blocks,
            block_base: d.block_base,
            entry_block,
            base_enc: d.base_enc,
        }
    }

    /// Flat block id of `(func, block)`.
    #[inline]
    pub fn flat_block(&self, func: FuncId, block: BlockId) -> u32 {
        self.block_base[func.index()] + block.index() as u32
    }

    /// Exact cursor for an arbitrary [`ProgramPoint`] (including points
    /// landing inside a fused pair, e.g. a checkpointed recovery PC).
    ///
    /// # Panics
    ///
    /// Panics if the point is malformed (out-of-range block or
    /// instruction index), which indicates a compiler bug — mirroring
    /// the reference interpreter.
    #[inline]
    pub fn locate(&self, point: ProgramPoint) -> EntryRef {
        let blk = &self.blocks[self.flat_block(point.func, point.block) as usize];
        blk.entry[point.inst as usize]
    }

    /// Encoded [`ProgramPoint`] of cursor `(uop, comp)`.
    #[inline]
    pub fn point_enc(&self, uop: u32, comp: u8) -> u64 {
        self.base_enc[uop as usize] + comp as u64
    }
}

struct Decoder<'p> {
    program: &'p Program,
    block_base: Vec<u32>,
    fuse: bool,
    uops: Vec<MicroOp>,
    base_enc: Vec<u64>,
    blocks: Vec<DecodedBlock>,
}

impl Decoder<'_> {
    fn push(&mut self, uop: MicroOp, func: FuncId, block: BlockId, inst: u32) -> u32 {
        let at = self.uops.len() as u32;
        self.uops.push(uop);
        self.base_enc
            .push(ProgramPoint { func, block, inst }.encode());
        at
    }

    fn decode_block(&mut self, func: FuncId, block: BlockId, b: &crate::program::Block) {
        let start = self.uops.len() as u32;
        let n = b.insts.len();
        let mut entry = vec![EntryRef { uop: 0, comp: 0 }; n + 1].into_boxed_slice();

        let mut i = 0usize;
        let mut term_fused = false;
        while i < n {
            // Pair fusion with the next instruction.
            if self.fuse && i + 1 < n {
                if let Some(fused) = fuse_pair(&b.insts[i], &b.insts[i + 1]) {
                    let at = self.push(fused, func, block, i as u32);
                    entry[i] = EntryRef { uop: at, comp: 0 };
                    entry[i + 1] = EntryRef { uop: at, comp: 1 };
                    i += 2;
                    continue;
                }
            }
            // Terminator fusion: a final ALU feeding the branch.
            if self.fuse && i + 1 == n {
                if let Some(fused) = self.fuse_cmp_br(func, &b.insts[i], &b.term) {
                    let at = self.push(fused, func, block, i as u32);
                    entry[i] = EntryRef { uop: at, comp: 0 };
                    entry[n] = EntryRef { uop: at, comp: 1 };
                    term_fused = true;
                    i += 1;
                    continue;
                }
            }
            let uop = self.single(&b.insts[i], func, block, i as u32);
            let at = self.push(uop, func, block, i as u32);
            entry[i] = EntryRef { uop: at, comp: 0 };
            i += 1;
        }
        if !term_fused {
            let uop = self.terminator(func, &b.term);
            let at = self.push(uop, func, block, n as u32);
            entry[n] = EntryRef { uop: at, comp: 0 };
        }

        let end = self.uops.len() as u32;
        let pure_alu = self.uops[start as usize..end as usize]
            .iter()
            .all(|u| u.is_alu_class());
        self.blocks.push(DecodedBlock {
            start,
            end,
            entry,
            pure_alu,
            insts: (n + 1) as u32,
        });
    }

    /// Lowers a single non-terminator instruction.
    fn single(&self, inst: &Inst, func: FuncId, block: BlockId, i: u32) -> MicroOp {
        match *inst {
            Inst::Alu { op, dst, lhs, rhs } => MicroOp::Alu { op, dst, lhs, rhs },
            Inst::AluImm { op, dst, src, imm } => MicroOp::AluImm {
                op,
                dst,
                src,
                imm: imm as u64,
            },
            Inst::MovImm { dst, imm } => MicroOp::MovImm {
                dst,
                imm: imm as u64,
            },
            Inst::Load { dst, base, offset } => MicroOp::Load {
                dst,
                base,
                offset: offset as u64,
            },
            Inst::Store { src, base, offset } => MicroOp::Store {
                src,
                base,
                offset: offset as u64,
            },
            Inst::Call { callee } => {
                let cf = self.program.func(callee);
                MicroOp::Call {
                    callee_block: self.block_base[callee.index()] + cf.entry.index() as u32,
                    ret_enc: ProgramPoint {
                        func,
                        block,
                        inst: i + 1,
                    }
                    .encode(),
                }
            }
            Inst::Fence => MicroOp::Fence,
            Inst::AtomicRmw { op, dst, addr, src } => MicroOp::AtomicRmw { op, dst, addr, src },
            Inst::LockAcquire { lock } => MicroOp::LockAcquire { lock },
            Inst::LockRelease { lock } => MicroOp::LockRelease { lock },
            Inst::Nop => MicroOp::Nop,
            Inst::Io { src } => MicroOp::Io { src },
            Inst::RegionBoundary { .. } => MicroOp::Boundary {
                pc_enc: ProgramPoint {
                    func,
                    block,
                    inst: i + 1,
                }
                .encode(),
            },
            Inst::CheckpointStore { reg } => MicroOp::CheckpointStore { reg },
        }
    }

    fn terminator(&self, func: FuncId, term: &Terminator) -> MicroOp {
        let base = self.block_base[func.index()];
        match *term {
            Terminator::Jump { target } => MicroOp::Jump {
                target: base + target.index() as u32,
            },
            Terminator::Branch {
                cond,
                src,
                rhs,
                then_bb,
                else_bb,
            } => MicroOp::Branch {
                cond,
                src,
                rhs: rhs.into(),
                then_blk: base + then_bb.index() as u32,
                else_blk: base + else_bb.index() as u32,
            },
            Terminator::Ret => MicroOp::Ret,
            Terminator::Halt => MicroOp::Halt,
        }
    }

    /// Cmp-branch fusion: the block's last instruction is an ALU whose
    /// destination feeds the branch comparison.
    fn fuse_cmp_br(&self, func: FuncId, last: &Inst, term: &Terminator) -> Option<MicroOp> {
        let Terminator::Branch {
            cond,
            src,
            rhs,
            then_bb,
            else_bb,
        } = *term
        else {
            return None;
        };
        let alu = alu_head(last)?;
        let depends = src == alu.dst || rhs == BranchRhs::Reg(alu.dst);
        if !depends {
            return None;
        }
        let base = self.block_base[func.index()];
        Some(MicroOp::CmpBr {
            alu,
            cond,
            src,
            rhs: rhs.into(),
            then_blk: base + then_bb.index() as u32,
            else_blk: base + else_bb.index() as u32,
        })
    }
}

/// The ALU component of `Inst::Alu`/`Inst::AluImm`, if `inst` is one.
fn alu_head(inst: &Inst) -> Option<FusedAlu> {
    match *inst {
        Inst::Alu { op, dst, lhs, rhs } => Some(FusedAlu {
            op,
            dst,
            lhs,
            rhs: Operand::Reg(rhs),
        }),
        Inst::AluImm { op, dst, src, imm } => Some(FusedAlu {
            op,
            dst,
            lhs: src,
            rhs: Operand::Imm(imm as u64),
        }),
        _ => None,
    }
}

/// Pair fusion (see the module docs); returns the fused micro-op when
/// `(a, b)` match a pattern.
fn fuse_pair(a: &Inst, b: &Inst) -> Option<MicroOp> {
    // load-op: Load dst + ALU reading dst.
    if let Inst::Load { dst, base, offset } = *a {
        let alu = alu_head(b)?;
        let reads_dst = alu.lhs == dst || alu.rhs == Operand::Reg(dst);
        if reads_dst {
            return Some(MicroOp::LoadAlu {
                dst,
                base,
                offset: offset as u64,
                alu,
            });
        }
        return None;
    }
    // ALU head + dependent memory access.
    let alu = alu_head(a)?;
    match *b {
        // op-store (src == dst) or addr-gen + store (base == dst).
        Inst::Store { src, base, offset } if src == alu.dst || base == alu.dst => {
            Some(MicroOp::AluStore {
                alu,
                src,
                base,
                offset: offset as u64,
            })
        }
        // addr-gen + load.
        Inst::Load { dst, base, offset } if base == alu.dst => Some(MicroOp::AluLoad {
            alu,
            dst,
            base,
            offset: offset as u64,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{AluOp, Cond};
    use crate::layout;
    use crate::reg::Reg;

    fn decode_single(b: FuncBuilder) -> (Program, DecodedProgram) {
        let p = Program::from_single(b.finish());
        let d = DecodedProgram::decode(&p);
        (p, d)
    }

    #[test]
    fn straight_line_block_decodes_flat() {
        let mut b = FuncBuilder::new("flat");
        b.mov_imm(Reg::R1, 7);
        b.nop();
        b.halt();
        let (_, d) = decode_single(b);
        assert_eq!(d.blocks.len(), 1);
        let blk = &d.blocks[0];
        assert_eq!(
            &d.uops[blk.start as usize..blk.end as usize],
            &[
                MicroOp::MovImm {
                    dst: Reg::R1,
                    imm: 7
                },
                MicroOp::Nop,
                MicroOp::Halt,
            ]
        );
        assert_eq!(blk.insts, 3);
        assert!(!blk.pure_alu, "halt is an event, not ALU class");
    }

    #[test]
    fn load_op_fuses_and_entry_table_splits_it() {
        let mut b = FuncBuilder::new("loadop");
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        b.load(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R1, 5);
        b.halt();
        let (_, d) = decode_single(b);
        let blk = &d.blocks[0];
        assert!(matches!(
            d.uops[blk.start as usize + 1],
            MicroOp::LoadAlu { dst: Reg::R1, .. }
        ));
        // Entry table: inst 1 (the load) is comp 0, inst 2 (the add) is
        // comp 1 of the same micro-op.
        assert_eq!(blk.entry[1].uop, blk.entry[2].uop);
        assert_eq!(blk.entry[1].comp, 0);
        assert_eq!(blk.entry[2].comp, 1);
        // The terminator has its own entry.
        assert_eq!(blk.entry[3].comp, 0);
    }

    #[test]
    fn op_store_and_addr_gen_fuse() {
        let mut b = FuncBuilder::new("opstore");
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R0, 3); // op-store head
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R4, Reg::R2, 8); // addr-gen head
        b.load(Reg::R5, Reg::R4, 0);
        b.halt();
        let (_, d) = decode_single(b);
        let uops = &d.uops[d.blocks[0].start as usize..d.blocks[0].end as usize];
        assert!(uops.iter().any(|u| matches!(u, MicroOp::AluStore { .. })));
        assert!(uops.iter().any(|u| matches!(u, MicroOp::AluLoad { .. })));
        // 6 source insts (incl. halt) in 4 micro-ops.
        assert_eq!(uops.len(), 4);
        assert_eq!(d.blocks[0].insts, 6);
    }

    #[test]
    fn cmp_branch_fuses_with_terminator() {
        let mut b = FuncBuilder::new("cmpbr");
        let exit = b.new_block();
        let header = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 4, header, exit);
        b.switch_to(exit);
        b.halt();
        let (_, d) = decode_single(b);
        let hdr = &d.blocks[2]; // blocks: entry, exit, header
        assert_eq!(hdr.end - hdr.start, 1, "single fused CmpBr micro-op");
        assert!(matches!(d.uops[hdr.start as usize], MicroOp::CmpBr { .. }));
        assert!(hdr.pure_alu);
        assert_eq!(hdr.insts, 2);
        // The terminator entry resumes at component 1.
        assert_eq!(hdr.entry[1].comp, 1);
    }

    #[test]
    fn unfused_decode_is_one_uop_per_instruction() {
        let mut b = FuncBuilder::new("nofusemode");
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R0, 3);
        b.store(Reg::R1, Reg::R2, 0); // would fuse into AluStore
        b.load(Reg::R3, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R4, Reg::R3, 1); // would fuse into LoadAlu
        b.halt();
        let p = Program::from_single(b.finish());
        let d = DecodedProgram::decode_with(&p, false);
        let blk = &d.blocks[0];
        assert_eq!(blk.end - blk.start, blk.insts, "no pairing when fuse=off");
        assert!(d.uops.iter().all(|u| u.components() == 1));
    }

    #[test]
    fn independent_neighbours_do_not_fuse() {
        let mut b = FuncBuilder::new("nofuse");
        b.load(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R4, 1); // independent of R1
        b.halt();
        let (_, d) = decode_single(b);
        let blk = &d.blocks[0];
        assert_eq!(blk.end - blk.start, 3, "no fusion without a dependence");
    }

    #[test]
    fn branch_targets_are_flat_linked_and_call_resolves() {
        use crate::program::FuncId;
        let mut cb = FuncBuilder::new("callee");
        cb.nop();
        cb.ret();
        let callee = cb.finish();
        let mut mb = FuncBuilder::new("main");
        mb.call(FuncId::from_index(1));
        mb.halt();
        let p = Program::new(vec![mb.finish(), callee], FuncId::from_index(0));
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.block_base, vec![0, 1]);
        assert_eq!(d.entry_block, 0);
        let MicroOp::Call {
            callee_block,
            ret_enc,
        } = d.uops[d.blocks[0].start as usize]
        else {
            panic!("expected call");
        };
        assert_eq!(callee_block, 1);
        let ret = ProgramPoint::decode(ret_enc);
        assert_eq!(ret.func, FuncId::from_index(0));
        assert_eq!(ret.inst, 1);
    }

    #[test]
    fn locate_roundtrips_every_program_point() {
        let mut b = FuncBuilder::new("roundtrip");
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        b.load(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.store(Reg::R1, Reg::R2, 0);
        let exit = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R1, 1, exit, exit);
        b.switch_to(exit);
        b.halt();
        let (p, d) = decode_single(b);
        for (bi, blk) in p.funcs[0].blocks.iter().enumerate() {
            for inst in 0..=blk.insts.len() as u32 {
                let pt = ProgramPoint {
                    func: p.entry,
                    block: BlockId::from_index(bi),
                    inst,
                };
                let e = d.locate(pt);
                assert_eq!(
                    d.point_enc(e.uop, e.comp),
                    pt.encode(),
                    "cursor ({}, {}) must encode back to {:?}",
                    e.uop,
                    e.comp,
                    pt
                );
            }
        }
    }
}
