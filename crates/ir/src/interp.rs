//! Deterministic functional interpreter.
//!
//! One [`Interp`] per hardware thread executes the IR against a shared
//! byte-addressable [`Memory`] and emits one [`DynEvent`] per executed
//! instruction. The timing simulator decides the interleaving (it calls
//! `step` on whichever thread's core has a free slot), and the persistence
//! hardware models consume the store events.
//!
//! The interpreter is *restartable*: after a simulated power failure the
//! recovery runtime constructs a fresh `Interp` positioned at the
//! checkpointed program point with registers reloaded from the checkpoint
//! storage in PM ([`Interp::resume_from_checkpoint`]), exactly as §IV-F of
//! the paper describes. Re-executed instructions then replay
//! deterministically because every input (PM contents + checkpointed
//! registers) is identical to the original run.

use crate::exec::DecodedState;
use crate::inst::{BranchRhs, Inst, Terminator};
use crate::layout;
use crate::program::{Program, ProgramPoint};
use crate::reg::{Reg, NUM_REGS};

pub use crate::memory::Memory;

/// Identifies a software thread.
pub type ThreadId = usize;

/// Why a store event happened; the persistence hardware cares about the
/// distinction (boundaries broadcast region IDs; checkpoints/boundaries
/// are compiler instrumentation for the instruction-count statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// A program data store.
    Plain,
    /// An atomic/lock store (synchronisation point).
    Atomic,
    /// A compiler-inserted live-out register checkpoint.
    Checkpoint,
    /// The PC-checkpointing store of a region boundary.
    BoundaryPc,
    /// A call pushing its return address.
    StackPush,
}

/// One dynamic event, produced per executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynEvent {
    /// A compute instruction (ALU, move, nop, branch, jump).
    Alu,
    /// An 8-byte load from `addr`.
    Load {
        /// Byte address (8-byte aligned).
        addr: u64,
    },
    /// An 8-byte store.
    Store {
        /// Byte address (8-byte aligned).
        addr: u64,
        /// The stored value.
        val: u64,
        /// The kind of store.
        kind: StoreKind,
    },
    /// A region boundary: stores the encoded recovery PC to the thread's
    /// PC slot *and* broadcasts the ending region's ID to all MCs.
    Boundary {
        /// Address of the thread's PC checkpoint slot.
        addr: u64,
        /// Encoded [`ProgramPoint`] of the next region's start.
        pc_val: u64,
    },
    /// A memory fence.
    Fence,
    /// A failed lock acquire; the thread did not advance and will retry.
    LockSpin {
        /// Address of the contended lock word.
        addr: u64,
    },
    /// An irrevocable I/O output of `val` (§IV-A): consumed by the
    /// machine's I/O port model; re-emitted if its region replays after
    /// power failure, which is exactly the anomaly the paper's
    /// boundary-before-I/O placement bounds to one operation.
    Io {
        /// The emitted value.
        val: u64,
    },
    /// The thread finished.
    Halt,
}

impl DynEvent {
    /// True for events that enter the persist path (everything a WPQ entry
    /// is created for).
    pub fn is_persist_store(&self) -> bool {
        matches!(self, DynEvent::Store { .. } | DynEvent::Boundary { .. })
    }
}

/// Per-thread functional interpreter state.
#[derive(Clone, Debug)]
pub struct Interp {
    /// The architectural register file.
    pub(crate) regs: [u64; NUM_REGS],
    /// Next instruction to execute.
    pub(crate) point: ProgramPoint,
    pub(crate) tid: ThreadId,
    pub(crate) finished: bool,
    /// Executed instruction count (including instrumentation).
    pub(crate) insts_executed: u64,
    /// Executed instrumentation count (boundaries + checkpoint stores).
    pub(crate) instrumentation_executed: u64,
    /// Decoded-engine hot-tier state ([`crate::exec`]); `None` until
    /// the first `step_batch` call, so reference-mode threads pay
    /// nothing for it.
    pub(crate) dec: Option<Box<DecodedState>>,
    /// Decoded-engine cursor: flat micro-op index (valid only when
    /// `cursor_valid`).
    pub(crate) cursor: u32,
    /// Component progress inside a fused micro-op at `cursor`.
    pub(crate) comp: u8,
    /// True while `cursor`/`comp` track the thread (false after a
    /// reference-mode `step` moved `point` behind the engine's back).
    pub(crate) cursor_valid: bool,
    /// True while `point` lags the decoded cursor. `step_batch` leaves
    /// `point` stale instead of re-encoding it on every batch; the cold
    /// readers (forks, reports, mode switches) call
    /// `Interp::sync_point` first.
    pub(crate) point_stale: bool,
}

impl Interp {
    /// Creates a thread at the program's entry with a fresh register file
    /// (`sp` initialised to the thread's stack window, `r0` set to `tid`
    /// so programs can diverge per thread).
    pub fn new(program: &Program, tid: ThreadId) -> Interp {
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::SP.index()] = layout::initial_sp(tid);
        regs[Reg::R0.index()] = tid as u64;
        Interp {
            regs,
            point: ProgramPoint::func_entry(program, program.entry),
            tid,
            finished: false,
            insts_executed: 0,
            instrumentation_executed: 0,
            dec: None,
            cursor: 0,
            comp: 0,
            cursor_valid: false,
            point_stale: false,
        }
    }

    /// Recovery constructor (§IV-F): resumes at the checkpointed recovery
    /// PC with every register reloaded from the thread's checkpoint
    /// storage in `pm`.
    pub fn resume_from_checkpoint(pm: &Memory, tid: ThreadId) -> Interp {
        let mut regs = [0u64; NUM_REGS];
        for r in Reg::all() {
            regs[r.index()] = pm.read_word(layout::checkpoint_slot(tid, r));
        }
        let point = ProgramPoint::decode(pm.read_word(layout::pc_slot(tid)));
        Interp {
            regs,
            point,
            tid,
            finished: false,
            insts_executed: 0,
            instrumentation_executed: 0,
            dec: None,
            cursor: 0,
            comp: 0,
            cursor_valid: false,
            point_stale: false,
        }
    }

    /// The thread id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// True once the thread has halted.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The next instruction's program point.
    ///
    /// After decoded-engine batches (`step_batch`), `point` is kept
    /// lazily — call [`Interp::sync_point`] first at those call sites;
    /// a stale read trips the debug assertion.
    pub fn point(&self) -> ProgramPoint {
        debug_assert!(
            !self.point_stale,
            "reading a stale program point: call sync_point after step_batch"
        );
        self.point
    }

    /// Reads a register (test/diagnostic use).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (test/diagnostic use).
    pub fn set_reg(&mut self, r: Reg, val: u64) {
        self.regs[r.index()] = val;
    }

    /// Total executed instructions (including compiler instrumentation).
    pub fn insts_executed(&self) -> u64 {
        self.insts_executed
    }

    /// Executed boundary/checkpoint instructions only.
    pub fn instrumentation_executed(&self) -> u64 {
        self.instrumentation_executed
    }

    fn addr(&self, base: Reg, offset: i64) -> u64 {
        self.regs[base.index()].wrapping_add(offset as u64)
    }

    /// Executes one instruction, updating registers, `mem`, and the
    /// program point, and returns the resulting event.
    ///
    /// A failed lock acquire returns [`DynEvent::LockSpin`] *without*
    /// advancing, so the caller can retry later. Calling `step` on a
    /// finished thread returns [`DynEvent::Halt`] forever.
    ///
    /// # Panics
    ///
    /// Panics if the program point is malformed (out-of-range block or
    /// instruction index), which indicates a compiler bug.
    pub fn step(&mut self, program: &Program, mem: &mut Memory) -> DynEvent {
        if self.finished {
            return DynEvent::Halt;
        }
        debug_assert!(
            !self.point_stale,
            "reference step on a stale point: call sync_point after step_batch"
        );
        // A reference-mode step moves `point` behind the decoded
        // engine's back; force a cursor re-sync on the next batch.
        self.cursor_valid = false;
        let func = program.func(self.point.func);
        let block = func.block(self.point.block);
        let idx = self.point.inst as usize;

        if idx < block.insts.len() {
            let inst = block.insts[idx].clone();
            let next = ProgramPoint {
                inst: self.point.inst + 1,
                ..self.point
            };
            let ev = self.exec_inst(&inst, program, mem, next);
            if !matches!(ev, DynEvent::LockSpin { .. }) {
                self.insts_executed += 1;
                if inst.is_instrumentation() {
                    self.instrumentation_executed += 1;
                }
            }
            ev
        } else {
            self.insts_executed += 1;
            self.exec_term(&block.term.clone(), mem)
        }
    }

    fn exec_inst(
        &mut self,
        inst: &Inst,
        program: &Program,
        mem: &mut Memory,
        next: ProgramPoint,
    ) -> DynEvent {
        match *inst {
            Inst::Alu { op, dst, lhs, rhs } => {
                self.regs[dst.index()] = op.apply(self.regs[lhs.index()], self.regs[rhs.index()]);
                self.point = next;
                DynEvent::Alu
            }
            Inst::AluImm { op, dst, src, imm } => {
                self.regs[dst.index()] = op.apply(self.regs[src.index()], imm as u64);
                self.point = next;
                DynEvent::Alu
            }
            Inst::MovImm { dst, imm } => {
                self.regs[dst.index()] = imm as u64;
                self.point = next;
                DynEvent::Alu
            }
            Inst::Load { dst, base, offset } => {
                let addr = self.addr(base, offset);
                self.regs[dst.index()] = mem.read_word(addr);
                self.point = next;
                DynEvent::Load { addr: addr & !7 }
            }
            Inst::Store { src, base, offset } => {
                let addr = self.addr(base, offset) & !7;
                let val = self.regs[src.index()];
                mem.write_word(addr, val);
                self.point = next;
                DynEvent::Store {
                    addr,
                    val,
                    kind: StoreKind::Plain,
                }
            }
            Inst::Call { callee } => {
                // Push the return point on the in-memory stack.
                let sp = self.regs[Reg::SP.index()].wrapping_sub(8);
                self.regs[Reg::SP.index()] = sp;
                let ret = next.encode();
                mem.write_word(sp, ret);
                self.point = ProgramPoint::func_entry(program, callee);
                DynEvent::Store {
                    addr: sp & !7,
                    val: ret,
                    kind: StoreKind::StackPush,
                }
            }
            Inst::Fence => {
                self.point = next;
                DynEvent::Fence
            }
            Inst::AtomicRmw { op, dst, addr, src } => {
                let a = self.regs[addr.index()] & !7;
                let old = mem.read_word(a);
                self.regs[dst.index()] = old;
                let new = op.apply(old, self.regs[src.index()]);
                mem.write_word(a, new);
                self.point = next;
                DynEvent::Store {
                    addr: a,
                    val: new,
                    kind: StoreKind::Atomic,
                }
            }
            Inst::LockAcquire { lock } => {
                let a = self.regs[lock.index()] & !7;
                if mem.read_word(a) == 0 {
                    mem.write_word(a, 1 + self.tid as u64);
                    self.point = next;
                    DynEvent::Store {
                        addr: a,
                        val: 1 + self.tid as u64,
                        kind: StoreKind::Atomic,
                    }
                } else {
                    DynEvent::LockSpin { addr: a }
                }
            }
            Inst::LockRelease { lock } => {
                let a = self.regs[lock.index()] & !7;
                mem.write_word(a, 0);
                self.point = next;
                DynEvent::Store {
                    addr: a,
                    val: 0,
                    kind: StoreKind::Atomic,
                }
            }
            Inst::Nop => {
                self.point = next;
                DynEvent::Alu
            }
            Inst::Io { src } => {
                let val = self.regs[src.index()];
                self.point = next;
                DynEvent::Io { val }
            }
            Inst::RegionBoundary { .. } => {
                // The PC-checkpointing store: the recovery point is the
                // instruction *after* this boundary.
                let slot = layout::pc_slot(self.tid);
                let pc_val = next.encode();
                mem.write_word(slot, pc_val);
                self.point = next;
                DynEvent::Boundary { addr: slot, pc_val }
            }
            Inst::CheckpointStore { reg } => {
                let slot = layout::checkpoint_slot(self.tid, reg);
                let val = self.regs[reg.index()];
                mem.write_word(slot, val);
                self.point = next;
                DynEvent::Store {
                    addr: slot,
                    val,
                    kind: StoreKind::Checkpoint,
                }
            }
        }
    }

    fn exec_term(&mut self, term: &Terminator, mem: &mut Memory) -> DynEvent {
        match *term {
            Terminator::Jump { target } => {
                self.point = ProgramPoint {
                    block: target,
                    inst: 0,
                    ..self.point
                };
                DynEvent::Alu
            }
            Terminator::Branch {
                cond,
                src,
                rhs,
                then_bb,
                else_bb,
            } => {
                let lhs = self.regs[src.index()];
                let rhs = match rhs {
                    BranchRhs::Imm(i) => i as u64,
                    BranchRhs::Reg(r) => self.regs[r.index()],
                };
                let target = if cond.eval(lhs, rhs) {
                    then_bb
                } else {
                    else_bb
                };
                self.point = ProgramPoint {
                    block: target,
                    inst: 0,
                    ..self.point
                };
                DynEvent::Alu
            }
            Terminator::Ret => {
                let sp = self.regs[Reg::SP.index()];
                if sp >= layout::initial_sp(self.tid) {
                    // Returning from the entry frame: the thread is done.
                    self.finished = true;
                    return DynEvent::Halt;
                }
                let ret = mem.read_word(sp);
                self.regs[Reg::SP.index()] = sp.wrapping_add(8);
                self.point = ProgramPoint::decode(ret);
                DynEvent::Load { addr: sp & !7 }
            }
            Terminator::Halt => {
                self.finished = true;
                DynEvent::Halt
            }
        }
    }

    /// Runs the thread to completion (or for at most `max_steps` steps),
    /// returning the events produced. Intended for tests and small
    /// programs; the timing simulator drives `step` itself.
    pub fn run(&mut self, program: &Program, mem: &mut Memory, max_steps: u64) -> Vec<DynEvent> {
        let mut events = Vec::new();
        for _ in 0..max_steps {
            let ev = self.step(program, mem);
            if ev == DynEvent::Halt {
                events.push(ev);
                break;
            }
            if let DynEvent::LockSpin { .. } = ev {
                // Single-threaded `run` cannot make progress on a held
                // lock; treat as a wedge and stop.
                events.push(ev);
                break;
            }
            events.push(ev);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{AluOp, Cond};
    use crate::program::FuncId;

    fn run_program(p: &Program, max: u64) -> (Memory, Vec<DynEvent>, Interp) {
        let mut mem = Memory::new();
        let mut t = Interp::new(p, 0);
        let evs = t.run(p, &mut mem, max);
        (mem, evs, t)
    }

    #[test]
    fn loop_executes_and_stores() {
        // for i in 0..4 { heap[i] = i*2 }
        let mut b = FuncBuilder::new("loop");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.alu_imm(AluOp::Shl, Reg::R3, Reg::R1, 1);
        b.store(Reg::R3, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R2, 8);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 4, header, exit);
        b.switch_to(exit);
        b.halt();
        let p = Program::from_single(b.finish());
        let (mem, evs, t) = run_program(&p, 1000);
        assert!(t.finished());
        for i in 0..4u64 {
            assert_eq!(mem.read_word(layout::HEAP_BASE + i * 8), i * 2);
        }
        let stores = evs
            .iter()
            .filter(|e| matches!(e, DynEvent::Store { .. }))
            .count();
        assert_eq!(stores, 4);
    }

    #[test]
    fn call_and_ret_via_memory_stack() {
        // callee: [HEAP] = 99
        let mut cb = FuncBuilder::new("callee");
        cb.mov_imm(Reg::R5, 99);
        cb.mov_imm(Reg::R6, layout::HEAP_BASE as i64);
        cb.store(Reg::R5, Reg::R6, 0);
        cb.ret();
        let callee = cb.finish();
        // main: call callee; [HEAP+8] = 1
        let mut mb = FuncBuilder::new("main");
        mb.call(FuncId::from_index(1));
        mb.mov_imm(Reg::R7, 1);
        mb.mov_imm(Reg::R8, layout::HEAP_BASE as i64);
        mb.store(Reg::R7, Reg::R8, 8);
        mb.halt();
        let p = Program::new(vec![mb.finish(), callee], FuncId::from_index(0));
        let (mem, evs, t) = run_program(&p, 1000);
        assert!(t.finished());
        assert_eq!(mem.read_word(layout::HEAP_BASE), 99);
        assert_eq!(mem.read_word(layout::HEAP_BASE + 8), 1);
        // The call pushed a return address into stack memory.
        assert!(evs.iter().any(|e| matches!(
            e,
            DynEvent::Store {
                kind: StoreKind::StackPush,
                ..
            }
        )));
        // The matching ret popped it with a load.
        assert!(evs.iter().any(|e| matches!(e, DynEvent::Load { .. })));
    }

    #[test]
    fn ret_from_entry_frame_halts() {
        let mut b = FuncBuilder::new("main");
        b.nop();
        b.ret();
        let p = Program::from_single(b.finish());
        let (_, evs, t) = run_program(&p, 10);
        assert!(t.finished());
        assert_eq!(*evs.last().unwrap(), DynEvent::Halt);
    }

    #[test]
    fn boundary_stores_recovery_pc() {
        let mut b = FuncBuilder::new("bdry");
        b.region_boundary();
        b.mov_imm(Reg::R1, 5);
        b.halt();
        let p = Program::from_single(b.finish());
        let (mem, evs, _) = run_program(&p, 10);
        let DynEvent::Boundary { addr, pc_val } = evs[0] else {
            panic!("expected boundary first, got {:?}", evs[0]);
        };
        assert_eq!(addr, layout::pc_slot(0));
        let pt = ProgramPoint::decode(pc_val);
        assert_eq!(pt.inst, 1, "recovery point is after the boundary");
        assert_eq!(mem.read_word(layout::pc_slot(0)), pc_val);
    }

    #[test]
    fn checkpoint_store_writes_register_slot() {
        let mut b = FuncBuilder::new("ckpt");
        b.mov_imm(Reg::R4, 1234);
        b.checkpoint(Reg::R4);
        b.halt();
        let p = Program::from_single(b.finish());
        let (mem, evs, _) = run_program(&p, 10);
        assert_eq!(mem.read_word(layout::checkpoint_slot(0, Reg::R4)), 1234);
        assert!(evs.iter().any(|e| matches!(
            e,
            DynEvent::Store {
                kind: StoreKind::Checkpoint,
                val: 1234,
                ..
            }
        )));
    }

    #[test]
    fn resume_from_checkpoint_restores_state() {
        let mut pm = Memory::new();
        pm.write_word(layout::checkpoint_slot(3, Reg::R7), 42);
        let pt = ProgramPoint {
            func: FuncId::from_index(0),
            block: crate::program::BlockId::from_index(0),
            inst: 2,
        };
        pm.write_word(layout::pc_slot(3), pt.encode());
        let t = Interp::resume_from_checkpoint(&pm, 3);
        assert_eq!(t.reg(Reg::R7), 42);
        assert_eq!(t.point(), pt);
        assert_eq!(t.tid(), 3);
    }

    #[test]
    fn lock_spin_does_not_advance() {
        let mut b = FuncBuilder::new("lk");
        b.mov_imm(Reg::R1, layout::lock_addr(0) as i64);
        b.lock_acquire(Reg::R1);
        b.halt();
        let p = Program::from_single(b.finish());
        let mut mem = Memory::new();
        mem.write_word(layout::lock_addr(0), 9); // lock already held
        let mut t = Interp::new(&p, 0);
        assert_eq!(t.step(&p, &mut mem), DynEvent::Alu);
        let before = t.point();
        let ev = t.step(&p, &mut mem);
        assert!(matches!(ev, DynEvent::LockSpin { .. }));
        assert_eq!(t.point(), before, "spin must not advance");
        // Release the lock and the acquire succeeds.
        mem.write_word(layout::lock_addr(0), 0);
        assert!(matches!(
            t.step(&p, &mut mem),
            DynEvent::Store {
                kind: StoreKind::Atomic,
                ..
            }
        ));
    }

    #[test]
    fn atomic_rmw_semantics() {
        let mut b = FuncBuilder::new("rmw");
        b.mov_imm(Reg::R1, layout::HEAP_BASE as i64);
        b.mov_imm(Reg::R2, 5);
        b.atomic_rmw(AluOp::Add, Reg::R3, Reg::R1, Reg::R2);
        b.halt();
        let p = Program::from_single(b.finish());
        let mut mem = Memory::new();
        mem.write_word(layout::HEAP_BASE, 10);
        let mut t = Interp::new(&p, 0);
        t.run(&p, &mut mem, 10);
        assert_eq!(t.reg(Reg::R3), 10, "rmw returns old value");
        assert_eq!(mem.read_word(layout::HEAP_BASE), 15);
    }

    #[test]
    fn instruction_counters_distinguish_instrumentation() {
        let mut b = FuncBuilder::new("cnt");
        b.region_boundary();
        b.nop();
        b.checkpoint(Reg::R1);
        b.halt();
        let p = Program::from_single(b.finish());
        let (_, _, t) = run_program(&p, 10);
        assert_eq!(t.instrumentation_executed(), 2);
        assert_eq!(t.insts_executed(), 4); // incl. halt terminator
    }

    #[test]
    fn thread_id_seeds_r0_and_sp() {
        let mut b = FuncBuilder::new("tid");
        b.halt();
        let p = Program::from_single(b.finish());
        let t = Interp::new(&p, 5);
        assert_eq!(t.reg(Reg::R0), 5);
        assert_eq!(t.reg(Reg::SP), layout::initial_sp(5));
    }
}
