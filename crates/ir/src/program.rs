//! Programs, functions, basic blocks, and program points.

use crate::inst::{Inst, Terminator};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Constructs the id from a dense index.
            pub fn from_index(index: usize) -> $name {
                $name(index as u32)
            }

            /// The dense index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a basic block within its function.
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a function within its program.
    FuncId,
    "f"
);

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Straight-line (non-terminator) instructions.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block falling through to `target`.
    pub fn jump_to(target: BlockId) -> Block {
        Block {
            insts: Vec::new(),
            term: Terminator::Jump { target },
        }
    }
}

/// Per-loop metadata attached by the front end / workload generator.
///
/// Plays the role of LLVM's scalar-evolution trip-count analysis for the
/// unrolling pass (§IV-A "Region Size Extension"): a loop whose trip count
/// the front end knows statically is eligible for classic unrolling;
/// others use speculative unrolling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopHint {
    /// The loop header block.
    pub header: BlockId,
    /// Statically-known trip count, if any.
    pub trip_count: Option<u32>,
}

/// A function: an entry block plus a body of basic blocks.
#[derive(Clone, Debug)]
pub struct Function {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// The entry block (by convention index 0 after construction).
    pub entry: BlockId,
    /// All basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Trip-count hints for loops whose bounds the front end knows.
    pub loop_hints: Vec<LoopHint>,
}

impl Function {
    /// Creates an empty function with a single `Halt` entry block.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            entry: BlockId::from_index(0),
            blocks: vec![Block {
                insts: Vec::new(),
                term: Terminator::Halt,
            }],
            loop_hints: Vec::new(),
        }
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Appends a new block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Iterates over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Total static instruction count (instructions plus terminators).
    pub fn static_size(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }
}

/// A whole program: functions plus the entry function id.
#[derive(Clone, Debug)]
pub struct Program {
    /// All functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// The entry function executed by each thread.
    pub entry: FuncId,
}

impl Program {
    /// Creates a program from its functions; `entry` must be in range.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn new(funcs: Vec<Function>, entry: FuncId) -> Program {
        assert!(entry.index() < funcs.len(), "entry function out of range");
        Program { funcs, entry }
    }

    /// Convenience constructor for a single-function program.
    pub fn from_single(func: Function) -> Program {
        Program::new(vec![func], FuncId::from_index(0))
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Total static instruction count across all functions.
    pub fn static_size(&self) -> usize {
        self.funcs.iter().map(Function::static_size).sum()
    }
}

/// A precise location in the program: function, block, instruction index.
///
/// An `inst` index equal to the block's instruction count denotes the
/// terminator. Program points encode to a single `u64` so the boundary
/// instruction can *store* the recovery PC into the checkpoint array
/// (§IV-A) and the recovery runtime can decode it after power failure.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramPoint {
    /// The containing function.
    pub func: FuncId,
    /// The containing block.
    pub block: BlockId,
    /// Index into the block (`== insts.len()` means the terminator).
    pub inst: u32,
}

impl ProgramPoint {
    /// The entry point of a function.
    pub fn func_entry(program: &Program, func: FuncId) -> ProgramPoint {
        ProgramPoint {
            func,
            block: program.func(func).entry,
            inst: 0,
        }
    }

    /// Encodes the point as a 64-bit word (what the boundary store writes).
    pub fn encode(self) -> u64 {
        ((self.func.index() as u64) << 48) | ((self.block.index() as u64) << 24) | self.inst as u64
    }

    /// Decodes a point previously produced by [`ProgramPoint::encode`].
    pub fn decode(word: u64) -> ProgramPoint {
        ProgramPoint {
            func: FuncId::from_index(((word >> 48) & 0xffff) as usize),
            block: BlockId::from_index(((word >> 24) & 0xff_ffff) as usize),
            inst: (word & 0xff_ffff) as u32,
        }
    }
}

impl fmt::Debug for ProgramPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{:?}:{}", self.func, self.block, self.inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn ids_roundtrip() {
        assert_eq!(BlockId::from_index(7).index(), 7);
        assert_eq!(FuncId::from_index(3).index(), 3);
        assert_eq!(format!("{:?}", BlockId::from_index(2)), "bb2");
        assert_eq!(format!("{:?}", FuncId::from_index(2)), "f2");
    }

    #[test]
    fn function_block_management() {
        let mut f = Function::new("t");
        assert_eq!(f.blocks.len(), 1);
        let b = f.add_block(Block::jump_to(f.entry));
        assert_eq!(b.index(), 1);
        f.block_mut(b).insts.push(Inst::Nop);
        assert_eq!(f.block(b).insts.len(), 1);
        assert_eq!(f.static_size(), 3, "two terminators + one nop");
    }

    #[test]
    fn program_point_encode_decode() {
        let p = ProgramPoint {
            func: FuncId::from_index(12),
            block: BlockId::from_index(34567),
            inst: 89,
        };
        assert_eq!(ProgramPoint::decode(p.encode()), p);
        let zero = ProgramPoint {
            func: FuncId::from_index(0),
            block: BlockId::from_index(0),
            inst: 0,
        };
        assert_eq!(ProgramPoint::decode(zero.encode()), zero);
    }

    #[test]
    #[should_panic(expected = "entry function out of range")]
    fn program_validates_entry() {
        let _ = Program::new(vec![], FuncId::from_index(0));
    }
}
