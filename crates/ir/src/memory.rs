//! Sparse copy-on-write word memory.
//!
//! Split out of `interp.rs` so both execution engines (the tree-walking
//! reference interpreter and the pre-decoded micro-op engine in
//! [`crate::exec`]) share one memory implementation; `interp` re-exports
//! [`Memory`] for compatibility.
//!
//! Hot-path layout: words live in 512-byte pages indexed by a private
//! open-addressed hash table on the page number (`PageTable`), fronted
//! by a one-entry *last-page cache* that remembers the slot index of the
//! most recently accessed page. Sequential access — the dominant pattern
//! of the workloads — then costs a compare plus an array index per word
//! instead of a hash probe per word. The cache stores a **slot index**,
//! never a page pointer: caching an `Arc<Page>` clone would keep the
//! refcount above one and make [`Arc::make_mut`] deep-copy on every
//! write, silently destroying the copy-on-write fork economics.

use std::sync::Arc;

/// Words per memory page (64 words = one 512-byte page, so a page's
/// touched-word set fits a single `u64` bitmask).
const PAGE_WORDS: usize = 64;
const PAGE_SHIFT: u32 = 9; // log2(PAGE_WORDS * 8)

/// Sentinel page number for an empty last-page cache. Real page numbers
/// are byte addresses shifted right by [`PAGE_SHIFT`], so they can never
/// reach `u64::MAX`.
const NO_PAGE: u64 = u64::MAX;

/// Multiplicative hash constant (the Fx/FNV-style odd multiplier also
/// used by [`crate::fxhash`]).
const FX_MUL: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One 512-byte page: backing words plus a bitmask of which words have
/// been written (so untouched-vs-written-zero stays distinguishable, as
/// with the original per-word hash map).
#[derive(Clone, Debug)]
struct Page {
    words: [u64; PAGE_WORDS],
    written: u64,
}

impl Page {
    fn new() -> Page {
        Page {
            words: [0u64; PAGE_WORDS],
            written: 0,
        }
    }
}

/// Open-addressed page-number → page map with linear probing, power-of-
/// two capacity and no deletion (memory pages are never freed within a
/// run). Compared to the previous `FxHashMap`, entries have *stable slot
/// indices between resizes*, which is what makes the one-entry slot
/// cache in [`Memory`] sound.
#[derive(Clone, Debug, Default)]
struct PageTable {
    /// `None` = empty slot. Capacity is always zero or a power of two.
    slots: Vec<Option<(u64, Arc<Page>)>>,
    len: usize,
    /// `64 - log2(capacity)`; top product bits index the table.
    shift: u32,
}

impl PageTable {
    #[inline]
    fn home(&self, page: u64) -> usize {
        (page.wrapping_mul(FX_MUL) >> self.shift) as usize
    }

    /// Slot holding `page` (`Ok`) or the empty slot where it would be
    /// inserted (`Err`). Capacity must be non-zero.
    #[inline]
    fn find(&self, page: u64) -> Result<usize, usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(page);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == page => return Ok(i),
                Some(_) => i = (i + 1) & mask,
                None => return Err(i),
            }
        }
    }

    #[inline]
    fn get(&self, page: u64) -> Option<&Arc<Page>> {
        if self.slots.is_empty() {
            return None;
        }
        match self.find(page) {
            Ok(i) => Some(&self.slots[i].as_ref().unwrap().1),
            Err(_) => None,
        }
    }

    /// Slot index of `page`, inserting a fresh page (and growing the
    /// table) if absent. Any previously obtained slot index is invalid
    /// after this call — callers must refresh their cache from the
    /// returned index.
    fn insert_slot(&mut self, page: u64) -> usize {
        // Keep load below 7/8 so probe chains stay short.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        match self.find(page) {
            Ok(i) => i,
            Err(i) => {
                self.slots[i] = Some((page, Arc::new(Page::new())));
                self.len += 1;
                i
            }
        }
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![None; cap]);
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for entry in old.into_iter().flatten() {
            let mut i = self.home(entry.0);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(entry);
        }
    }

    fn iter(&self) -> impl Iterator<Item = (u64, &Arc<Page>)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, p)| (*k, p)))
    }
}

/// Sparse 8-byte-word memory. Reads of untouched words return zero.
///
/// Words live in 512-byte copy-on-write pages (see the module docs for
/// the lookup structure): pages sit behind [`Arc`], so `clone()` is a
/// shallow O(pages-table) snapshot that bumps refcounts, and a write to
/// a shared page materialises a private copy via [`Arc::make_mut`].
/// This is what makes machine forking (the crash-sweep engine) cheap: a
/// snapshot costs O(dirty pages since the snapshot), not O(memory
/// footprint). Comparisons ([`Memory::first_difference`],
/// [`Memory::same_contents`]) exploit sharing too — a page physically
/// shared between the two sides cannot differ and is skipped without
/// reading a word.
///
/// A per-page bitmask preserves per-word semantics exactly: `len()`
/// counts *touched* words and `iter()` yields only touched words, even
/// when the written value is zero.
#[derive(Clone, Debug)]
pub struct Memory {
    table: PageTable,
    touched: usize,
    /// Last-page cache: page number and its slot index in `table`.
    /// Always coherent — refreshed by every path that can move slots
    /// (only [`PageTable::insert_slot`]) and copied verbatim by
    /// `clone()` (slot layout is cloned too, so it stays valid).
    last_page: u64,
    last_slot: u32,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            table: PageTable::default(),
            touched: 0,
            last_page: NO_PAGE,
            last_slot: 0,
        }
    }
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn align(addr: u64) -> u64 {
        addr & !7
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        let aligned = Self::align(addr);
        (
            aligned >> PAGE_SHIFT,
            ((aligned >> 3) as usize) & (PAGE_WORDS - 1),
        )
    }

    /// Reads the 8-byte word containing `addr`.
    ///
    /// Checks the last-page cache but cannot refresh it (shared
    /// receiver); the execution engines use [`Memory::read_word_cached`]
    /// on their hot path.
    #[inline]
    pub fn read_word(&self, addr: u64) -> u64 {
        let (page, idx) = Self::split(addr);
        if page == self.last_page {
            return self.table.slots[self.last_slot as usize]
                .as_ref()
                .unwrap()
                .1
                .words[idx];
        }
        match self.table.get(page) {
            Some(p) => p.words[idx],
            None => 0,
        }
    }

    /// Reads the 8-byte word containing `addr`, refreshing the
    /// last-page cache so a following access to the same page skips the
    /// hash probe. Semantically identical to [`Memory::read_word`].
    #[inline]
    pub fn read_word_cached(&mut self, addr: u64) -> u64 {
        let (page, idx) = Self::split(addr);
        if page == self.last_page {
            return self.table.slots[self.last_slot as usize]
                .as_ref()
                .unwrap()
                .1
                .words[idx];
        }
        if self.table.slots.is_empty() {
            return 0;
        }
        match self.table.find(page) {
            Ok(i) => {
                self.last_page = page;
                self.last_slot = i as u32;
                self.table.slots[i].as_ref().unwrap().1.words[idx]
            }
            // Absent pages are *not* cached: a subsequent write must
            // take the insert path.
            Err(_) => 0,
        }
    }

    /// Writes the 8-byte word containing `addr`.
    ///
    /// If the target page is shared with a snapshot, this is the
    /// copy-on-write point: the page is duplicated before mutation.
    #[inline]
    pub fn write_word(&mut self, addr: u64, val: u64) {
        let (page, idx) = Self::split(addr);
        let slot = if page == self.last_page {
            self.last_slot as usize
        } else {
            let s = self.table.insert_slot(page);
            self.last_page = page;
            self.last_slot = s as u32;
            s
        };
        let p = Arc::make_mut(&mut self.table.slots[slot].as_mut().unwrap().1);
        let bit = 1u64 << idx;
        if p.written & bit == 0 {
            p.written |= bit;
            self.touched += 1;
        }
        p.words[idx] = val;
    }

    /// Iterates over `(address, value)` pairs of touched words.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.table.iter().flat_map(|(page, p)| {
            let base = page << PAGE_SHIFT;
            (0..PAGE_WORDS)
                .filter(move |&i| p.written & (1u64 << i) != 0)
                .map(move |i| (base + (i as u64) * 8, p.words[i]))
        })
    }

    /// Number of touched words.
    pub fn len(&self) -> usize {
        self.touched
    }

    /// True if no word has been written.
    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }

    /// Page numbers where the two memories might disagree: pages present
    /// on either side that are not physically shared. A page shared via
    /// [`Arc`] is bit-identical by construction and needs no inspection
    /// — on COW snapshots this prunes the comparison to the pages dirtied
    /// since the fork.
    fn candidate_pages(&self, other: &Memory) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .table
            .iter()
            .filter(|(pg, p)| !other.table.get(*pg).is_some_and(|q| Arc::ptr_eq(p, q)))
            .map(|(pg, _)| pg)
            .collect();
        pages.extend(
            other
                .table
                .iter()
                .filter(|(pg, _)| self.table.get(*pg).is_none())
                .map(|(pg, _)| pg),
        );
        pages.sort_unstable();
        pages
    }

    /// True if the two memories agree on every touched word (untouched
    /// words read as zero on both sides).
    pub fn same_contents(&self, other: &Memory) -> bool {
        self.first_difference(other).is_none()
    }

    /// The first (lowest-address) word where the two memories disagree,
    /// for diagnostics. Untouched words read as zero on both sides, so
    /// only pages that are present somewhere and not physically shared
    /// need scanning.
    pub fn first_difference(&self, other: &Memory) -> Option<(u64, u64, u64)> {
        self.first_difference_where(other, |_| true)
    }

    /// Like [`Memory::first_difference`], but only considers addresses
    /// for which `include` returns true. Consistency checkers use this
    /// to exclude recovery metadata (checkpoint/PC slots), whose final
    /// contents are timing-dependent: forced region closes dump the live
    /// register file at whatever point the timeout or spin fired.
    pub fn first_difference_where(
        &self,
        other: &Memory,
        include: impl Fn(u64) -> bool,
    ) -> Option<(u64, u64, u64)> {
        for pg in self.candidate_pages(other) {
            let base = pg << PAGE_SHIFT;
            for i in 0..PAGE_WORDS {
                let a = base + (i as u64) * 8;
                if !include(a) {
                    continue;
                }
                let (x, y) = (self.read_word(a), other.read_word(a));
                if x != y {
                    return Some((a, x, y));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_zero_default_and_alignment() {
        let mut m = Memory::new();
        assert_eq!(m.read_word(0x1234), 0);
        m.write_word(0x1001, 7); // unaligned address hits word 0x1000
        assert_eq!(m.read_word(0x1000), 7);
        assert_eq!(m.read_word(0x1007), 7);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn memory_comparison() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_word(8, 1);
        assert!(!a.same_contents(&b));
        assert_eq!(a.first_difference(&b), Some((8, 1, 0)));
        b.write_word(8, 1);
        // Explicit zero vs untouched are equal.
        a.write_word(16, 0);
        assert!(a.same_contents(&b));
        assert_eq!(a.first_difference(&b), None);
    }

    /// Counts pages physically shared (same `Arc`) between two memories.
    fn shared_pages(a: &Memory, b: &Memory) -> usize {
        a.table
            .iter()
            .filter(|(k, p)| b.table.get(*k).is_some_and(|q| Arc::ptr_eq(p, q)))
            .count()
    }

    #[test]
    fn memory_clone_is_copy_on_write() {
        let mut a = Memory::new();
        a.write_word(8, 1);
        a.write_word(0x1000, 2);
        let snap = a.clone();
        // The snapshot physically shares both pages with the original.
        assert_eq!(shared_pages(&a, &snap), 2);
        assert!(a.same_contents(&snap));
        // Writing through the original diverges only the touched page;
        // the snapshot is unaffected.
        a.write_word(8, 99);
        a.write_word(0x2000, 3);
        assert_eq!(snap.read_word(8), 1);
        assert_eq!(snap.read_word(0x2000), 0);
        assert_eq!(snap.len(), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.first_difference(&snap), Some((8, 99, 1)));
        assert_eq!(snap.first_difference(&a), Some((8, 1, 99)));
        // The untouched page stays shared after the divergence.
        assert_eq!(shared_pages(&a, &snap), 1);
    }

    /// The last-page cache must never pin an extra `Arc` reference: a
    /// freshly cloned snapshot's pages stay shared until *written*, even
    /// when the cache points at them, and writes still COW correctly.
    #[test]
    fn last_page_cache_does_not_break_cow() {
        let mut a = Memory::new();
        for i in 0..200u64 {
            a.write_word(i * 512, i); // 200 distinct pages, forces resizes
        }
        let snap = a.clone();
        assert_eq!(shared_pages(&a, &snap), 200);
        // Read through the cache on both sides: sharing must survive.
        assert_eq!(a.read_word_cached(5 * 512), 5);
        assert_eq!(shared_pages(&a, &snap), 200);
        // A cached-page write diverges exactly one page.
        a.write_word(5 * 512, 999);
        assert_eq!(shared_pages(&a, &snap), 199);
        assert_eq!(snap.read_word(5 * 512), 5);
    }

    /// Sequential access across a resize: the cache is refreshed on the
    /// insert path, so values stay correct through table growth.
    #[test]
    fn resize_keeps_cache_coherent() {
        let mut m = Memory::new();
        for i in 0..1000u64 {
            m.write_word(i * 8, i); // sequential within pages
            m.write_word(i * 512 + 0x10_0000, i); // new page per iter
        }
        for i in 0..1000u64 {
            assert_eq!(m.read_word_cached(i * 8), i);
            assert_eq!(m.read_word(i * 512 + 0x10_0000), i);
        }
        assert_eq!(m.len(), 2000);
        assert_eq!(m.iter().count(), 2000);
    }
}
