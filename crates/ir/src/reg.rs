//! Physical registers of the modelled ISA.
//!
//! The LightWSP compiler operates after register allocation, so every
//! operand in this IR is a *physical* register. We model a 32-register
//! general-purpose file (the paper's checkpoint storage is "indexed by
//! register number" and sized by "the number of architectural registers
//! already defined by the ISA", §IV-A).
//!
//! Register `R31` is the architectural stack pointer ([`Reg::SP`]): calls
//! and returns spill/reload return addresses through it, which places the
//! call stack in (persistent) memory exactly as whole-system persistence
//! requires.

use std::fmt;

/// Number of architectural general-purpose registers in the modelled ISA.
pub const NUM_REGS: usize = 32;

/// A physical register.
///
/// `Reg` is a dense index type: `Reg::from_index` / [`Reg::index`] convert
/// to and from `0..NUM_REGS`, which the checkpoint-storage layout (§IV-A)
/// uses directly as the slot index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The architectural stack pointer (register 31).
    pub const SP: Reg = Reg(31);

    /// Constructs a register from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    pub fn from_index(index: usize) -> Reg {
        assert!(index < NUM_REGS, "register index {index} out of range");
        Reg(index as u8)
    }

    /// The dense index of this register in `0..NUM_REGS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over every architectural register, `r0..r31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).map(Reg::from_index)
    }

    /// True if this is the stack pointer.
    pub fn is_sp(self) -> bool {
        self == Reg::SP
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_sp() {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("General-purpose register ", stringify!($idx), ".")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

named_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30,
}

/// A dense set of registers, used by the liveness analysis and the
/// checkpoint-insertion pass.
///
/// Backed by a single `u32` bit mask, so all set operations are O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u32);

impl RegSet {
    /// The empty register set.
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// The set containing every architectural register.
    pub fn full() -> RegSet {
        RegSet(u32::MAX)
    }

    /// Inserts `r`; returns `true` if it was not already present.
    pub fn insert(&mut self, r: Reg) -> bool {
        let bit = 1u32 << r.index();
        let was = self.0 & bit != 0;
        self.0 |= bit;
        !was
    }

    /// Removes `r`; returns `true` if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let bit = 1u32 << r.index();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// True if `r` is in the set.
    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1u32 << r.index()) != 0
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Removes every register in `other` from `self`.
    pub fn subtract(&mut self, other: &RegSet) {
        self.0 &= !other.0;
    }

    /// The intersection of the two sets.
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Iterates over the members in ascending register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        let bits = self.0;
        (0..NUM_REGS)
            .filter(move |i| bits & (1u32 << i) != 0)
            .map(Reg::from_index)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegSet {
        let mut set = RegSet::new();
        for r in iter {
            set.insert(r);
        }
        set
    }
}

impl Extend<Reg> for RegSet {
    fn extend<T: IntoIterator<Item = Reg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..NUM_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::from_index(NUM_REGS);
    }

    #[test]
    fn sp_is_r31() {
        assert_eq!(Reg::SP.index(), 31);
        assert!(Reg::SP.is_sp());
        assert!(!Reg::R0.is_sp());
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Reg::R3), "r3");
        assert_eq!(format!("{}", Reg::SP), "sp");
    }

    #[test]
    fn regset_insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Reg::R5));
        assert!(!s.insert(Reg::R5));
        assert!(s.contains(Reg::R5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Reg::R5));
        assert!(!s.remove(Reg::R5));
        assert!(s.is_empty());
    }

    #[test]
    fn regset_union_and_subtract() {
        let a: RegSet = [Reg::R1, Reg::R2].into_iter().collect();
        let b: RegSet = [Reg::R2, Reg::R3].into_iter().collect();
        let mut u = a;
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b));
        assert_eq!(u.len(), 3);
        let mut d = u;
        d.subtract(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![Reg::R3]);
    }

    #[test]
    fn regset_intersection_and_iter_order() {
        let a: RegSet = [Reg::R9, Reg::R1, Reg::R4].into_iter().collect();
        let b: RegSet = [Reg::R4, Reg::R9, Reg::R30].into_iter().collect();
        let i = a.intersection(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![Reg::R4, Reg::R9]);
    }

    #[test]
    fn regset_full_has_all() {
        let s = RegSet::full();
        assert_eq!(s.len(), NUM_REGS);
        for r in Reg::all() {
            assert!(s.contains(r));
        }
    }
}
