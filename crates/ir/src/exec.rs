//! The decoded execution engine: batched micro-op interpretation plus a
//! hot-block compiled tier.
//!
//! [`Interp::step_batch`] executes pre-decoded micro-ops
//! ([`crate::decode::DecodedProgram`]) in a tight loop that retires
//! ALU-class components locally and yields to the timing simulator only
//! at instructions that emit timed [`DynEvent`]s (loads, stores,
//! boundaries, I/O, synchronisation, halts). The caller hands in a
//! *budget* of ALU retire slots; the contract is exact per-slot parity
//! with calling [`Interp::step`] once per instruction:
//!
//! * every retired component updates the architectural state exactly as
//!   the reference tree-walker would, in the same order;
//! * the returned `(alus, event)` pair says how many `DynEvent::Alu`
//!   instructions retired (≤ budget) before the event — `(budget,
//!   None)` means the budget ran out first;
//! * a fused micro-op interrupted by budget exhaustion records its
//!   progress in the cursor and resumes at the exact component, so
//!   nothing ever executes early or twice.
//!
//! ## Hot-block tier
//!
//! Per-thread execution counts promote blocks whose every component is
//! ALU-class at [`HOT_THRESHOLD`] executions: the block is "compiled"
//! into a chain of native Rust closures keyed by flat block id, and
//! subsequent entries run the whole block (and chains of hot
//! successors) without per-micro-op dispatch — but only when the block
//! fits in the remaining budget, so per-cycle accounting is untouched.

use crate::decode::DecodedProgram;
use crate::inst::{AluOp, Cond};
use crate::interp::{DynEvent, Interp, StoreKind};
use crate::layout;
use crate::memory::Memory;
use crate::program::ProgramPoint;
use crate::reg::{Reg, NUM_REGS};
use crate::uop::{FusedAlu, MicroOp, Operand};
use std::fmt;
use std::sync::Arc;

/// Executions after which a pure-ALU block is compiled to closures.
pub const HOT_THRESHOLD: u32 = 64;

type BlockFn = Box<dyn Fn(&mut [u64; NUM_REGS]) -> u32 + Send + Sync>;

/// A hot pure-ALU block compiled into a closure chain.
struct CompiledBlock {
    /// Retire components (all ALU slots) the block consumes.
    insts: u32,
    /// Executes the whole block against a register file and returns the
    /// flat id of the successor block.
    run: BlockFn,
}

/// Per-thread hot-tier state of the decoded engine, lazily created on
/// the first [`Interp::step_batch`] call. Cloned with the interpreter
/// on machine forks (compiled blocks are shared via [`Arc`]). The
/// cursor itself lives directly on [`Interp`] so the batch hot path
/// never chases this box.
#[derive(Clone, Default)]
pub(crate) struct DecodedState {
    /// Per-flat-block execution counts (hot-tier promotion).
    counts: Vec<u32>,
    /// Compiled tier, indexed by flat block id.
    compiled: Vec<Option<Arc<CompiledBlock>>>,
}

impl DecodedState {
    fn new(blocks: usize) -> DecodedState {
        DecodedState {
            counts: vec![0; blocks],
            compiled: vec![None; blocks],
        }
    }
}

impl fmt::Debug for DecodedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodedState")
            .field(
                "compiled",
                &self.compiled.iter().filter(|c| c.is_some()).count(),
            )
            .finish_non_exhaustive()
    }
}

impl Interp {
    /// Executes micro-ops until an event-emitting instruction or until
    /// `budget` ALU-class instructions have retired, whichever comes
    /// first. Returns the retired-ALU count and the event, if any (see
    /// the module docs for the exact contract). `budget` must be ≥ 1.
    ///
    /// A failed lock acquire returns `LockSpin` without advancing, and
    /// calling this on a finished thread returns `(0, Some(Halt))`
    /// forever — both exactly as [`Interp::step`].
    pub fn step_batch(
        &mut self,
        dec: &DecodedProgram,
        mem: &mut Memory,
        budget: u32,
    ) -> (u32, Option<DynEvent>) {
        debug_assert!(budget >= 1, "a batch needs at least one retire slot");
        if self.finished {
            return (0, Some(DynEvent::Halt));
        }
        let (mut cur, mut comp) = if self.cursor_valid {
            (self.cursor, self.comp)
        } else {
            self.resync_cursor(dec)
        };
        let tid = self.tid;
        let mut alus = 0u32;
        // Retired-instruction count batches in a register for the whole
        // dispatch loop and folds into the field once at batch exit —
        // nothing reads `insts_executed` mid-batch (the compiled-block
        // tier only adds to it, and addition commutes).
        let mut executed = 0u64;
        let ev = loop {
            if alus >= budget {
                break None;
            }
            match dec.uops[cur as usize] {
                MicroOp::Alu { op, dst, lhs, rhs } => {
                    self.regs[dst.index()] =
                        op.apply(self.regs[lhs.index()], self.regs[rhs.index()]);
                    alus += 1;
                    executed += 1;
                    cur += 1;
                }
                MicroOp::AluImm { op, dst, src, imm } => {
                    self.regs[dst.index()] = op.apply(self.regs[src.index()], imm);
                    alus += 1;
                    executed += 1;
                    cur += 1;
                }
                MicroOp::MovImm { dst, imm } => {
                    self.regs[dst.index()] = imm;
                    alus += 1;
                    executed += 1;
                    cur += 1;
                }
                MicroOp::Nop => {
                    alus += 1;
                    executed += 1;
                    cur += 1;
                }
                MicroOp::Jump { target } => {
                    alus += 1;
                    executed += 1;
                    cur = self.enter_block(dec, target, &mut alus, budget);
                    comp = 0;
                }
                MicroOp::Branch {
                    cond,
                    src,
                    rhs,
                    then_blk,
                    else_blk,
                } => {
                    let taken = cond.eval(self.regs[src.index()], self.operand(rhs));
                    let t = if taken { then_blk } else { else_blk };
                    alus += 1;
                    executed += 1;
                    cur = self.enter_block(dec, t, &mut alus, budget);
                    comp = 0;
                }
                MicroOp::Load { dst, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(offset);
                    self.regs[dst.index()] = mem.read_word_cached(addr);
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Load { addr: addr & !7 });
                }
                MicroOp::Store { src, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(offset) & !7;
                    let val = self.regs[src.index()];
                    mem.write_word(addr, val);
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Store {
                        addr,
                        val,
                        kind: StoreKind::Plain,
                    });
                }
                MicroOp::Fence => {
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Fence);
                }
                MicroOp::AtomicRmw { op, dst, addr, src } => {
                    let a = self.regs[addr.index()] & !7;
                    let old = mem.read_word_cached(a);
                    self.regs[dst.index()] = old;
                    let new = op.apply(old, self.regs[src.index()]);
                    mem.write_word(a, new);
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Store {
                        addr: a,
                        val: new,
                        kind: StoreKind::Atomic,
                    });
                }
                MicroOp::LockAcquire { lock } => {
                    let a = self.regs[lock.index()] & !7;
                    if mem.read_word_cached(a) != 0 {
                        // No advance, no instruction count — exactly the
                        // reference spin semantics.
                        break Some(DynEvent::LockSpin { addr: a });
                    }
                    let val = 1 + tid as u64;
                    mem.write_word(a, val);
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Store {
                        addr: a,
                        val,
                        kind: StoreKind::Atomic,
                    });
                }
                MicroOp::LockRelease { lock } => {
                    let a = self.regs[lock.index()] & !7;
                    mem.write_word(a, 0);
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Store {
                        addr: a,
                        val: 0,
                        kind: StoreKind::Atomic,
                    });
                }
                MicroOp::Io { src } => {
                    let val = self.regs[src.index()];
                    executed += 1;
                    cur += 1;
                    break Some(DynEvent::Io { val });
                }
                MicroOp::Boundary { pc_enc } => {
                    let slot = layout::pc_slot(tid);
                    mem.write_word(slot, pc_enc);
                    executed += 1;
                    self.instrumentation_executed += 1;
                    cur += 1;
                    break Some(DynEvent::Boundary {
                        addr: slot,
                        pc_val: pc_enc,
                    });
                }
                MicroOp::CheckpointStore { reg } => {
                    let slot = layout::checkpoint_slot(tid, reg);
                    let val = self.regs[reg.index()];
                    mem.write_word(slot, val);
                    executed += 1;
                    self.instrumentation_executed += 1;
                    cur += 1;
                    break Some(DynEvent::Store {
                        addr: slot,
                        val,
                        kind: StoreKind::Checkpoint,
                    });
                }
                MicroOp::Call {
                    callee_block,
                    ret_enc,
                } => {
                    let sp = self.regs[Reg::SP.index()].wrapping_sub(8);
                    self.regs[Reg::SP.index()] = sp;
                    mem.write_word(sp, ret_enc);
                    executed += 1;
                    cur = dec.blocks[callee_block as usize].start;
                    comp = 0;
                    break Some(DynEvent::Store {
                        addr: sp & !7,
                        val: ret_enc,
                        kind: StoreKind::StackPush,
                    });
                }
                MicroOp::Ret => {
                    executed += 1;
                    let sp = self.regs[Reg::SP.index()];
                    if sp >= layout::initial_sp(tid) {
                        // Returning from the entry frame: thread done.
                        self.finished = true;
                        break Some(DynEvent::Halt);
                    }
                    let ret = mem.read_word_cached(sp);
                    self.regs[Reg::SP.index()] = sp.wrapping_add(8);
                    let e = dec.locate(ProgramPoint::decode(ret));
                    cur = e.uop;
                    comp = e.comp;
                    break Some(DynEvent::Load { addr: sp & !7 });
                }
                MicroOp::Halt => {
                    executed += 1;
                    self.finished = true;
                    break Some(DynEvent::Halt);
                }
                MicroOp::LoadAlu {
                    dst,
                    base,
                    offset,
                    alu,
                } => {
                    if comp == 0 {
                        let addr = self.regs[base.index()].wrapping_add(offset);
                        self.regs[dst.index()] = mem.read_word_cached(addr);
                        executed += 1;
                        comp = 1;
                        break Some(DynEvent::Load { addr: addr & !7 });
                    }
                    self.apply_fused(alu);
                    alus += 1;
                    executed += 1;
                    comp = 0;
                    cur += 1;
                }
                MicroOp::AluStore {
                    alu,
                    src,
                    base,
                    offset,
                } => {
                    if comp == 0 {
                        self.apply_fused(alu);
                        alus += 1;
                        executed += 1;
                        comp = 1;
                        // Loop back: the store component must re-check
                        // the budget before executing.
                        continue;
                    }
                    let addr = self.regs[base.index()].wrapping_add(offset) & !7;
                    let val = self.regs[src.index()];
                    mem.write_word(addr, val);
                    executed += 1;
                    comp = 0;
                    cur += 1;
                    break Some(DynEvent::Store {
                        addr,
                        val,
                        kind: StoreKind::Plain,
                    });
                }
                MicroOp::AluLoad {
                    alu,
                    dst,
                    base,
                    offset,
                } => {
                    if comp == 0 {
                        self.apply_fused(alu);
                        alus += 1;
                        executed += 1;
                        comp = 1;
                        continue;
                    }
                    let addr = self.regs[base.index()].wrapping_add(offset);
                    self.regs[dst.index()] = mem.read_word_cached(addr);
                    executed += 1;
                    comp = 0;
                    cur += 1;
                    break Some(DynEvent::Load { addr: addr & !7 });
                }
                MicroOp::CmpBr {
                    alu,
                    cond,
                    src,
                    rhs,
                    then_blk,
                    else_blk,
                } => {
                    if comp == 0 {
                        self.apply_fused(alu);
                        alus += 1;
                        executed += 1;
                        comp = 1;
                        continue;
                    }
                    let taken = cond.eval(self.regs[src.index()], self.operand(rhs));
                    let t = if taken { then_blk } else { else_blk };
                    alus += 1;
                    executed += 1;
                    cur = self.enter_block(dec, t, &mut alus, budget);
                    comp = 0;
                }
            }
        };
        // `point` is left lazy: cold readers (forks, reports, mode
        // switches) call `sync_point` first, so the hot path pays
        // three register-sized stores instead of a re-encode per batch.
        self.insts_executed += executed;
        self.cursor = cur;
        self.comp = comp;
        self.cursor_valid = true;
        self.point_stale = true;
        (alus, ev)
    }

    /// Materialises `point` from the decoded cursor after batched
    /// execution. Must be called with the same decoded program the
    /// batches ran against; a no-op when `point` is already current.
    pub fn sync_point(&mut self, dec: &DecodedProgram) {
        if self.point_stale {
            self.point = ProgramPoint::decode(dec.point_enc(self.cursor, self.comp));
            self.point_stale = false;
        }
    }

    /// Cursor re-sync from `self.point` (fresh state, or after a
    /// reference-mode `step` invalidated the cursor).
    #[cold]
    fn resync_cursor(&mut self, dec: &DecodedProgram) -> (u32, u8) {
        debug_assert!(!self.point_stale, "resync from a stale point");
        let needs_new = self
            .dec
            .as_ref()
            .is_none_or(|st| st.counts.len() != dec.blocks.len());
        if needs_new {
            self.dec = Some(Box::new(DecodedState::new(dec.blocks.len())));
        }
        let e = dec.locate(self.point);
        self.cursor = e.uop;
        self.comp = e.comp;
        self.cursor_valid = true;
        (e.uop, e.comp)
    }

    #[inline]
    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Imm(i) => i,
            Operand::Reg(r) => self.regs[r.index()],
        }
    }

    #[inline]
    fn apply_fused(&mut self, a: FusedAlu) {
        let rhs = self.operand(a.rhs);
        self.regs[a.dst.index()] = a.op.apply(self.regs[a.lhs.index()], rhs);
    }

    /// Block-entry bookkeeping for jump/branch transitions: bumps the
    /// hot counter, promotes the block at [`HOT_THRESHOLD`], and runs
    /// chains of compiled blocks that fit in the remaining budget.
    /// Returns the micro-op index execution continues at.
    fn enter_block(
        &mut self,
        dec: &DecodedProgram,
        mut blk: u32,
        alus: &mut u32,
        budget: u32,
    ) -> u32 {
        loop {
            let st = self.dec.as_mut().expect("decoded state initialised");
            if let Some(cb) = st.compiled[blk as usize].as_ref() {
                if *alus + cb.insts <= budget {
                    *alus += cb.insts;
                    self.insts_executed += cb.insts as u64;
                    blk = (cb.run)(&mut self.regs);
                    continue;
                }
                return dec.blocks[blk as usize].start;
            }
            let c = st.counts[blk as usize].saturating_add(1);
            st.counts[blk as usize] = c;
            if c == HOT_THRESHOLD && dec.blocks[blk as usize].pure_alu {
                let cb = Arc::new(compile_block(dec, blk));
                if *alus + cb.insts <= budget {
                    *alus += cb.insts;
                    self.insts_executed += cb.insts as u64;
                    let next = (cb.run)(&mut self.regs);
                    st.compiled[blk as usize] = Some(cb);
                    blk = next;
                    continue;
                }
                st.compiled[blk as usize] = Some(cb);
            }
            return dec.blocks[blk as usize].start;
        }
    }

    /// Runs the thread to completion via the decoded engine (or for at
    /// most `max_steps` retired instructions), returning the flattened
    /// per-instruction event stream — ALU batches are expanded to one
    /// [`DynEvent::Alu`] each, so the result is directly comparable to
    /// [`Interp::run`]. Intended for tests and diagnostics.
    pub fn run_decoded(
        &mut self,
        dec: &DecodedProgram,
        mem: &mut Memory,
        max_steps: u64,
    ) -> Vec<DynEvent> {
        let mut events = Vec::new();
        let mut steps = 0u64;
        while steps < max_steps {
            let budget = (max_steps - steps).min(1 << 20) as u32;
            let (alus, ev) = self.step_batch(dec, mem, budget);
            steps += alus as u64;
            events.extend(std::iter::repeat_n(DynEvent::Alu, alus as usize));
            let Some(ev) = ev else { continue };
            steps += 1;
            events.push(ev);
            if matches!(ev, DynEvent::Halt | DynEvent::LockSpin { .. }) {
                // Same wedge/termination handling as `Interp::run`.
                break;
            }
        }
        // Diagnostics entry point: leave `point` observable.
        self.sync_point(dec);
        events
    }
}

/// Number of compiled-tier blocks on this thread (diagnostics/tests).
pub fn compiled_block_count(interp: &Interp) -> usize {
    interp
        .dec
        .as_ref()
        .map_or(0, |st| st.compiled.iter().filter(|c| c.is_some()).count())
}

/// Chains a specialized ALU component in front of `g`. The `AluOp`
/// match happens here, **once, at block-compile time**: every arm hands
/// a zero-sized op closure to a monomorphized constructor, so the
/// compiled-tier closure executes the operation inline instead of
/// re-matching `AluOp::apply` per run.
fn chain_alu(a: FusedAlu, g: BlockFn) -> BlockFn {
    fn bin<F: Fn(u64, u64) -> u64 + Send + Sync + 'static>(
        d: usize,
        l: usize,
        rhs: Operand,
        g: BlockFn,
        f: F,
    ) -> BlockFn {
        match rhs {
            Operand::Reg(r) => {
                let r = r.index();
                Box::new(move |regs| {
                    regs[d] = f(regs[l], regs[r]);
                    g(regs)
                })
            }
            Operand::Imm(i) => Box::new(move |regs| {
                regs[d] = f(regs[l], i);
                g(regs)
            }),
        }
    }
    let (d, l) = (a.dst.index(), a.lhs.index());
    match a.op {
        AluOp::Add => bin(d, l, a.rhs, g, |x, y| x.wrapping_add(y)),
        AluOp::Sub => bin(d, l, a.rhs, g, |x, y| x.wrapping_sub(y)),
        AluOp::Mul => bin(d, l, a.rhs, g, |x, y| x.wrapping_mul(y)),
        AluOp::Xor => bin(d, l, a.rhs, g, |x, y| x ^ y),
        AluOp::And => bin(d, l, a.rhs, g, |x, y| x & y),
        AluOp::Or => bin(d, l, a.rhs, g, |x, y| x | y),
        AluOp::Shl => bin(d, l, a.rhs, g, |x, y| x.wrapping_shl((y & 63) as u32)),
        AluOp::Shr => bin(d, l, a.rhs, g, |x, y| x.wrapping_shr((y & 63) as u32)),
    }
}

/// Specialized two-way branch terminator: like [`chain_alu`], the
/// `Cond` match runs once at compile time.
fn spec_branch(cond: Cond, src: Reg, rhs: Operand, then_blk: u32, else_blk: u32) -> BlockFn {
    fn cmp<F: Fn(u64, u64) -> bool + Send + Sync + 'static>(
        s: usize,
        rhs: Operand,
        tb: u32,
        eb: u32,
        f: F,
    ) -> BlockFn {
        match rhs {
            Operand::Reg(r) => {
                let r = r.index();
                Box::new(move |regs| if f(regs[s], regs[r]) { tb } else { eb })
            }
            Operand::Imm(i) => Box::new(move |regs| if f(regs[s], i) { tb } else { eb }),
        }
    }
    let s = src.index();
    match cond {
        Cond::Eq => cmp(s, rhs, then_blk, else_blk, |a, b| a == b),
        Cond::Ne => cmp(s, rhs, then_blk, else_blk, |a, b| a != b),
        Cond::Lt => cmp(s, rhs, then_blk, else_blk, |a, b| a < b),
        Cond::Ge => cmp(s, rhs, then_blk, else_blk, |a, b| a >= b),
    }
}

/// Compiles a pure-ALU block into a chain of native closures, built
/// back to front so each closure tail-calls the next component. Each
/// closure is specialized on its concrete `AluOp`/`Cond`/operand form
/// (see [`chain_alu`]); no enum is re-examined at run time.
fn compile_block(dec: &DecodedProgram, blk: u32) -> CompiledBlock {
    let b = &dec.blocks[blk as usize];
    let uops = &dec.uops[b.start as usize..b.end as usize];
    let (term, body) = uops.split_last().expect("block has a terminator");
    let mut f: BlockFn = match *term {
        MicroOp::Jump { target } => Box::new(move |_| target),
        MicroOp::Branch {
            cond,
            src,
            rhs,
            then_blk,
            else_blk,
        } => spec_branch(cond, src, rhs, then_blk, else_blk),
        MicroOp::CmpBr {
            alu,
            cond,
            src,
            rhs,
            then_blk,
            else_blk,
        } => chain_alu(alu, spec_branch(cond, src, rhs, then_blk, else_blk)),
        _ => unreachable!("pure-ALU block must end in a jump or branch"),
    };
    for op in body.iter().rev() {
        let g = f;
        f = match *op {
            MicroOp::Alu { op, dst, lhs, rhs } => chain_alu(
                FusedAlu {
                    op,
                    dst,
                    lhs,
                    rhs: Operand::Reg(rhs),
                },
                g,
            ),
            MicroOp::AluImm { op, dst, src, imm } => chain_alu(
                FusedAlu {
                    op,
                    dst,
                    lhs: src,
                    rhs: Operand::Imm(imm),
                },
                g,
            ),
            MicroOp::MovImm { dst, imm } => {
                let d = dst.index();
                Box::new(move |regs| {
                    regs[d] = imm;
                    g(regs)
                })
            }
            MicroOp::Nop => g,
            _ => unreachable!("non-ALU micro-op in a pure block"),
        };
    }
    CompiledBlock {
        insts: b.insts,
        run: f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{AluOp, Cond};
    use crate::program::{FuncId, Program};

    /// Asserts the decoded engine matches the reference tree-walker on
    /// `p` in every observable: event stream, memory image, counters,
    /// final point and registers — at full budget and at budget 1 (the
    /// harshest mid-micro-op re-entry schedule).
    fn assert_parity(p: &Program, max: u64) {
        let mut rmem = Memory::new();
        let mut r = Interp::new(p, 0);
        let revs = r.run(p, &mut rmem, max);

        let dec = DecodedProgram::decode(p);
        for budget in [u32::MAX >> 8, 1, 3] {
            let mut dmem = Memory::new();
            let mut d = Interp::new(p, 0);
            let devs = run_budgeted(&mut d, &dec, &mut dmem, max, budget);
            d.sync_point(&dec);
            assert_eq!(revs, devs, "event stream differs (budget {budget})");
            assert!(
                rmem.same_contents(&dmem),
                "memory differs (budget {budget}): {:?}",
                rmem.first_difference(&dmem)
            );
            assert_eq!(r.insts_executed(), d.insts_executed(), "budget {budget}");
            assert_eq!(
                r.instrumentation_executed(),
                d.instrumentation_executed(),
                "budget {budget}"
            );
            assert_eq!(r.point(), d.point(), "budget {budget}");
            assert_eq!(r.finished(), d.finished(), "budget {budget}");
            for reg in Reg::all() {
                assert_eq!(r.reg(reg), d.reg(reg), "{reg} differs (budget {budget})");
            }
        }
    }

    /// `run_decoded` with a forced per-batch budget.
    fn run_budgeted(
        d: &mut Interp,
        dec: &DecodedProgram,
        mem: &mut Memory,
        max: u64,
        budget: u32,
    ) -> Vec<DynEvent> {
        let mut events = Vec::new();
        let mut steps = 0u64;
        while steps < max {
            let b = budget.min((max - steps).max(1).min(u32::MAX as u64) as u32);
            let (alus, ev) = d.step_batch(dec, mem, b);
            steps += alus as u64;
            events.extend(std::iter::repeat_n(DynEvent::Alu, alus as usize));
            let Some(ev) = ev else { continue };
            steps += 1;
            events.push(ev);
            if matches!(ev, DynEvent::Halt | DynEvent::LockSpin { .. }) {
                break;
            }
        }
        events
    }

    fn heap() -> i64 {
        layout::HEAP_BASE as i64
    }

    #[test]
    fn straight_line_parity() {
        let mut b = FuncBuilder::new("straight");
        b.mov_imm(Reg::R1, 3);
        b.mov_imm(Reg::R2, heap());
        b.alu_imm(AluOp::Mul, Reg::R3, Reg::R1, 7);
        b.store(Reg::R3, Reg::R2, 0);
        b.load(Reg::R4, Reg::R2, 0);
        b.alu(AluOp::Add, Reg::R5, Reg::R4, Reg::R3);
        b.halt();
        assert_parity(&Program::from_single(b.finish()), 1000);
    }

    #[test]
    fn fused_loop_parity_and_hot_tier() {
        // A hot pure-ALU loop (cmp-branch fused) plus a store-bearing
        // epilogue; > 2*HOT_THRESHOLD iterations to exercise the
        // compiled tier.
        let mut b = FuncBuilder::new("hotloop");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, heap());
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R1, 100);
        b.alu(AluOp::Xor, Reg::R4, Reg::R3, Reg::R1);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 200, header, exit);
        b.switch_to(exit);
        b.store(Reg::R4, Reg::R2, 0);
        b.halt();
        let p = Program::from_single(b.finish());
        assert_parity(&p, 10_000);

        // The header must have been promoted at full budget.
        let dec = DecodedProgram::decode(&p);
        let mut mem = Memory::new();
        let mut d = Interp::new(&p, 0);
        d.run_decoded(&dec, &mut mem, 10_000);
        assert_eq!(compiled_block_count(&d), 1, "hot header compiled");
    }

    #[test]
    fn memory_fusion_patterns_parity() {
        // load-op, op-store, addr-gen+load, addr-gen+store back to back.
        let mut b = FuncBuilder::new("fusions");
        b.mov_imm(Reg::R2, heap());
        b.store(Reg::R2, Reg::R2, 0);
        b.load(Reg::R1, Reg::R2, 0); // load-op head
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R1, 1);
        b.alu_imm(AluOp::Xor, Reg::R4, Reg::R3, 0x55); // op-store head
        b.store(Reg::R4, Reg::R2, 8);
        b.alu_imm(AluOp::Add, Reg::R5, Reg::R2, 8); // addr-gen + load
        b.load(Reg::R6, Reg::R5, 0);
        b.alu_imm(AluOp::Add, Reg::R7, Reg::R2, 16); // addr-gen + store
        b.store(Reg::R6, Reg::R7, 0);
        b.halt();
        assert_parity(&Program::from_single(b.finish()), 1000);
    }

    #[test]
    fn call_ret_boundary_checkpoint_parity() {
        let mut cb = FuncBuilder::new("callee");
        cb.region_boundary();
        cb.mov_imm(Reg::R5, 77);
        cb.checkpoint(Reg::R5);
        cb.mov_imm(Reg::R6, heap());
        cb.store(Reg::R5, Reg::R6, 0);
        cb.ret();
        let callee = cb.finish();
        let mut mb = FuncBuilder::new("main");
        mb.region_boundary();
        mb.call(FuncId::from_index(1));
        mb.io_out(Reg::R5);
        mb.fence();
        mb.ret();
        let p = Program::new(vec![mb.finish(), callee], FuncId::from_index(0));
        assert_parity(&p, 1000);
    }

    #[test]
    fn atomics_and_locks_parity() {
        let mut b = FuncBuilder::new("sync");
        b.mov_imm(Reg::R1, layout::lock_addr(0) as i64);
        b.lock_acquire(Reg::R1);
        b.mov_imm(Reg::R2, heap());
        b.mov_imm(Reg::R3, 5);
        b.atomic_rmw(AluOp::Add, Reg::R4, Reg::R2, Reg::R3);
        b.lock_release(Reg::R1);
        b.halt();
        assert_parity(&Program::from_single(b.finish()), 1000);
    }

    #[test]
    fn lock_spin_parity_and_no_advance() {
        let mut b = FuncBuilder::new("spin");
        b.mov_imm(Reg::R1, layout::lock_addr(0) as i64);
        b.lock_acquire(Reg::R1);
        b.halt();
        let p = Program::from_single(b.finish());
        let dec = DecodedProgram::decode(&p);
        let mut mem = Memory::new();
        mem.write_word(layout::lock_addr(0), 9); // held
        let mut d = Interp::new(&p, 0);
        let (alus, ev) = d.step_batch(&dec, &mut mem, 16);
        assert_eq!(alus, 1, "the mov retires before the acquire");
        assert!(matches!(ev, Some(DynEvent::LockSpin { .. })));
        d.sync_point(&dec);
        let before = d.point();
        let (alus2, ev2) = d.step_batch(&dec, &mut mem, 16);
        assert_eq!(alus2, 0);
        assert!(matches!(ev2, Some(DynEvent::LockSpin { .. })));
        d.sync_point(&dec);
        assert_eq!(d.point(), before, "spin must not advance");
        // Release the lock: the retry succeeds.
        mem.write_word(layout::lock_addr(0), 0);
        let (_, ev3) = d.step_batch(&dec, &mut mem, 16);
        assert!(matches!(
            ev3,
            Some(DynEvent::Store {
                kind: StoreKind::Atomic,
                ..
            })
        ));
    }

    #[test]
    fn resume_from_checkpoint_reenters_decoded_blocks() {
        // Run the reference to completion, then resume from the durable
        // checkpoint image under BOTH engines and compare the replays.
        let mut b = FuncBuilder::new("resume");
        b.mov_imm(Reg::R1, 11);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        // Post-boundary work, including a fused pair the resume point
        // must re-enter exactly.
        b.mov_imm(Reg::R2, heap());
        b.load(Reg::R3, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.store(Reg::R3, Reg::R2, 0);
        b.halt();
        let p = Program::from_single(b.finish());
        let mut pm = Memory::new();
        let mut t = Interp::new(&p, 0);
        t.run(&p, &mut pm, 1000);
        assert!(t.finished());

        let dec = DecodedProgram::decode(&p);
        let mut rmem = pm.clone();
        let mut rt = Interp::resume_from_checkpoint(&pm, 0);
        let revs = rt.run(&p, &mut rmem, 1000);
        let mut dmem = pm.clone();
        let mut dt = Interp::resume_from_checkpoint(&pm, 0);
        let devs = run_budgeted(&mut dt, &dec, &mut dmem, 1000, 2);
        assert_eq!(revs, devs, "resumed event streams differ");
        assert!(rmem.same_contents(&dmem));
        assert_eq!(rt.reg(Reg::R1), 11);
        assert_eq!(dt.reg(Reg::R1), 11);
    }

    #[test]
    fn mixing_step_and_step_batch_stays_coherent() {
        // Interleaving the reference step with batches must not let a
        // stale cursor survive: step() invalidates the decoded cursor.
        let mut b = FuncBuilder::new("mix");
        b.mov_imm(Reg::R1, 1);
        b.mov_imm(Reg::R2, 2);
        b.mov_imm(Reg::R3, 3);
        b.halt();
        let p = Program::from_single(b.finish());
        let dec = DecodedProgram::decode(&p);
        let mut mem = Memory::new();
        let mut t = Interp::new(&p, 0);
        let (alus, _) = t.step_batch(&dec, &mut mem, 1);
        assert_eq!(alus, 1);
        t.sync_point(&dec); // materialise `point` before a reference step
        assert_eq!(t.step(&p, &mut mem), DynEvent::Alu);
        let (alus2, ev) = t.step_batch(&dec, &mut mem, 8);
        assert_eq!(alus2, 1, "one mov left before the halt");
        assert_eq!(ev, Some(DynEvent::Halt));
        assert_eq!(t.reg(Reg::R3), 3);
    }

    #[test]
    fn finished_thread_keeps_halting() {
        let mut b = FuncBuilder::new("halted");
        b.halt();
        let p = Program::from_single(b.finish());
        let dec = DecodedProgram::decode(&p);
        let mut mem = Memory::new();
        let mut t = Interp::new(&p, 0);
        assert_eq!(t.step_batch(&dec, &mut mem, 4), (0, Some(DynEvent::Halt)));
        assert_eq!(t.step_batch(&dec, &mut mem, 4), (0, Some(DynEvent::Halt)));
        assert_eq!(t.insts_executed(), 1, "halt retires once");
    }
}
