//! # lightwsp-ir — post-register-allocation machine IR
//!
//! This crate is the compiler substrate of the LightWSP reproduction
//! (Zhou, Zeng & Jung, *LightWSP: Whole-System Persistence on the Cheap*,
//! MICRO 2024). The paper implements its region-partitioning passes at the
//! LLVM MIR level, **after register allocation** (Fig. 3). This crate
//! provides the equivalent abstraction from scratch:
//!
//! * a small machine-level instruction set over physical registers
//!   ([`inst::Inst`]),
//! * functions made of basic blocks with explicit terminators
//!   ([`program::Function`], [`program::Program`]),
//! * the CFG analyses the passes need — reverse post-order, dominators,
//!   natural loops, and backward liveness dataflow (the `cfg` and [`dom`] modules,
//!   [`loops`], [`liveness`]),
//! * a deterministic functional interpreter ([`interp::Interp`]) that
//!   executes a program and emits the dynamic event stream
//!   ([`interp::DynEvent`]) consumed by the timing simulator and by the
//!   persistence-hardware models, and
//! * a builder API ([`builder::FuncBuilder`]) used by tests and by the
//!   synthetic workload generators.
//!
//! The IR deliberately models the *whole-system* aspects LightWSP relies
//! on: the call stack lives in (persistent) memory via an architectural
//! stack-pointer register, so return addresses survive power failure like
//! any other store, and `RegionBoundary` is a real PC-checkpointing store
//! as in §IV-A of the paper.
//!
//! ```
//! use lightwsp_ir::builder::FuncBuilder;
//! use lightwsp_ir::inst::{AluOp, Cond};
//! use lightwsp_ir::reg::Reg;
//!
//! // for (i = 0; i != 4; i++) { heap[i] = i; }
//! let mut b = FuncBuilder::new("quick");
//! let (i, base) = (Reg::R1, Reg::R2);
//! b.mov_imm(i, 0);
//! b.mov_imm(base, 0x4000_0000);
//! let header = b.new_block();
//! b.jump(header);
//! b.switch_to(header);
//! b.store(i, base, 0);
//! b.alu_imm(AluOp::Add, base, base, 8);
//! b.alu_imm(AluOp::Add, i, i, 1);
//! let exit = b.new_block();
//! b.branch_imm(Cond::Ne, i, 4, header, exit);
//! b.switch_to(exit);
//! b.ret();
//! let func = b.finish();
//! assert_eq!(func.blocks.len(), 3);
//! ```
//!
//! The interpreter has two execution engines with bit-identical
//! observable behaviour: the tree-walking reference (`Interp::step`)
//! and the pre-decoded micro-op engine ([`decode`], [`uop`], [`exec`])
//! that fuses adjacent instructions and batches ALU work between timed
//! events.

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod decode;
pub mod display;
pub mod dom;
pub mod exec;
pub mod fxhash;
pub mod inst;
pub mod interp;
pub mod layout;
pub mod liveness;
pub mod loops;
pub mod memory;
pub mod program;
pub mod reg;
pub mod uop;

pub use decode::{DecodedBlock, DecodedProgram, EntryRef};
pub use exec::HOT_THRESHOLD;
pub use fxhash::{fx_hash, FxHashMap, FxHashSet};
pub use inst::{AluOp, Cond, Inst, Terminator};
pub use interp::{DynEvent, Interp, Memory, StoreKind, ThreadId};
pub use program::{BlockId, FuncId, Function, Program, ProgramPoint};
pub use reg::Reg;
pub use uop::MicroOp;
