//! Property-based tests of IR fundamentals: encodings, register sets,
//! ALU semantics, and interpreter determinism.

use lightwsp_ir::inst::AluOp;
use lightwsp_ir::program::{BlockId, FuncId, ProgramPoint};
use lightwsp_ir::reg::{Reg, RegSet, NUM_REGS};
use proptest::prelude::*;

proptest! {
    /// Program points encode/decode losslessly across the full field
    /// widths the encoding reserves.
    #[test]
    fn program_point_roundtrip(
        func in 0usize..0xffff,
        block in 0usize..0xff_ffff,
        inst in 0u32..0xff_ffff,
    ) {
        let p = ProgramPoint {
            func: FuncId::from_index(func),
            block: BlockId::from_index(block),
            inst,
        };
        prop_assert_eq!(ProgramPoint::decode(p.encode()), p);
    }

    /// RegSet behaves like a reference `HashSet<usize>` under a random
    /// operation sequence.
    #[test]
    fn regset_matches_reference(ops in prop::collection::vec((0usize..NUM_REGS, 0u8..3), 0..64)) {
        let mut set = RegSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for (idx, op) in ops {
            let r = Reg::from_index(idx);
            match op {
                0 => {
                    prop_assert_eq!(set.insert(r), reference.insert(idx));
                }
                1 => {
                    prop_assert_eq!(set.remove(r), reference.remove(&idx));
                }
                _ => {
                    prop_assert_eq!(set.contains(r), reference.contains(&idx));
                }
            }
            prop_assert_eq!(set.len(), reference.len());
        }
        let collected: Vec<usize> = set.iter().map(Reg::index).collect();
        let expected: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected, "iteration order is ascending");
    }

    /// Set algebra laws.
    #[test]
    fn regset_algebra(
        a in prop::collection::vec(0usize..NUM_REGS, 0..16),
        b in prop::collection::vec(0usize..NUM_REGS, 0..16),
    ) {
        let sa: RegSet = a.iter().map(|&i| Reg::from_index(i)).collect();
        let sb: RegSet = b.iter().map(|&i| Reg::from_index(i)).collect();
        // A ∩ B ⊆ A and ⊆ B
        let inter = sa.intersection(&sb);
        for r in inter.iter() {
            prop_assert!(sa.contains(r) && sb.contains(r));
        }
        // (A ∪ B) \ B ⊆ A
        let mut u = sa;
        u.union_with(&sb);
        let mut diff = u;
        diff.subtract(&sb);
        for r in diff.iter() {
            prop_assert!(sa.contains(r) && !sb.contains(r));
        }
    }

    /// ALU operations agree with native u64 arithmetic.
    #[test]
    fn alu_matches_native(lhs in any::<u64>(), rhs in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.apply(lhs, rhs), lhs.wrapping_add(rhs));
        prop_assert_eq!(AluOp::Sub.apply(lhs, rhs), lhs.wrapping_sub(rhs));
        prop_assert_eq!(AluOp::Mul.apply(lhs, rhs), lhs.wrapping_mul(rhs));
        prop_assert_eq!(AluOp::Xor.apply(lhs, rhs), lhs ^ rhs);
        prop_assert_eq!(AluOp::And.apply(lhs, rhs), lhs & rhs);
        prop_assert_eq!(AluOp::Or.apply(lhs, rhs), lhs | rhs);
        prop_assert_eq!(AluOp::Shl.apply(lhs, rhs), lhs.wrapping_shl((rhs & 63) as u32));
        prop_assert_eq!(AluOp::Shr.apply(lhs, rhs), lhs.wrapping_shr((rhs & 63) as u32));
    }
}

/// Interpreter determinism on a straight-line random program: two runs
/// produce identical memory and register outcomes.
mod interp_determinism {
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::inst::AluOp;
    use lightwsp_ir::interp::{Interp, Memory};
    use lightwsp_ir::{layout, Program, Reg};
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Mov(u8, i64),
        Alu(u8, u8, u8),
        Store(u8, i64),
        Load(u8, i64),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u8..15, any::<i64>()).prop_map(|(d, i)| Op::Mov(d, i)),
            (1u8..15, 1u8..15, 1u8..15).prop_map(|(d, a, b)| Op::Alu(d, a, b)),
            (1u8..15, 0i64..512).prop_map(|(s, o)| Op::Store(s, o * 8)),
            (1u8..15, 0i64..512).prop_map(|(d, o)| Op::Load(d, o * 8)),
        ]
    }

    fn build(ops: &[Op]) -> Program {
        let mut b = FuncBuilder::new("rand");
        b.mov_imm(Reg::R15, layout::HEAP_BASE as i64);
        for o in ops {
            match *o {
                Op::Mov(d, i) => b.mov_imm(Reg::from_index(d as usize), i),
                Op::Alu(d, x, y) => b.alu(
                    AluOp::Add,
                    Reg::from_index(d as usize),
                    Reg::from_index(x as usize),
                    Reg::from_index(y as usize),
                ),
                Op::Store(s, off) => b.store(Reg::from_index(s as usize), Reg::R15, off),
                Op::Load(d, off) => b.load(Reg::from_index(d as usize), Reg::R15, off),
            }
        }
        b.halt();
        Program::from_single(b.finish())
    }

    proptest! {
        #[test]
        fn two_runs_agree(ops in prop::collection::vec(op(), 1..200)) {
            let p = build(&ops);
            let run = || {
                let mut mem = Memory::new();
                let mut t = Interp::new(&p, 0);
                t.run(&p, &mut mem, 10_000);
                let mut v: Vec<(u64, u64)> = mem.iter().collect();
                v.sort_unstable();
                (v, (0..32).map(|i| t.reg(Reg::from_index(i))).collect::<Vec<_>>())
            };
            prop_assert_eq!(run(), run());
        }
    }
}
