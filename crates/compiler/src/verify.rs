//! Post-pass validation of the compiler's central invariants.
//!
//! These checks back the property-based tests and guard the simulator's
//! assumptions: if [`check_store_threshold`] passes, a region's stores
//! can never overflow a WPQ of `2 × threshold` entries (§III-C), which is
//! what makes the WPQ gating scheme failure-atomic.

use crate::prune::RecoveryRecipes;
use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::liveness::Liveness;
use lightwsp_ir::program::{Block, ProgramPoint};
use lightwsp_ir::reg::RegSet;
use lightwsp_ir::{BlockId, FuncId, Function, Inst, Program, Reg};
use std::fmt;

/// A violated compiler invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Checks the store-threshold invariant for every function of `program`:
/// on no path between two consecutive region boundaries do more than
/// `threshold` store-like instructions occur (counting the region-ending
/// boundary's own PC store).
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first offending function/block.
pub fn check_store_threshold(program: &Program, threshold: u32) -> Result<(), VerifyError> {
    for func in &program.funcs {
        check_function_threshold(func, threshold)?;
    }
    Ok(())
}

/// Per-function version of [`check_store_threshold`].
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the offending block.
pub fn check_function_threshold(func: &Function, threshold: u32) -> Result<(), VerifyError> {
    let threshold = threshold as u64;
    let cfg = Cfg::compute(func);
    let n = func.blocks.len();
    let mut cin = vec![0u64; n];
    let mut cout = vec![0u64; n];
    let cap = 4 * threshold + 16;

    for _round in 0..(2 * n + 8) {
        let mut changed = false;
        for &b in cfg.reverse_post_order() {
            let mut max_in = 0u64;
            for &p in cfg.preds(b) {
                max_in = max_in.max(cout[p.index()]);
            }
            if max_in != cin[b.index()] {
                cin[b.index()] = max_in;
                changed = true;
            }
            let out = walk(func.block(b), max_in, threshold, func, b)?;
            if out != cout[b.index()] {
                if out > cap {
                    return Err(VerifyError {
                        message: format!(
                            "store count diverges at {b:?} in '{}' (no boundary on a store cycle)",
                            func.name
                        ),
                    });
                }
                cout[b.index()] = out;
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
    }
    Err(VerifyError {
        message: format!("threshold dataflow failed to converge in '{}'", func.name),
    })
}

fn walk(
    block: &Block,
    mut count: u64,
    threshold: u64,
    func: &Function,
    b: BlockId,
) -> Result<u64, VerifyError> {
    for (i, inst) in block.insts.iter().enumerate() {
        if let Inst::RegionBoundary { .. } = inst {
            // The ending boundary's PC store occupies a slot in the
            // region it closes.
            if count + 1 > threshold {
                return Err(VerifyError {
                    message: format!(
                        "region ending at {b:?}[{i}] in '{}' has {} stores (threshold {threshold})",
                        func.name,
                        count + 1
                    ),
                });
            }
            count = 0;
        } else if inst.is_store_like() {
            count += 1;
            if count + 1 > threshold {
                return Err(VerifyError {
                    message: format!(
                        "open region at {b:?}[{i}] in '{}' reaches {} stores (threshold {threshold})",
                        func.name,
                        count + 1
                    ),
                });
            }
        }
    }
    Ok(count)
}

/// Checks that every region boundary is the last instruction of its
/// block (the post-split invariant the checkpoint analysis relies on).
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first misplaced boundary.
pub fn check_blocks_split(program: &Program) -> Result<(), VerifyError> {
    for func in &program.funcs {
        for (b, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, Inst::RegionBoundary { .. }) && i + 1 != block.insts.len() {
                    return Err(VerifyError {
                        message: format!(
                            "boundary at {b:?}[{i}] in '{}' is not block-final",
                            func.name
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks **checkpoint coverage**, the invariant power-failure recovery
/// rests on (§IV-A): for every region boundary `b` and every register
/// `r` live at `b` (SP excluded — it follows the structural protocol),
/// either a pruning recipe reconstructs `r` at `b`'s recovery point, or
/// on *every* backward path from `b` a `CheckpointStore(r)` appears
/// before any other definition of `r`. Registers with no reaching
/// definition in the function are the caller's/installer's
/// responsibility (covered by the ABI convention) and are skipped.
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first uncovered (boundary,
/// register) pair.
pub fn check_checkpoint_coverage(
    program: &Program,
    recipes: &RecoveryRecipes,
) -> Result<(), VerifyError> {
    for (fi, func) in program.funcs.iter().enumerate() {
        check_function_coverage(FuncId::from_index(fi), func, recipes)?;
    }
    Ok(())
}

fn check_function_coverage(
    fid: FuncId,
    func: &Function,
    recipes: &RecoveryRecipes,
) -> Result<(), VerifyError> {
    let cfg = Cfg::compute(func);
    let live = Liveness::compute(func, &cfg);

    for (b, block) in func.iter_blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let live_after = live.live_after_insts(func, b);
        for (i, inst) in block.insts.iter().enumerate() {
            if !matches!(inst, Inst::RegionBoundary { .. }) {
                continue;
            }
            let recovery = ProgramPoint {
                func: fid,
                block: b,
                inst: (i + 1) as u32,
            };
            let recipe_regs: RegSet = recipes
                .for_point(recovery.encode())
                .iter()
                .map(|&(r, _)| r)
                .collect();
            let mut need = live_after[i];
            need.remove(Reg::SP);
            need.subtract(&recipe_regs);
            for r in need.iter() {
                if let Some(path_desc) = uncovered_path(func, &cfg, b, i, r) {
                    return Err(VerifyError {
                        message: format!(
                            "register {r} live at boundary {b:?}[{i}] in '{}' lacks                              checkpoint coverage ({path_desc})",
                            func.name
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Searches for a backward path from just before instruction `from` of
/// block `b` that meets a definition of `r` (or a call clobbering it)
/// before meeting `CheckpointStore(r)`. Returns a description of the
/// offending path, or `None` if every path is covered.
fn uncovered_path(func: &Function, cfg: &Cfg, b: BlockId, from: usize, r: Reg) -> Option<String> {
    // Walk the tail of the starting block.
    match scan_backward(func, b, from, r) {
        Scan::Covered => return None,
        Scan::Uncovered(i) => return Some(format!("def at {b:?}[{i}] reaches the boundary")),
        Scan::Transparent => {}
    }
    // DFS through predecessors; a block is *transparent* when it neither
    // defines nor checkpoints `r`.
    let mut stack: Vec<BlockId> = cfg.preds(b).to_vec();
    let mut visited = vec![false; func.blocks.len()];
    while let Some(p) = stack.pop() {
        if visited[p.index()] {
            continue;
        }
        visited[p.index()] = true;
        match scan_backward(func, p, func.block(p).insts.len(), r) {
            Scan::Covered => {}
            Scan::Uncovered(i) => return Some(format!("def at {p:?}[{i}] reaches the boundary")),
            Scan::Transparent => {
                if cfg.preds(p).is_empty() {
                    // Entry reached with no def: caller/installer covers it.
                } else {
                    stack.extend_from_slice(cfg.preds(p));
                }
            }
        }
    }
    None
}

enum Scan {
    /// Met `CheckpointStore(r)` first — this path is covered.
    Covered,
    /// Met a def of `r` (index) with no checkpoint after it.
    Uncovered(usize),
    /// Neither — keep walking predecessors.
    Transparent,
}

fn scan_backward(func: &Function, b: BlockId, from: usize, r: Reg) -> Scan {
    let block = func.block(b);
    for i in (0..from.min(block.insts.len())).rev() {
        match &block.insts[i] {
            Inst::CheckpointStore { reg } if *reg == r => return Scan::Covered,
            inst if inst.defs().contains(r) => return Scan::Uncovered(i),
            _ => {}
        }
    }
    Scan::Transparent
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::Reg;

    #[test]
    fn accepts_compliant_function() {
        let mut b = FuncBuilder::new("ok");
        b.store(Reg::R1, Reg::R2, 0);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 8);
        b.halt();
        let p = Program::from_single(b.finish());
        check_store_threshold(&p, 4).unwrap();
    }

    #[test]
    fn rejects_overfull_region() {
        let mut b = FuncBuilder::new("bad");
        for i in 0..10 {
            b.store(Reg::R1, Reg::R2, i * 8);
        }
        b.halt();
        let p = Program::from_single(b.finish());
        let err = check_store_threshold(&p, 4).unwrap_err();
        assert!(err.message.contains("stores"), "{err}");
    }

    #[test]
    fn rejects_boundaryless_store_cycle() {
        use lightwsp_ir::inst::Cond;
        let mut b = FuncBuilder::new("cycle");
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.store(Reg::R1, Reg::R2, 0);
        b.branch_imm(Cond::Eq, Reg::R3, 0, exit, l);
        b.switch_to(exit);
        b.halt();
        let p = Program::from_single(b.finish());
        assert!(check_store_threshold(&p, 4).is_err());
    }

    #[test]
    fn split_check() {
        let mut b = FuncBuilder::new("unsplit");
        b.region_boundary();
        b.nop();
        b.halt();
        let p = Program::from_single(b.finish());
        assert!(check_blocks_split(&p).is_err());

        let mut b2 = FuncBuilder::new("split");
        b2.nop();
        b2.region_boundary();
        b2.halt();
        let p2 = Program::from_single(b2.finish());
        check_blocks_split(&p2).unwrap();
    }

    #[test]
    fn coverage_accepts_instrumented_program() {
        use crate::{instrument, CompilerConfig};
        use lightwsp_ir::inst::AluOp;
        let mut b = FuncBuilder::new("cov");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, 0x4000_0000);
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(lightwsp_ir::inst::Cond::Ne, Reg::R1, 40, l, exit);
        b.switch_to(exit);
        b.halt();
        let p = Program::from_single(b.finish());
        let out = instrument(&p, &CompilerConfig::default());
        check_checkpoint_coverage(&out.program, &out.recipes).unwrap();
    }

    #[test]
    fn coverage_rejects_missing_checkpoint() {
        // r1 defined, live across a boundary, never checkpointed.
        let mut b = FuncBuilder::new("bad");
        b.mov_imm(Reg::R1, 7);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let p = Program::from_single(b.finish());
        let err =
            check_checkpoint_coverage(&p, &crate::prune::RecoveryRecipes::default()).unwrap_err();
        assert!(err.message.contains("r1"), "{err}");
    }

    #[test]
    fn coverage_accepts_recipe_substitute() {
        use crate::prune::{Recipe, RecoveryRecipes};
        use lightwsp_ir::program::ProgramPoint;
        let mut b = FuncBuilder::new("recipe");
        b.mov_imm(Reg::R1, 7);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let p = Program::from_single(b.finish());
        let mut recipes = RecoveryRecipes::default();
        let point = ProgramPoint {
            func: FuncId::from_index(0),
            block: p.funcs[0].entry,
            inst: 2,
        };
        recipes.add(point, Reg::R1, Recipe::Const(7));
        check_checkpoint_coverage(&p, &recipes).unwrap();
    }

    #[test]
    fn coverage_accepts_undefined_registers() {
        // r2 (the store base) is never defined in the function: the ABI
        // convention makes it the caller's responsibility.
        let mut b = FuncBuilder::new("undef");
        b.mov_imm(Reg::R1, 7);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let p = Program::from_single(b.finish());
        check_checkpoint_coverage(&p, &crate::prune::RecoveryRecipes::default()).unwrap();
    }

    #[test]
    fn counts_boundary_own_store() {
        // threshold 2: one store + the closing boundary = 2 → ok;
        // two stores + boundary = 3 → error.
        let mut ok = FuncBuilder::new("ok");
        ok.store(Reg::R1, Reg::R2, 0);
        ok.region_boundary();
        ok.halt();
        check_store_threshold(&Program::from_single(ok.finish()), 2).unwrap();

        let mut bad = FuncBuilder::new("bad");
        bad.store(Reg::R1, Reg::R2, 0);
        bad.store(Reg::R1, Reg::R2, 8);
        bad.region_boundary();
        bad.halt();
        assert!(check_store_threshold(&Program::from_single(bad.finish()), 2).is_err());
    }
}
