//! Dead-code elimination — one of Fig. 3's "other code optimizations"
//! that run before region partitioning.
//!
//! Removes instructions whose results are never used: pure computations
//! (`Alu`, `AluImm`, `MovImm`) and loads whose destination is dead
//! before any redefinition. Stores, calls, fences, atomics, lock
//! operations, and LightWSP instrumentation are never removed (they have
//! memory or synchronisation effects).
//!
//! The pass is a utility for front ends that emit naive code; the
//! workload generators already emit lean code, so the default
//! [`crate::instrument`] pipeline does not run it — callers invoke
//! [`eliminate_dead_code`] explicitly beforehand when needed.

use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::liveness::Liveness;
use lightwsp_ir::{Function, Inst, Program};

/// True for instructions DCE may remove when their definition is dead.
fn is_removable(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Alu { .. } | Inst::AluImm { .. } | Inst::MovImm { .. } | Inst::Load { .. }
    )
}

/// Removes dead pure instructions from one function; returns how many
/// were eliminated. Iterates to a fixpoint (removing one instruction can
/// kill its operands' last uses).
pub fn eliminate_dead_code_in(func: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let cfg = Cfg::compute(func);
        let live = Liveness::compute(func, &cfg);
        let mut removed = 0;
        for bi in 0..func.blocks.len() {
            let b = lightwsp_ir::BlockId::from_index(bi);
            if !cfg.is_reachable(b) {
                continue;
            }
            let after = live.live_after_insts(func, b);
            let block = func.block_mut(b);
            // Walk backwards so indices stay valid while removing.
            for i in (0..block.insts.len()).rev() {
                let inst = &block.insts[i];
                if !is_removable(inst) {
                    continue;
                }
                if let Some(d) = inst.def() {
                    if !after[i].contains(d) {
                        block.insts.remove(i);
                        removed += 1;
                    }
                }
            }
        }
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

/// Runs DCE over every function of `program`; returns the total count.
pub fn eliminate_dead_code(program: &mut Program) -> usize {
    program.funcs.iter_mut().map(eliminate_dead_code_in).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::inst::{AluOp, Cond};
    use lightwsp_ir::interp::{Interp, Memory};
    use lightwsp_ir::Reg;

    #[test]
    fn removes_dead_mov_and_chain() {
        // r1 = 1 (dead); r2 = r1+1 (dead); r3 = 7; [r4] = r3
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 1);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1);
        b.mov_imm(Reg::R3, 7);
        b.store(Reg::R3, Reg::R4, 0);
        b.halt();
        let mut f = b.finish();
        let n = eliminate_dead_code_in(&mut f);
        assert_eq!(n, 2, "the mov and its dependent add are both dead");
        assert_eq!(f.block(f.entry).insts.len(), 2);
    }

    #[test]
    fn keeps_live_and_effectful_instructions() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 1);
        b.store(Reg::R1, Reg::R2, 0); // uses r1; store never removed
        b.load(Reg::R3, Reg::R2, 0); // dead load → removable
        b.fence(); // never removed
        b.halt();
        let mut f = b.finish();
        let n = eliminate_dead_code_in(&mut f);
        assert_eq!(n, 1);
        let insts = &f.block(f.entry).insts;
        assert_eq!(insts.len(), 3);
        assert!(matches!(insts[2], Inst::Fence));
    }

    #[test]
    fn loop_carried_values_survive() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0);
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 10, l, exit);
        b.switch_to(exit);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code_in(&mut f), 0);
    }

    #[test]
    fn semantics_preserved_on_program_with_dead_code() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R9, 111); // dead
        b.mov_imm(Reg::R1, 5);
        b.alu_imm(AluOp::Mul, Reg::R10, Reg::R1, 3); // dead
        b.mov_imm(Reg::R2, 0x4000_0000);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let mut p = lightwsp_ir::Program::from_single(b.finish());
        let run = |p: &lightwsp_ir::Program| {
            let mut mem = Memory::new();
            let mut t = Interp::new(p, 0);
            t.run(p, &mut mem, 1000);
            mem.read_word(0x4000_0000)
        };
        let before = run(&p);
        let n = eliminate_dead_code(&mut p);
        assert_eq!(n, 2);
        assert_eq!(run(&p), before);
    }
}
