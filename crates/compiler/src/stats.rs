//! Static compile statistics (§V-G3 reports the dynamic counterparts;
//! those are measured by the simulator).

use lightwsp_ir::inst::BoundaryKind;
use lightwsp_ir::{Inst, Program};

/// Counters accumulated across the pass pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Total region boundaries inserted.
    pub boundaries_inserted: u64,
    /// Boundaries at function entries.
    pub boundaries_func_entry: u64,
    /// Boundaries at function exits.
    pub boundaries_func_exit: u64,
    /// Boundaries at call sites.
    pub boundaries_call_site: u64,
    /// Boundaries at loop headers.
    pub boundaries_loop_header: u64,
    /// Boundaries at synchronisation instructions.
    pub boundaries_sync: u64,
    /// Threshold-split boundaries.
    pub boundaries_threshold: u64,
    /// Checkpoint stores inserted (cumulative across formation rounds;
    /// see [`CompileStats::final_checkpoints`] for the surviving count).
    pub checkpoints_inserted: u64,
    /// Checkpoints removed by the pruning pass.
    pub checkpoints_pruned: u64,
    /// Threshold boundaries merged away by region combining.
    pub boundaries_combined: u64,
    /// Loops unrolled (classic, known trip count).
    pub loops_unrolled: u64,
    /// Loops speculatively unrolled (unknown trip count).
    pub loops_speculatively_unrolled: u64,
    /// Static instruction count of the final program.
    pub static_insts: u64,
    /// Boundaries present in the final program.
    pub final_boundaries: u64,
    /// Checkpoint stores present in the final program.
    pub final_checkpoints: u64,
    /// Functions whose regions could not all be shrunk under the store
    /// threshold (the §IV-D overflow fallback covers them at run time).
    pub threshold_relaxations: u64,
}

impl CompileStats {
    /// Records one inserted boundary of the given kind.
    pub fn record_boundary(&mut self, kind: BoundaryKind) {
        self.boundaries_inserted += 1;
        match kind {
            BoundaryKind::FuncEntry => self.boundaries_func_entry += 1,
            BoundaryKind::FuncExit => self.boundaries_func_exit += 1,
            BoundaryKind::CallSite => self.boundaries_call_site += 1,
            BoundaryKind::LoopHeader => self.boundaries_loop_header += 1,
            BoundaryKind::Sync => self.boundaries_sync += 1,
            BoundaryKind::Threshold => self.boundaries_threshold += 1,
            BoundaryKind::Manual => {}
        }
    }

    /// Fills in the final-program counters.
    pub fn finalize(&mut self, program: &Program) {
        self.static_insts = program.static_size() as u64;
        self.final_boundaries = 0;
        self.final_checkpoints = 0;
        for func in &program.funcs {
            for block in &func.blocks {
                for inst in &block.insts {
                    match inst {
                        Inst::RegionBoundary { .. } => self.final_boundaries += 1,
                        Inst::CheckpointStore { .. } => self.final_checkpoints += 1,
                        _ => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::Reg;

    #[test]
    fn record_boundary_updates_totals_and_kind() {
        let mut s = CompileStats::default();
        s.record_boundary(BoundaryKind::Sync);
        s.record_boundary(BoundaryKind::Sync);
        s.record_boundary(BoundaryKind::Threshold);
        assert_eq!(s.boundaries_inserted, 3);
        assert_eq!(s.boundaries_sync, 2);
        assert_eq!(s.boundaries_threshold, 1);
    }

    #[test]
    fn finalize_counts_final_program() {
        let mut b = FuncBuilder::new("f");
        b.region_boundary();
        b.checkpoint(Reg::R1);
        b.checkpoint(Reg::R2);
        b.halt();
        let p = lightwsp_ir::Program::from_single(b.finish());
        let mut s = CompileStats::default();
        s.finalize(&p);
        assert_eq!(s.final_boundaries, 1);
        assert_eq!(s.final_checkpoints, 2);
        assert_eq!(s.static_insts, 4);
    }
}
