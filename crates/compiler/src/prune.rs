//! Checkpoint pruning (§IV-A): removing checkpoint stores whose values
//! the recovery runtime can *reconstruct* from other checkpointed values
//! or constants, trading a store at run time for a little recomputation
//! at recovery time.
//!
//! A pruned checkpoint is replaced by one [`Recipe`] per region
//! boundary it covered; the recipes are keyed by the boundary's recovery
//! point (the encoded program point the boundary's PC store writes), and
//! the recovery runtime applies them after reloading the register file
//! from the checkpoint slots.
//!
//! Pruning is deliberately conservative — all of the following must hold
//! for a checkpoint of `r` at index `i` of block `B`:
//!
//! * the instruction at `i - 1` defines `r` as `MovImm` (constant) or
//!   `AluImm` whose source register has an **unpruned** checkpoint
//!   earlier in `B` with the source unmodified through the covered range;
//! * the covered range (from `i` to the first redefinition of `r` in `B`,
//!   or the block end) contains no `Call` (power failure inside a callee
//!   would otherwise resume at a callee boundary that has no recipe); and
//! * if `r` is never redefined in the rest of `B`, `r` is not live out of
//!   `B` (otherwise boundaries in later blocks would depend on the slot).

use crate::stats::CompileStats;
use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::fxhash::FxHashMap;
use lightwsp_ir::liveness::Liveness;
use lightwsp_ir::program::ProgramPoint;
use lightwsp_ir::{AluOp, BlockId, FuncId, Function, Inst, Reg};

/// How to reconstruct one pruned register at recovery time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recipe {
    /// The register held a compile-time constant.
    Const(i64),
    /// The register held `op(slot(src), imm)` where `slot(src)` is the
    /// (unpruned) checkpointed value of `src`.
    AluImm {
        /// The ALU operation.
        op: AluOp,
        /// The checkpointed source register.
        src: Reg,
        /// The immediate operand.
        imm: i64,
    },
}

/// All reconstruction recipes of a compiled program, keyed by encoded
/// recovery point.
#[derive(Clone, Debug, Default)]
pub struct RecoveryRecipes {
    map: FxHashMap<u64, Vec<(Reg, Recipe)>>,
}

impl RecoveryRecipes {
    /// Registers a recipe for the recovery point `point`.
    pub fn add(&mut self, point: ProgramPoint, reg: Reg, recipe: Recipe) {
        self.map
            .entry(point.encode())
            .or_default()
            .push((reg, recipe));
    }

    /// The recipes to apply when resuming at `encoded_point` (empty slice
    /// if none).
    pub fn for_point(&self, encoded_point: u64) -> &[(Reg, Recipe)] {
        self.map
            .get(&encoded_point)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Applies the recipes for `encoded_point` to a register file that
    /// has just been reloaded from the checkpoint slots.
    pub fn apply(&self, encoded_point: u64, regs: &mut [u64]) {
        for &(reg, recipe) in self.for_point(encoded_point) {
            regs[reg.index()] = match recipe {
                Recipe::Const(c) => c as u64,
                Recipe::AluImm { op, src, imm } => op.apply(regs[src.index()], imm as u64),
            };
        }
    }

    /// Total number of registered recipes.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// True if no recipes were registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Runs pruning over one function, appending recipes to `recipes`.
pub fn prune_checkpoints(
    fid: FuncId,
    func: &mut Function,
    recipes: &mut RecoveryRecipes,
    stats: &mut CompileStats,
) {
    let cfg = Cfg::compute(func);
    let live = Liveness::compute(func, &cfg);
    for bi in 0..func.blocks.len() {
        let b = BlockId::from_index(bi);
        if !cfg.is_reachable(b) {
            continue;
        }
        prune_block(fid, func, b, &live, recipes, stats);
    }
}

fn prune_block(
    fid: FuncId,
    func: &mut Function,
    b: BlockId,
    live: &Liveness,
    recipes: &mut RecoveryRecipes,
    stats: &mut CompileStats,
) {
    let live_out = *live.live_out(b);
    // Plan prunes on the original index space.
    let mut pruned: Vec<usize> = Vec::new();
    // (original boundary index, reg, recipe) registrations.
    let mut pending: Vec<(usize, Reg, Recipe)> = Vec::new();

    let insts = func.block(b).insts.clone();
    for i in 0..insts.len() {
        let Inst::CheckpointStore { reg: r } = insts[i] else {
            continue;
        };
        if r.is_sp() {
            continue; // structural SP checkpoints are never pruned
        }
        if i == 0 {
            continue;
        }
        // The candidate recipe from the defining instruction.
        let recipe = match insts[i - 1] {
            Inst::MovImm { dst, imm } if dst == r => Some(Recipe::Const(imm)),
            Inst::AluImm { op, dst, src, imm } if dst == r && src != r => {
                // src must have an unpruned checkpoint earlier in this
                // block, with src untouched in between.
                let src_ok = (0..i - 1).rev().find_map(|j| match insts[j] {
                    Inst::CheckpointStore { reg } if reg == src && !pruned.contains(&j) => Some(j),
                    ref inst if inst.defs().contains(src) => Some(usize::MAX),
                    _ => None,
                });
                match src_ok {
                    Some(j) if j != usize::MAX => Some(Recipe::AluImm { op, src, imm }),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some(recipe) = recipe else { continue };

        // Covered range: i+1 .. first redef of r (or of the recipe's src).
        let mut covered_boundaries: Vec<usize> = Vec::new();
        let mut blocked = false;
        let mut reaches_block_end = true;
        for (k, inst) in insts.iter().enumerate().skip(i + 1) {
            if matches!(inst, Inst::Call { .. }) {
                blocked = true; // callee boundaries would lack recipes
                break;
            }
            if let Inst::RegionBoundary { .. } = inst {
                covered_boundaries.push(k);
            }
            let mut stop = inst.defs().contains(r);
            if let Recipe::AluImm { src, .. } = recipe {
                if inst.defs().contains(src)
                    || matches!(inst, Inst::CheckpointStore { reg } if *reg == src)
                {
                    // src's slot would change under the recipe's feet.
                    // Boundaries collected so far are still valid: src's
                    // slot only changes *after* them. Stop extending
                    // without blocking.
                    stop = true;
                }
            }
            if stop {
                reaches_block_end = false;
                break;
            }
        }
        if blocked {
            continue;
        }
        if reaches_block_end && live_out.contains(r) {
            continue; // later blocks rely on the slot
        }

        pruned.push(i);
        for k in covered_boundaries {
            pending.push((k, r, recipe));
        }
    }

    if pruned.is_empty() {
        return;
    }

    // Translate original indices to final (post-removal) indices.
    let final_idx = |orig: usize| orig - pruned.iter().filter(|&&p| p < orig).count();
    for (k, r, recipe) in pending {
        let point = ProgramPoint {
            func: fid,
            block: b,
            // Recovery point = the instruction after the boundary.
            inst: (final_idx(k) + 1) as u32,
        };
        recipes.add(point, r, recipe);
    }
    let block = func.block_mut(b);
    for &p in pruned.iter().rev() {
        block.insts.remove(p);
    }
    stats.checkpoints_pruned += pruned.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::Program;

    fn prune_single(func: Function) -> (Function, RecoveryRecipes, CompileStats) {
        let mut p = Program::from_single(func);
        let mut recipes = RecoveryRecipes::default();
        let mut stats = CompileStats::default();
        prune_checkpoints(
            FuncId::from_index(0),
            &mut p.funcs[0],
            &mut recipes,
            &mut stats,
        );
        (p.funcs.remove(0), recipes, stats)
    }

    fn count_checkpoints(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::CheckpointStore { .. }))
            .count()
    }

    #[test]
    fn constant_checkpoint_pruned_with_recipe() {
        // r1 = 42; ckpt r1; boundary; store uses r1
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 42);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let (f, recipes, stats) = prune_single(b.finish());
        assert_eq!(stats.checkpoints_pruned, 1);
        assert_eq!(count_checkpoints(&f), 0);
        // Recipe registered at the boundary's recovery point. After the
        // removal the boundary sits at index 1; recovery point inst = 2.
        let pt = ProgramPoint {
            func: FuncId::from_index(0),
            block: f.entry,
            inst: 2,
        };
        let rs = recipes.for_point(pt.encode());
        assert_eq!(rs, &[(Reg::R1, Recipe::Const(42))]);
        let mut regs = [0u64; 32];
        recipes.apply(pt.encode(), &mut regs);
        assert_eq!(regs[Reg::R1.index()], 42);
    }

    #[test]
    fn live_out_checkpoint_not_pruned() {
        // r1 = 42; ckpt; boundary; (r1 used in the NEXT block)
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 42);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        let next = b.new_block();
        b.jump(next);
        b.switch_to(next);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let (f, _, stats) = prune_single(b.finish());
        // r1 is live-out of the entry block and never redefined → keep.
        assert_eq!(stats.checkpoints_pruned, 0);
        assert_eq!(count_checkpoints(&f), 1);
    }

    #[test]
    fn alu_imm_checkpoint_pruned_when_src_checkpointed() {
        // r2 = 100; ckpt r2; r3 = r2 + 8; ckpt r3; boundary; uses
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R2, 100);
        b.checkpoint(Reg::R2);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R2, 8);
        b.checkpoint(Reg::R3);
        b.region_boundary();
        b.store(Reg::R3, Reg::R2, 0);
        b.halt();
        let (f, recipes, stats) = prune_single(b.finish());
        // r2's own ckpt follows a MovImm → pruned (Const). r3's ckpt may
        // then NOT use r2's slot... the pass processes in order: r2's
        // checkpoint is pruned first, so r3's AluImm recipe must be
        // rejected (src checkpoint gone).
        assert_eq!(stats.checkpoints_pruned, 1);
        assert_eq!(count_checkpoints(&f), 1, "r3 checkpoint kept");
        assert_eq!(recipes.len(), 1);
    }

    #[test]
    fn alu_imm_pruned_when_src_slot_genuinely_valid() {
        // r2 loaded (not constant) → its ckpt survives; r3 = r2+8 → prunable.
        let mut b = FuncBuilder::new("f");
        b.load(Reg::R2, Reg::R9, 0);
        b.checkpoint(Reg::R2);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R2, 8);
        b.checkpoint(Reg::R3);
        b.region_boundary();
        b.store(Reg::R3, Reg::R2, 0);
        b.halt();
        let (f, recipes, stats) = prune_single(b.finish());
        assert_eq!(stats.checkpoints_pruned, 1);
        assert_eq!(count_checkpoints(&f), 1);
        let pt = ProgramPoint {
            func: FuncId::from_index(0),
            block: f.entry,
            inst: 4,
        };
        let rs = recipes.for_point(pt.encode());
        assert_eq!(
            rs,
            &[(
                Reg::R3,
                Recipe::AluImm {
                    op: AluOp::Add,
                    src: Reg::R2,
                    imm: 8
                }
            )]
        );
        // Applying after slot reload: r2 slot = 1000 → r3 = 1008.
        let mut regs = [0u64; 32];
        regs[Reg::R2.index()] = 1000;
        recipes.apply(pt.encode(), &mut regs);
        assert_eq!(regs[Reg::R3.index()], 1008);
    }

    #[test]
    fn call_in_covered_range_blocks_pruning() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 42);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        b.call(FuncId::from_index(0));
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let (f, _, stats) = prune_single(b.finish());
        assert_eq!(stats.checkpoints_pruned, 0);
        assert_eq!(count_checkpoints(&f), 1);
    }

    #[test]
    fn redefined_register_prunable_with_local_recipes() {
        // r1 = 42; ckpt; boundary; r1 = 43 (redef) → coverage ends at the
        // redef; r1 live-out does not block pruning.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 42);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        b.mov_imm(Reg::R1, 43);
        let next = b.new_block();
        b.jump(next);
        b.switch_to(next);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let (f, recipes, stats) = prune_single(b.finish());
        assert_eq!(stats.checkpoints_pruned, 1);
        assert_eq!(count_checkpoints(&f), 0);
        assert_eq!(recipes.len(), 1);
    }

    #[test]
    fn sp_checkpoints_never_pruned() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::SP, 0x5000);
        b.checkpoint(Reg::SP);
        b.region_boundary();
        b.halt();
        let (f, _, stats) = prune_single(b.finish());
        assert_eq!(stats.checkpoints_pruned, 0);
        assert_eq!(count_checkpoints(&f), 1);
    }
}
