//! Region size extension via loop unrolling (§IV-A "Region Size
//! Extension and Checkpoint Pruning").
//!
//! Placing a region boundary at every store-containing loop header makes
//! each iteration its own region; if the body has only a few stores this
//! creates many tiny regions and many live-out checkpoints. The paper
//! addresses this by:
//!
//! * **classic unrolling** for loops with statically known trip counts
//!   (trip-count knowledge is conveyed via [`lightwsp_ir::program::LoopHint`],
//!   this reproduction's stand-in for LLVM's scalar-evolution analysis), and
//! * **speculative unrolling** for unknown trip counts: the loop body
//!   *and its exit condition* are duplicated, so semantics are preserved
//!   exactly while the header boundary now covers several iterations.
//!
//! Classic unrolling applies to single-block (self-latching) loops;
//! speculative unrolling handles arbitrary (innermost, call-free)
//! natural loops by cloning the whole body subgraph. Both are bounded
//! by the store-count threshold so the enlarged body still forms a
//! legal single region.

use crate::stats::CompileStats;
use crate::CompilerConfig;
use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::dom::DomTree;
use lightwsp_ir::loops::LoopForest;
use lightwsp_ir::{BlockId, Function, Inst};

/// Applies region-size extension to every eligible loop of `func`.
pub fn extend_regions(func: &mut Function, config: &CompilerConfig, stats: &mut CompileStats) {
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);

    // Innermost loops only (no other loop's header inside them);
    // transforms invalidate the forest, so collect headers first.
    let headers: Vec<BlockId> = forest
        .loops
        .iter()
        .filter(|l| {
            forest
                .loops
                .iter()
                .all(|o| o.header == l.header || !l.contains(o.header))
        })
        .map(|l| l.header)
        .collect();

    for header in headers {
        let Some(l) = forest.loop_with_header(header) else {
            continue;
        };
        let blocks = l.blocks.clone();
        let Some(plan) = plan_unroll(func, header, &blocks, config) else {
            continue;
        };
        match plan {
            UnrollPlan::Classic { factor } => {
                classic_unroll(func, header, factor);
                stats.loops_unrolled += 1;
            }
            UnrollPlan::Speculative { factor } => {
                speculative_unroll_subgraph(func, header, &blocks, factor);
                stats.loops_speculatively_unrolled += 1;
            }
        }
    }
}

enum UnrollPlan {
    Classic { factor: u32 },
    Speculative { factor: u32 },
}

/// Decides whether and how to unroll the loop at `header` with body
/// `blocks`.
fn plan_unroll(
    func: &Function,
    header: BlockId,
    blocks: &[BlockId],
    config: &CompilerConfig,
) -> Option<UnrollPlan> {
    // Keep the transform bounded: very large bodies gain little.
    if blocks.len() > 8 {
        return None;
    }
    let mut stores: u32 = 0;
    let mut insts = 0usize;
    for &b in blocks {
        let block = func.block(b);
        insts += block.insts.len() + 1;
        // Calls and sync ops force boundaries inside the loop, defeating
        // the purpose; pre-existing boundaries too.
        if block
            .insts
            .iter()
            .any(|i| i.forces_boundary_before() || matches!(i, Inst::RegionBoundary { .. }))
        {
            return None;
        }
        stores += block.insts.iter().filter(|i| i.is_store_like()).count() as u32;
    }
    if stores == 0 || insts > 200 {
        return None; // store-free loops get no header boundary anyway
    }
    // Keep headroom: unrolled stores + closing boundary + checkpoints.
    let budget = config.store_threshold.saturating_sub(4);
    let max_by_stores = (budget / stores).max(1);
    let cap = config.max_unroll_factor.min(max_by_stores);
    if cap < 2 {
        return None;
    }

    let single_block = blocks.len() == 1;
    let hint = func
        .loop_hints
        .iter()
        .find(|h| h.header == header)
        .and_then(|h| h.trip_count);
    match hint {
        Some(tc) if tc >= 2 && single_block => {
            // Largest factor ≤ cap dividing the trip count; trip counts
            // with no small divisor (primes) fall back to speculative
            // unrolling.
            match (2..=cap).rev().find(|f| tc % f == 0) {
                Some(factor) => Some(UnrollPlan::Classic { factor }),
                None => Some(UnrollPlan::Speculative { factor: cap }),
            }
        }
        _ => Some(UnrollPlan::Speculative { factor: cap }),
    }
}

/// Repeats the body `factor` times inside the header block (legal only
/// when the trip count is a known multiple of `factor`, which
/// [`plan_unroll`] guarantees).
fn classic_unroll(func: &mut Function, header: BlockId, factor: u32) {
    let body: Vec<Inst> = func.block(header).insts.clone();
    let block = func.block_mut(header);
    for _ in 1..factor {
        block.insts.extend(body.iter().cloned());
    }
    // Keep the hint consistent for any later pass.
    if let Some(h) = func.loop_hints.iter_mut().find(|h| h.header == header) {
        if let Some(tc) = h.trip_count.as_mut() {
            *tc /= factor;
        }
    }
}

/// Duplicates the whole loop-body subgraph *including every exit test*
/// `factor - 1` times, chaining the copies so the loop's semantics are
/// preserved exactly while the back edge to the original header is
/// taken once per `factor` iterations (the paper's speculative
/// unrolling generalised to multi-block bodies).
fn speculative_unroll_subgraph(
    func: &mut Function,
    header: BlockId,
    blocks: &[BlockId],
    factor: u32,
) {
    if factor < 2 {
        return;
    }
    // Copies are built front-to-back; back edges are patched afterwards
    // once every copy's header id is known.
    let mut copy_headers: Vec<BlockId> = Vec::with_capacity(factor as usize - 1);
    let mut copy_maps: Vec<lightwsp_ir::fxhash::FxHashMap<BlockId, BlockId>> = Vec::new();

    for _ in 1..factor {
        let mut map = lightwsp_ir::fxhash::FxHashMap::default();
        for &b in blocks {
            let cloned = func.block(b).clone();
            let nb = func.add_block(cloned);
            map.insert(b, nb);
        }
        // Intra-copy edges: targets inside the loop map into the copy;
        // back edges (→ header) are patched below; exits unchanged.
        for &b in blocks {
            let nb = map[&b];
            let map_ref = &map;
            func.block_mut(nb).term.map_targets(|t| {
                if t == header {
                    t // patched below
                } else {
                    map_ref.get(&t).copied().unwrap_or(t)
                }
            });
        }
        copy_headers.push(map[&header]);
        copy_maps.push(map);
    }

    // Chain the back edges: original body → copy 1's header; copy i →
    // copy i+1's header; last copy → original header.
    for (i, map) in copy_maps.iter().enumerate() {
        let next_header = if i + 1 < copy_headers.len() {
            copy_headers[i + 1]
        } else {
            header
        };
        for &b in blocks {
            let nb = map[&b];
            func.block_mut(nb)
                .term
                .map_targets(|t| if t == header { next_header } else { t });
        }
    }
    let first_copy = copy_headers[0];
    for &b in blocks {
        func.block_mut(b)
            .term
            .map_targets(|t| if t == header { first_copy } else { t });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::inst::{AluOp, Cond};
    use lightwsp_ir::interp::{Interp, Memory};
    use lightwsp_ir::{layout, Program, Reg};

    /// sum loop: for i in 0..tc { heap[i] = i; }
    fn make_loop(tc: i64, hint: bool) -> Program {
        let mut b = FuncBuilder::new("loop");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        let header = b.new_block();
        let exit = b.new_block();
        if hint {
            b.hint_trip_count(header, tc as u32);
        }
        b.jump(header);
        b.switch_to(header);
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R2, 8);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, tc, header, exit);
        b.switch_to(exit);
        b.halt();
        Program::from_single(b.finish())
    }

    fn final_mem(p: &Program) -> Memory {
        let mut mem = Memory::new();
        let mut t = Interp::new(p, 0);
        t.run(p, &mut mem, 100_000);
        assert!(t.finished());
        mem
    }

    #[test]
    fn classic_unroll_preserves_semantics() {
        let p = make_loop(12, true);
        let golden = final_mem(&p);
        let mut unrolled = p.clone();
        let mut stats = CompileStats::default();
        extend_regions(
            &mut unrolled.funcs[0],
            &CompilerConfig::default(),
            &mut stats,
        );
        assert_eq!(stats.loops_unrolled, 1);
        assert!(golden.same_contents(&final_mem(&unrolled)));
        // Body actually duplicated.
        let header_len = unrolled.funcs[0]
            .iter_blocks()
            .map(|(_, b)| b.insts.len())
            .max()
            .unwrap();
        assert!(header_len >= 6, "body should be at least doubled");
    }

    #[test]
    fn speculative_unroll_preserves_semantics_any_trip_count() {
        for tc in [1, 2, 3, 5, 7, 13] {
            let p = make_loop(tc, false);
            let golden = final_mem(&p);
            let mut unrolled = p.clone();
            let mut stats = CompileStats::default();
            extend_regions(
                &mut unrolled.funcs[0],
                &CompilerConfig::default(),
                &mut stats,
            );
            assert_eq!(stats.loops_speculatively_unrolled, 1, "tc={tc}");
            let got = final_mem(&unrolled);
            if let Some((a, x, y)) = golden.first_difference(&got) {
                panic!("tc={tc}: mismatch at {a:#x}: golden {x} vs unrolled {y}");
            }
        }
    }

    #[test]
    fn loops_with_calls_not_unrolled() {
        let mut b = FuncBuilder::new("callloop");
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.store(Reg::R1, Reg::R2, 0);
        b.call(lightwsp_ir::FuncId::from_index(0));
        b.branch_imm(Cond::Eq, Reg::R1, 0, exit, header);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        extend_regions(&mut f, &CompilerConfig::default(), &mut stats);
        assert_eq!(stats.loops_unrolled + stats.loops_speculatively_unrolled, 0);
    }

    #[test]
    fn store_free_loops_not_unrolled() {
        let mut b = FuncBuilder::new("nostore");
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 100, header, exit);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        extend_regions(&mut f, &CompilerConfig::default(), &mut stats);
        assert_eq!(stats.loops_unrolled + stats.loops_speculatively_unrolled, 0);
    }

    #[test]
    fn unroll_factor_respects_store_budget() {
        // 10 stores per iteration, threshold 32 → budget 28 → factor 2.
        let mut b = FuncBuilder::new("fat");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        for k in 0..10 {
            b.store(Reg::R1, Reg::R2, k * 8);
        }
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 8, header, exit);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let before_blocks = f.blocks.len();
        let mut stats = CompileStats::default();
        extend_regions(&mut f, &CompilerConfig::default(), &mut stats);
        assert_eq!(stats.loops_speculatively_unrolled, 1);
        assert_eq!(
            f.blocks.len(),
            before_blocks + 1,
            "factor 2 → one extra block"
        );
    }
}
