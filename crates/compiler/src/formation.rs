//! Region formation: resolving the partitioning/checkpointing circular
//! dependence and combining undersized regions (§IV-A "Region
//! Formation").
//!
//! Checkpoint stores count against the in-region store threshold, but
//! where boundaries go determines which checkpoints exist. The driver
//! breaks the cycle exactly as the paper does: insert checkpoints for the
//! current boundaries, re-enforce the threshold (which may add
//! boundaries), recompute checkpoints, and repeat until no region
//! exceeds the threshold.
//!
//! Afterwards, a combining pass walks the CFG in topological order and
//! removes removable ([`BoundaryKind::Threshold`]) boundaries whenever
//! the merged region still fits under the threshold *after* checkpoint
//! recomputation — merging eliminates checkpoints whose registers are
//! redefined by the absorbed region, which is where the paper's
//! checkpoint savings come from.

use crate::boundaries::{enforce_threshold, split_at_boundaries};
use crate::checkpoint::{insert_checkpoints, remove_non_structural_checkpoints};
use crate::stats::CompileStats;
use crate::verify;
use crate::CompilerConfig;
use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::inst::BoundaryKind;
use lightwsp_ir::{BlockId, Function, Inst};

/// Maximum formation rounds before declaring a compiler bug.
const MAX_ROUNDS: usize = 64;

/// Runs the formation fixpoint plus the combining pass on one function.
///
/// When the threshold is smaller than a region's mandatory footprint
/// (its live-out checkpoints plus one data store), splitting can never
/// converge — every new boundary adds more live-out checkpoints than it
/// removes stores. The paper encounters the same corner ("the guarantee
/// of zero WPQ overflow needs to be relaxed", §III-C/§IV-D) and relies
/// on the undo-logged overflow fallback; accordingly, after
/// `MAX_ROUNDS` rounds the formation accepts the residual oversized regions
/// and records the relaxation in
/// [`CompileStats::threshold_relaxations`](crate::stats::CompileStats::threshold_relaxations).
pub fn form_regions(func: &mut Function, config: &CompilerConfig, stats: &mut CompileStats) {
    let mut converged = false;
    for _ in 0..MAX_ROUNDS {
        remove_non_structural_checkpoints(func);
        insert_checkpoints(func, stats);
        let changed = enforce_threshold(func, config.store_threshold, stats);
        if !changed {
            converged = true;
            break;
        }
        split_at_boundaries(func);
    }
    if !converged {
        stats.threshold_relaxations += 1;
    }

    combine_regions(func, config, stats);
    split_at_boundaries(func);
}

/// Attempts to remove each `Threshold` boundary (in topological order of
/// its block); a removal is kept only if the function still satisfies the
/// store-threshold invariant after checkpoint recomputation.
fn combine_regions(func: &mut Function, config: &CompilerConfig, stats: &mut CompileStats) {
    let cfg = Cfg::compute(func);
    let order: Vec<BlockId> = cfg.reverse_post_order().to_vec();
    for b in order {
        while let Some(pos) = removable_boundary_pos(func, b) {
            let mut candidate = func.clone();
            candidate.block_mut(b).insts.remove(pos);
            remove_non_structural_checkpoints(&mut candidate);
            let mut scratch = CompileStats::default();
            insert_checkpoints(&mut candidate, &mut scratch);
            if verify::check_function_threshold(&candidate, config.store_threshold).is_ok() {
                *func = candidate;
                stats.boundaries_combined += 1;
                // Loop: there may be another removable boundary in b.
            } else {
                break;
            }
        }
    }
    // The kept function has stale checkpoints if the last candidate was
    // rejected; recompute one final time for a clean result.
    remove_non_structural_checkpoints(func);
    insert_checkpoints(func, stats);
}

/// Index of the first `Threshold` boundary in `b`, if any.
fn removable_boundary_pos(func: &Function, b: BlockId) -> Option<usize> {
    func.block(b).insts.iter().position(|i| {
        matches!(
            i,
            Inst::RegionBoundary {
                kind: BoundaryKind::Threshold
            }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_store_threshold;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::{Program, Reg};

    fn boundary_count(func: &Function) -> usize {
        func.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::RegionBoundary { .. }))
            .count()
    }

    #[test]
    fn formation_converges_and_holds_invariant() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0x4000_0000);
        for i in 0..64 {
            b.store(Reg::R1, Reg::R1, i * 8);
        }
        b.region_boundary();
        b.halt();
        let mut f = b.finish();
        let cfg = CompilerConfig::with_threshold(8);
        let mut stats = CompileStats::default();
        form_regions(&mut f, &cfg, &mut stats);
        let p = Program::from_single(f);
        check_store_threshold(&p, 8).unwrap();
    }

    #[test]
    fn combining_removes_superfluous_boundaries() {
        // Two tiny half-regions separated by a hand-inserted threshold
        // boundary: combining should merge them under a generous
        // threshold.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0x4000_0000);
        b.store(Reg::R1, Reg::R1, 0);
        b.halt();
        let mut f = b.finish();
        // Plant a removable boundary by hand.
        f.block_mut(f.entry).insts.insert(
            1,
            Inst::RegionBoundary {
                kind: BoundaryKind::Threshold,
            },
        );
        let before = boundary_count(&f);
        let cfg = CompilerConfig::with_threshold(32);
        let mut stats = CompileStats::default();
        form_regions(&mut f, &cfg, &mut stats);
        assert!(
            boundary_count(&f) < before,
            "threshold boundary merged away"
        );
        assert!(stats.boundaries_combined >= 1);
    }

    #[test]
    fn combining_never_violates_threshold() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0x4000_0000);
        for i in 0..30 {
            b.store(Reg::R1, Reg::R1, i * 8);
        }
        b.halt();
        let mut f = b.finish();
        let cfg = CompilerConfig::with_threshold(8);
        let mut stats = CompileStats::default();
        // Ensure some threshold boundaries exist first.
        enforce_threshold(&mut f, 8, &mut stats);
        form_regions(&mut f, &cfg, &mut stats);
        let p = Program::from_single(f);
        check_store_threshold(&p, 8).unwrap();
    }
}
