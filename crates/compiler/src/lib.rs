//! # lightwsp-compiler — region partitioning for whole-system persistence
//!
//! The LightWSP compiler half of the co-design (§III-C, §IV-A of the
//! paper): it partitions a program into a series of *recoverable regions*
//! whose boundaries serve as power-failure recovery points, and
//! checkpoints each region's live-out registers into PM-resident storage.
//!
//! The pass pipeline mirrors Fig. 3 of the paper (all passes run post
//! register allocation, on the machine IR of [`lightwsp_ir`]):
//!
//! 1. **Region size extension** ([`unroll`]) — loops with known trip
//!    counts are unrolled, and loops with unknown trip counts are
//!    *speculatively* unrolled (body + exit test duplicated), within the
//!    store-count threshold, to avoid many tiny per-iteration regions.
//! 2. **Initial region boundary insertion** ([`boundaries`]) — boundaries
//!    at function entries/exits, call sites, store-containing loop
//!    headers, synchronisation instructions (§III-D), plus path-sensitive
//!    threshold splits so no region can ever exceed the store threshold.
//! 3. **Block splitting** — blocks are split after each boundary so
//!    regions always start at the beginning of a basic block, simplifying
//!    live-out computation (§IV-A "Checkpoint Store Insertion").
//! 4. **Checkpoint store insertion** ([`checkpoint`]) — liveness analysis
//!    finds registers whose values are live into some region boundary;
//!    each such value is checkpointed right after its last update point.
//! 5. **Region formation** ([`formation`]) — checkpoint stores themselves
//!    count against the threshold, creating the circular dependence the
//!    paper describes; the formation driver re-splits and re-checkpoints
//!    to a fixpoint, and merges adjacent undersized regions separated by
//!    removable (threshold) boundaries.
//! 6. **Checkpoint pruning** ([`prune`]) — checkpoints whose values the
//!    recovery runtime can reconstruct from other checkpointed values are
//!    removed and replaced by [`prune::Recipe`]s.
//!
//! The top-level entry point is [`instrument`]:
//!
//! ```
//! use lightwsp_compiler::{instrument, CompilerConfig};
//! use lightwsp_ir::builder::FuncBuilder;
//! use lightwsp_ir::{Program, Reg};
//!
//! let mut b = FuncBuilder::new("main");
//! b.mov_imm(Reg::R1, 7);
//! b.mov_imm(Reg::R2, 0x4000_0000);
//! b.store(Reg::R1, Reg::R2, 0);
//! b.halt();
//! let program = Program::from_single(b.finish());
//!
//! let compiled = instrument(&program, &CompilerConfig::default());
//! assert!(compiled.stats.boundaries_inserted > 0);
//! ```

#![warn(missing_docs)]

pub mod boundaries;
pub mod checkpoint;
pub mod dce;
pub mod formation;
pub mod prune;
pub mod regions;
pub mod stats;
pub mod unroll;
pub mod verify;

use lightwsp_ir::Program;
use prune::RecoveryRecipes;
use stats::CompileStats;

/// Configuration of the LightWSP compiler.
///
/// The defaults match the paper's default evaluation configuration: a
/// 64-entry WPQ with the in-region store threshold set to half the WPQ
/// size (§IV-A "Threshold Determination").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompilerConfig {
    /// Maximum store-like instructions allowed on any path through a
    /// region. Paper default: half the WPQ size, i.e. 32.
    pub store_threshold: u32,
    /// Enable the region-size-extension unrolling pass.
    pub unroll: bool,
    /// Maximum unroll factor (the paper reports ~3× longer regions).
    pub max_unroll_factor: u32,
    /// Enable checkpoint pruning.
    pub prune_checkpoints: bool,
}

impl Default for CompilerConfig {
    fn default() -> CompilerConfig {
        CompilerConfig {
            store_threshold: 32,
            unroll: true,
            max_unroll_factor: 6,
            prune_checkpoints: true,
        }
    }
}

impl CompilerConfig {
    /// A config with the given threshold and all optimisations enabled.
    pub fn with_threshold(store_threshold: u32) -> CompilerConfig {
        CompilerConfig {
            store_threshold,
            ..CompilerConfig::default()
        }
    }
}

/// The output of [`instrument`]: the instrumented program plus recovery
/// metadata and compile statistics.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The program with region boundaries and checkpoint stores inserted.
    pub program: Program,
    /// Reconstruction recipes for pruned checkpoints, consumed by the
    /// recovery runtime.
    pub recipes: RecoveryRecipes,
    /// Static compile statistics.
    pub stats: CompileStats,
}

/// Runs the full LightWSP pass pipeline over `program`.
///
/// The returned program upholds the central invariant that the simulator
/// relies on for failure atomicity (§III-C): **no path between two
/// consecutive region boundaries contains more than
/// `config.store_threshold` store-like instructions**, so a region's
/// stores can never overflow the WPQ. [`verify::check_store_threshold`]
/// re-checks the invariant and is used by the property-based tests.
/// The one exception mirrors §IV-D: when the threshold is smaller than a
/// region's mandatory live-out-checkpoint footprint, formation relaxes
/// (see [`stats::CompileStats::threshold_relaxations`]) and the
/// hardware's undo-logged overflow fallback covers the residue.
///
/// # Panics
///
/// Panics if `config.store_threshold < 4`: below that, a single call
/// (boundary + stack push + entry boundary) cannot fit in a region.
pub fn instrument(program: &Program, config: &CompilerConfig) -> Compiled {
    assert!(
        config.store_threshold >= 4,
        "store threshold too small to fit a call"
    );
    let mut program = program.clone();
    let mut stats = CompileStats::default();

    if config.unroll {
        for func in &mut program.funcs {
            unroll::extend_regions(func, config, &mut stats);
        }
    }

    for func in &mut program.funcs {
        boundaries::insert_initial_boundaries(func, config, &mut stats);
        boundaries::split_at_boundaries(func);
        formation::form_regions(func, config, &mut stats);
    }

    let mut recipes = RecoveryRecipes::default();
    if config.prune_checkpoints {
        for (fid, func) in program.funcs.iter_mut().enumerate() {
            prune::prune_checkpoints(
                lightwsp_ir::FuncId::from_index(fid),
                func,
                &mut recipes,
                &mut stats,
            );
        }
    }

    stats.finalize(&program);
    Compiled {
        program,
        recipes,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::{Program, Reg};

    #[test]
    fn default_config_matches_paper() {
        let c = CompilerConfig::default();
        assert_eq!(c.store_threshold, 32, "half of the 64-entry WPQ");
        assert!(c.unroll);
        assert!(c.prune_checkpoints);
    }

    #[test]
    #[should_panic(expected = "store threshold too small")]
    fn tiny_threshold_rejected() {
        let mut b = FuncBuilder::new("t");
        b.halt();
        let p = Program::from_single(b.finish());
        let _ = instrument(&p, &CompilerConfig::with_threshold(2));
    }

    #[test]
    fn instrument_upholds_threshold_invariant() {
        let mut b = FuncBuilder::new("many_stores");
        b.mov_imm(Reg::R1, 0x4000_0000);
        for i in 0..100 {
            b.store(Reg::R1, Reg::R1, i * 8);
        }
        b.halt();
        let p = Program::from_single(b.finish());
        let out = instrument(&p, &CompilerConfig::with_threshold(8));
        verify::check_store_threshold(&out.program, 8).unwrap();
        assert!(out.stats.boundaries_inserted >= 100 / 8);
    }
}
