//! Initial region-boundary insertion and the store-count threshold
//! analysis (§III-C, §IV-A).
//!
//! Boundaries are placed at:
//!
//! * **function entry** (after the structural `checkpoint sp` prologue,
//!   so the stack pointer pushed by the caller is saved with the caller's
//!   region — see the crate docs for the SP protocol),
//! * **function exits** (immediately before `ret`/`halt` terminators),
//! * **call sites** (immediately before each `call`), followed by a
//!   structural `checkpoint sp` after the call to cover the `ret`'s SP
//!   update,
//! * **loop headers** of loops that contain stores (one region per
//!   iteration, later widened by unrolling), and
//! * **synchronisation instructions** (fences, atomics, lock ops), which
//!   establish the happens-before order multi-threaded persists must
//!   follow (§III-D).
//!
//! On top of those, [`enforce_threshold`] runs a forward max-store-count
//! dataflow over the CFG and inserts [`BoundaryKind::Threshold`]
//! boundaries wherever the count could otherwise exceed the configured
//! threshold on *any* path, which is the WPQ-overflow guarantee of
//! §III-C. The count is conservative: every WPQ-occupying instruction
//! (data stores, atomics, checkpoint stores, call pushes, and the
//! region-ending boundary's own PC store) takes one slot.

use crate::stats::CompileStats;
use crate::CompilerConfig;
use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::dom::DomTree;
use lightwsp_ir::inst::BoundaryKind;
use lightwsp_ir::loops::LoopForest;
use lightwsp_ir::program::Block;
use lightwsp_ir::{BlockId, Function, Inst, Reg, Terminator};

/// Inserts the structural boundaries (entry/exit/call/loop-header/sync)
/// into `func` and the first round of threshold boundaries.
pub fn insert_initial_boundaries(
    func: &mut Function,
    config: &CompilerConfig,
    stats: &mut CompileStats,
) {
    insert_sync_and_call_boundaries(func, stats);
    insert_entry_exit_boundaries(func, stats);
    insert_loop_header_boundaries(func, stats);
    enforce_threshold(func, config.store_threshold, stats);
}

/// Boundary before every call site and synchronisation instruction, plus
/// the structural `checkpoint sp` after each call (covering the matching
/// `ret`'s SP update; see module docs).
fn insert_sync_and_call_boundaries(func: &mut Function, stats: &mut CompileStats) {
    for block in &mut func.blocks {
        let mut out: Vec<Inst> = Vec::with_capacity(block.insts.len() + 4);
        for inst in block.insts.drain(..) {
            if inst.forces_boundary_before() {
                let kind = if matches!(inst, Inst::Call { .. }) {
                    BoundaryKind::CallSite
                } else {
                    BoundaryKind::Sync
                };
                out.push(Inst::RegionBoundary { kind });
                stats.record_boundary(kind);
            }
            let was_call = matches!(inst, Inst::Call { .. });
            out.push(inst);
            if was_call {
                out.push(Inst::CheckpointStore { reg: Reg::SP });
                stats.checkpoints_inserted += 1;
            }
        }
        block.insts = out;
    }
}

/// `checkpoint sp` + entry boundary at the top of the function; exit
/// boundary before each `ret`/`halt`.
fn insert_entry_exit_boundaries(func: &mut Function, stats: &mut CompileStats) {
    let entry = func.entry;
    let eb = func.block_mut(entry);
    eb.insts.insert(
        0,
        Inst::RegionBoundary {
            kind: BoundaryKind::FuncEntry,
        },
    );
    eb.insts.insert(0, Inst::CheckpointStore { reg: Reg::SP });
    stats.record_boundary(BoundaryKind::FuncEntry);
    stats.checkpoints_inserted += 1;

    for block in &mut func.blocks {
        if matches!(block.term, Terminator::Ret | Terminator::Halt) {
            block.insts.push(Inst::RegionBoundary {
                kind: BoundaryKind::FuncExit,
            });
            stats.record_boundary(BoundaryKind::FuncExit);
        }
    }
}

/// Boundary at the header of every loop that contains at least one
/// store-like instruction ("unless it has no stores", §IV-A).
fn insert_loop_header_boundaries(func: &mut Function, stats: &mut CompileStats) {
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);
    let mut headers: Vec<BlockId> = Vec::new();
    for l in &forest.loops {
        let has_store = l
            .blocks
            .iter()
            .any(|&b| func.block(b).insts.iter().any(Inst::is_store_like));
        if has_store {
            headers.push(l.header);
        }
    }
    for h in headers {
        let block = func.block_mut(h);
        // Avoid doubling up if a boundary is already first (e.g. the
        // function entry block is also a loop header).
        if !matches!(block.insts.first(), Some(Inst::RegionBoundary { .. })) {
            block.insts.insert(
                0,
                Inst::RegionBoundary {
                    kind: BoundaryKind::LoopHeader,
                },
            );
            stats.record_boundary(BoundaryKind::LoopHeader);
        }
    }
}

/// Upper bound used to detect a diverging count (a store-carrying cycle
/// with no boundary); such cycles get a boundary at the offending block.
const DIVERGE_CAP: u64 = 1 << 20;

/// Forward max-store-count dataflow: `in(b) = max over preds of out(p)`,
/// with the count resetting to zero after each boundary. Returns one
/// count per block (entry of the block), or the block at which the count
/// diverged.
fn max_count_fixpoint(func: &Function, cfg: &Cfg) -> Result<Vec<u64>, BlockId> {
    let n = func.blocks.len();
    let mut cin = vec![0u64; n];
    let mut cout = vec![0u64; n];
    // Seed outs.
    for &b in cfg.reverse_post_order() {
        cout[b.index()] = walk_count(func.block(b), cin[b.index()]);
    }
    for _round in 0..(2 * n + 8) {
        let mut changed = false;
        for &b in cfg.reverse_post_order() {
            let mut max_in = 0;
            for &p in cfg.preds(b) {
                max_in = max_in.max(cout[p.index()]);
            }
            if max_in != cin[b.index()] {
                cin[b.index()] = max_in;
                changed = true;
            }
            let out = walk_count(func.block(b), max_in);
            if out != cout[b.index()] {
                if out > DIVERGE_CAP {
                    return Err(b);
                }
                cout[b.index()] = out;
                changed = true;
            }
        }
        if !changed {
            return Ok(cin);
        }
    }
    // Still changing after the bound: find a block whose count grew.
    let worst = cfg
        .reverse_post_order()
        .iter()
        .copied()
        .max_by_key(|b| cout[b.index()])
        .expect("non-empty cfg");
    Err(worst)
}

/// Applies the in-block transfer of the count dataflow.
fn walk_count(block: &Block, mut count: u64) -> u64 {
    for inst in &block.insts {
        if let Inst::RegionBoundary { .. } = inst {
            count = 0;
        } else if inst.is_store_like() {
            count += 1;
        }
    }
    count
}

/// Inserts [`BoundaryKind::Threshold`] boundaries so that no path through
/// a region carries more than `threshold` store-like instructions
/// (including the region-ending boundary's own PC store). Returns `true`
/// if any boundary was inserted.
pub fn enforce_threshold(func: &mut Function, threshold: u32, stats: &mut CompileStats) -> bool {
    let threshold = threshold as u64;
    let mut any = false;
    // Boundaries inserted with stale in-counts are conservative, but the
    // reset they introduce can reveal further violations downstream only
    // through *smaller* counts, so a few rounds settle it.
    for _round in 0..64 {
        let cfg = Cfg::compute(func);
        let cin = match max_count_fixpoint(func, &cfg) {
            Ok(cin) => cin,
            Err(b) => {
                // Store-carrying cycle without a boundary: break it.
                func.block_mut(b).insts.insert(
                    0,
                    Inst::RegionBoundary {
                        kind: BoundaryKind::Threshold,
                    },
                );
                stats.record_boundary(BoundaryKind::Threshold);
                any = true;
                continue;
            }
        };
        let mut inserted = false;
        for (bi, &count_in) in cin.iter().enumerate() {
            let b = BlockId::from_index(bi);
            if !cfg.is_reachable(b) {
                continue;
            }
            let mut count = count_in;
            let block = func.block_mut(b);
            let mut i = 0;
            while i < block.insts.len() {
                match &block.insts[i] {
                    Inst::RegionBoundary { .. } => {
                        // The boundary's PC store belongs to the region it
                        // ends; it fits because insertion below reserves a
                        // slot for it.
                        count = 0;
                    }
                    inst if inst.is_store_like() => {
                        // +1 for this store, +1 reserved for the eventual
                        // region-ending boundary store.
                        if count + 2 > threshold {
                            block.insts.insert(
                                i,
                                Inst::RegionBoundary {
                                    kind: BoundaryKind::Threshold,
                                },
                            );
                            stats.record_boundary(BoundaryKind::Threshold);
                            inserted = true;
                            count = 0;
                            // Re-examine the same store in the new region.
                            i += 1;
                            continue;
                        }
                        count += 1;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        if !inserted {
            return any;
        }
        any = true;
    }
    any
}

/// Splits blocks so that every region boundary is the final instruction
/// of its block ("regions always start at the beginning of basic
/// blocks", §IV-A). Idempotent.
pub fn split_at_boundaries(func: &mut Function) {
    let mut bi = 0;
    while bi < func.blocks.len() {
        let b = BlockId::from_index(bi);
        let split_pos = {
            let block = func.block(b);
            block
                .insts
                .iter()
                .position(|i| matches!(i, Inst::RegionBoundary { .. }))
                .filter(|&p| p + 1 < block.insts.len())
        };
        if let Some(p) = split_pos {
            let (tail, term) = {
                let block = func.block_mut(b);
                let tail: Vec<Inst> = block.insts.split_off(p + 1);
                let term = block.term.clone();
                (tail, term)
            };
            let new_id = func.add_block(Block { insts: tail, term });
            func.block_mut(b).term = Terminator::Jump { target: new_id };
            // Loop hints pointing at `b` keep pointing at the header
            // (the boundary stays with the original block).
        }
        // Re-check the same block: there may have been several
        // boundaries; after a split the current block has exactly one,
        // at the end, so this advances.
        if split_pos.is_none() {
            bi += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_store_threshold;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::inst::Cond;
    use lightwsp_ir::{FuncId, Program};

    fn count_boundaries(func: &Function, kind: BoundaryKind) -> usize {
        func.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::RegionBoundary { kind: k } if *k == kind))
            .count()
    }

    #[test]
    fn entry_and_exit_boundaries() {
        let mut b = FuncBuilder::new("f");
        b.nop();
        b.ret();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_entry_exit_boundaries(&mut f, &mut stats);
        assert_eq!(count_boundaries(&f, BoundaryKind::FuncEntry), 1);
        assert_eq!(count_boundaries(&f, BoundaryKind::FuncExit), 1);
        // Prologue order: checkpoint sp, then the entry boundary.
        assert!(matches!(
            f.block(f.entry).insts[0],
            Inst::CheckpointStore { reg: Reg::SP }
        ));
        assert!(matches!(
            f.block(f.entry).insts[1],
            Inst::RegionBoundary {
                kind: BoundaryKind::FuncEntry
            }
        ));
    }

    #[test]
    fn call_gets_boundary_and_sp_checkpoint() {
        let mut b = FuncBuilder::new("f");
        b.call(FuncId::from_index(1));
        b.nop();
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_sync_and_call_boundaries(&mut f, &mut stats);
        let insts = &f.block(f.entry).insts;
        assert!(matches!(
            insts[0],
            Inst::RegionBoundary {
                kind: BoundaryKind::CallSite
            }
        ));
        assert!(matches!(insts[1], Inst::Call { .. }));
        assert!(matches!(insts[2], Inst::CheckpointStore { reg: Reg::SP }));
    }

    #[test]
    fn sync_instructions_get_boundaries() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0x3000_0000);
        b.lock_acquire(Reg::R1);
        b.fence();
        b.lock_release(Reg::R1);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_sync_and_call_boundaries(&mut f, &mut stats);
        assert_eq!(count_boundaries(&f, BoundaryKind::Sync), 3);
    }

    #[test]
    fn store_loop_header_gets_boundary_storeless_does_not() {
        // Loop A stores, loop B does not.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, 0x4000_0000);
        let ha = b.new_block();
        let hb = b.new_block();
        let exit = b.new_block();
        b.jump(ha);
        b.switch_to(ha);
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(lightwsp_ir::AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 10, ha, hb);
        b.switch_to(hb);
        b.alu_imm(lightwsp_ir::AluOp::Add, Reg::R3, Reg::R3, 1);
        b.branch_imm(Cond::Ne, Reg::R3, 10, hb, exit);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_loop_header_boundaries(&mut f, &mut stats);
        assert!(matches!(
            f.block(ha).insts[0],
            Inst::RegionBoundary {
                kind: BoundaryKind::LoopHeader
            }
        ));
        assert!(!matches!(
            f.block(hb).insts.first(),
            Some(Inst::RegionBoundary { .. })
        ));
    }

    #[test]
    fn threshold_splits_straight_line_stores() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0x4000_0000);
        for i in 0..20 {
            b.store(Reg::R1, Reg::R1, i * 8);
        }
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        let changed = enforce_threshold(&mut f, 8, &mut stats);
        assert!(changed);
        let p = Program::from_single(f);
        check_store_threshold(&p, 8).unwrap();
    }

    #[test]
    fn threshold_respects_existing_boundaries() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0x4000_0000);
        for i in 0..4 {
            b.store(Reg::R1, Reg::R1, i * 8);
        }
        b.region_boundary();
        for i in 0..4 {
            b.store(Reg::R1, Reg::R1, 32 + i * 8);
        }
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        let changed = enforce_threshold(&mut f, 8, &mut stats);
        assert!(!changed, "both halves already fit");
    }

    #[test]
    fn threshold_handles_store_cycle_without_header_boundary() {
        // A self-loop with stores and no pre-existing boundary: the count
        // would diverge, so the pass must break the cycle itself.
        let mut b = FuncBuilder::new("f");
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.store(Reg::R1, Reg::R2, 0);
        b.branch_imm(Cond::Eq, Reg::R1, 0, exit, l);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        enforce_threshold(&mut f, 8, &mut stats);
        let p = Program::from_single(f);
        check_store_threshold(&p, 8).unwrap();
    }

    #[test]
    fn max_path_not_shortest_path_governs() {
        // Diamond where one arm has 6 stores and the other none; with a
        // threshold of 8 and 4 more stores after the merge, the long arm
        // forces a split even though the short arm would fit.
        let mut b = FuncBuilder::new("f");
        let heavy = b.new_block();
        let light = b.new_block();
        let merge = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R9, 0, heavy, light);
        b.switch_to(heavy);
        for i in 0..6 {
            b.store(Reg::R1, Reg::R2, i * 8);
        }
        b.jump(merge);
        b.switch_to(light);
        b.jump(merge);
        b.switch_to(merge);
        for i in 0..4 {
            b.store(Reg::R1, Reg::R2, 100 + i * 8);
        }
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        let changed = enforce_threshold(&mut f, 8, &mut stats);
        assert!(
            changed,
            "6 + 4 + closing boundary exceeds 8 on the heavy path"
        );
        let p = Program::from_single(f);
        check_store_threshold(&p, 8).unwrap();
    }

    #[test]
    fn split_at_boundaries_moves_boundary_to_block_end() {
        let mut b = FuncBuilder::new("f");
        b.nop();
        b.region_boundary();
        b.nop();
        b.region_boundary();
        b.nop();
        b.halt();
        let mut f = b.finish();
        split_at_boundaries(&mut f);
        for (_, block) in f.iter_blocks() {
            let n_bdry = block
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::RegionBoundary { .. }))
                .count();
            assert!(n_bdry <= 1);
            if n_bdry == 1 {
                assert!(matches!(
                    block.insts.last(),
                    Some(Inst::RegionBoundary { .. })
                ));
            }
        }
        assert_eq!(f.blocks.len(), 3);
        // Idempotent.
        let before = f.blocks.len();
        split_at_boundaries(&mut f);
        assert_eq!(f.blocks.len(), before);
    }
}
