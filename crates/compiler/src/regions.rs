//! Static region inspection: enumerates the recoverable regions of an
//! instrumented function and summarises their shape (the static
//! counterpart of the dynamic §V-G3 statistics).
//!
//! A *region start* is a program point right after a boundary (or the
//! function entry); its region extends along the CFG to the next
//! boundary on every path. Because regions are path-dependent, a block
//! can belong to several regions; the summary therefore reports, per
//! region start, the **maximum** store count and instruction count over
//! all paths to the region's ends — exactly the quantities the
//! threshold analysis bounds.

use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::fxhash::FxHashMap;
use lightwsp_ir::inst::BoundaryKind;
use lightwsp_ir::program::ProgramPoint;
use lightwsp_ir::{BlockId, FuncId, Function, Inst, Program};

/// Summary of one static region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionSummary {
    /// The region's start (a boundary's recovery point or the entry).
    pub start: ProgramPoint,
    /// Why the region's *opening* boundary exists (`None` for the
    /// function-entry region).
    pub opened_by: Option<BoundaryKind>,
    /// Maximum store-like instructions on any path to a region end
    /// (including the closing boundary's PC store).
    pub max_stores: u32,
    /// Maximum instructions on any path to a region end.
    pub max_insts: u32,
    /// Checkpoint stores inside the region (max over paths).
    pub max_checkpoints: u32,
}

/// Enumerates the static regions of `func`.
///
/// The walk is bounded: each block is visited once per region (regions
/// are acyclic between boundaries — loop headers carrying stores always
/// hold boundaries after instrumentation; a store-free cycle contributes
/// no stores and is cut off at revisit).
pub fn function_regions(fid: FuncId, func: &Function) -> Vec<RegionSummary> {
    let cfg = Cfg::compute(func);
    let mut out = Vec::new();

    // Region starts: function entry + after every boundary.
    let mut starts: Vec<(ProgramPoint, Option<BoundaryKind>)> = vec![(
        ProgramPoint {
            func: fid,
            block: func.entry,
            inst: 0,
        },
        None,
    )];
    for (b, block) in func.iter_blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::RegionBoundary { kind } = inst {
                starts.push((
                    ProgramPoint {
                        func: fid,
                        block: b,
                        inst: (i + 1) as u32,
                    },
                    Some(*kind),
                ));
            }
        }
    }

    for (start, opened_by) in starts {
        let (max_stores, max_insts, max_checkpoints) = walk_region(func, &cfg, start);
        out.push(RegionSummary {
            start,
            opened_by,
            max_stores,
            max_insts,
            max_checkpoints,
        });
    }
    out
}

/// Max-path (stores, insts, checkpoints) from `start` to the region's
/// closing boundaries.
fn walk_region(func: &Function, cfg: &Cfg, start: ProgramPoint) -> (u32, u32, u32) {
    // Memoised DFS over block entries; `tail` handles the partial first
    // block.
    fn block_cost(
        func: &Function,
        cfg: &Cfg,
        b: BlockId,
        from: usize,
        memo: &mut FxHashMap<(usize, usize), (u32, u32, u32)>,
        depth: usize,
    ) -> (u32, u32, u32) {
        if let Some(&c) = memo.get(&(b.index(), from)) {
            return c;
        }
        // Cycle guard (store-free loops): cut off at generous depth.
        if depth > 4 * func.blocks.len() + 8 {
            return (0, 0, 0);
        }
        memo.insert((b.index(), from), (0, 0, 0)); // provisional (cycle cut)
        let block = func.block(b);
        let mut stores = 0u32;
        let mut insts = 0u32;
        let mut ckpts = 0u32;
        for i in from..block.insts.len() {
            let inst = &block.insts[i];
            insts += 1;
            if let Inst::RegionBoundary { .. } = inst {
                stores += 1; // the closing PC store
                let r = (stores, insts, ckpts);
                memo.insert((b.index(), from), r);
                return r;
            }
            if inst.is_store_like() {
                stores += 1;
            }
            if matches!(inst, Inst::CheckpointStore { .. }) {
                ckpts += 1;
            }
        }
        insts += 1; // terminator
        let mut best = (0u32, 0u32, 0u32);
        for &s in cfg.succs(b) {
            let c = block_cost(func, cfg, s, 0, memo, depth + 1);
            best = (best.0.max(c.0), best.1.max(c.1), best.2.max(c.2));
        }
        let r = (stores + best.0, insts + best.1, ckpts + best.2);
        memo.insert((b.index(), from), r);
        r
    }

    let mut memo = FxHashMap::default();
    block_cost(func, cfg, start.block, start.inst as usize, &mut memo, 0)
}

/// Region summaries for every function of `program`.
pub fn program_regions(program: &Program) -> Vec<RegionSummary> {
    program
        .funcs
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| function_regions(FuncId::from_index(fi), f))
        .collect()
}

/// Renders a static-region report with aggregate statistics.
pub fn render_report(program: &Program) -> String {
    let regions = program_regions(program);
    let mut out = String::from("start              opened-by      max-insts  max-stores  ckpts\n");
    for r in &regions {
        out.push_str(&format!(
            "{:<19}{:<15}{:>9}{:>12}{:>7}\n",
            format!("{:?}", r.start),
            r.opened_by
                .map_or("entry".to_string(), |k| format!("{k:?}")),
            r.max_insts,
            r.max_stores,
            r.max_checkpoints
        ));
    }
    let n = regions.len().max(1);
    let avg_st: f64 = regions.iter().map(|r| r.max_stores as f64).sum::<f64>() / n as f64;
    let avg_in: f64 = regions.iter().map(|r| r.max_insts as f64).sum::<f64>() / n as f64;
    let max_st = regions.iter().map(|r| r.max_stores).max().unwrap_or(0);
    out.push_str(&format!(
        "{} static regions; avg max-path {:.1} insts / {:.1} stores; worst region {} stores\n",
        regions.len(),
        avg_in,
        avg_st,
        max_st
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instrument, CompilerConfig};
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::inst::{AluOp, Cond};
    use lightwsp_ir::Reg;

    fn instrumented_loop() -> Program {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, 0x4000_0000);
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 64, l, exit);
        b.switch_to(exit);
        b.halt();
        let p = Program::from_single(b.finish());
        instrument(&p, &CompilerConfig::default()).program
    }

    #[test]
    fn regions_enumerated_and_bounded() {
        let p = instrumented_loop();
        let regions = program_regions(&p);
        assert!(regions.len() >= 3, "entry + loop + exit regions at least");
        for r in &regions {
            assert!(
                r.max_stores <= 32,
                "region at {:?} exceeds the threshold: {}",
                r.start,
                r.max_stores
            );
        }
        // Exactly one region has no opening boundary (the entry region).
        assert_eq!(regions.iter().filter(|r| r.opened_by.is_none()).count(), 1);
    }

    #[test]
    fn report_renders() {
        let p = instrumented_loop();
        let text = render_report(&p);
        assert!(text.contains("static regions"));
        assert!(text.contains("entry"));
        assert!(text.contains("LoopHeader"));
    }

    #[test]
    fn store_free_cycles_terminate() {
        // A store-free loop has no boundary; the walker must not hang.
        let mut b = FuncBuilder::new("spin");
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 1000, l, exit);
        b.switch_to(exit);
        b.halt();
        let p = Program::from_single(b.finish());
        let regions = program_regions(&p);
        assert_eq!(regions.len(), 1);
    }
}
