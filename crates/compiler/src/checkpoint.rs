//! Checkpoint-store insertion (§IV-A "Checkpoint Store Insertion").
//!
//! For every register whose value is live into some region boundary, the
//! pass inserts a [`Inst::CheckpointStore`] *right after the last update
//! point* of that value, so the checkpoint persists together with the
//! region that produced the value. On recovery, reloading every register
//! from its checkpoint slot then yields exactly the live-in state of the
//! resumed region.
//!
//! The analysis is a backward dataflow over "checkpoint-obligation" sets
//! `CB`: at a region boundary, `CB` becomes the set of registers live at
//! that boundary (their current values must be in their slots); walking
//! backward, a definition of `r ∈ CB` discharges the obligation by
//! inserting a checkpoint immediately after the definition and removing
//! `r` from `CB`. Obligations that survive to a block entry propagate to
//! predecessors. Registers never defined inside the function (thread
//! seeds, caller-saved values) are covered by the caller's checkpoints or
//! by the machine's initial checkpoint image.
//!
//! The stack pointer is excluded: its updates (`call`/`ret`) are covered
//! by the structural checkpoints placed in [`crate::boundaries`].

use crate::stats::CompileStats;
use lightwsp_ir::cfg::Cfg;
use lightwsp_ir::liveness::Liveness;
use lightwsp_ir::reg::RegSet;
use lightwsp_ir::{BlockId, Function, Inst, Reg};

/// Removes every checkpoint store except the structural SP checkpoints
/// (function prologues and post-call), so the analysis can re-run from a
/// clean slate during region formation.
pub fn remove_non_structural_checkpoints(func: &mut Function) {
    for block in &mut func.blocks {
        block
            .insts
            .retain(|i| !matches!(i, Inst::CheckpointStore { reg } if !reg.is_sp()));
    }
}

/// Runs the obligation analysis and inserts the checkpoint stores.
/// Returns the number of checkpoints inserted.
pub fn insert_checkpoints(func: &mut Function, stats: &mut CompileStats) -> usize {
    let cfg = Cfg::compute(func);
    let live = Liveness::compute(func, &cfg);
    let n = func.blocks.len();

    // Block-level fixpoint of CB_in (obligations at block entry).
    let mut cb_in = vec![RegSet::new(); n];
    let order: Vec<BlockId> = cfg.reverse_post_order().iter().rev().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut cb_out = RegSet::new();
            for &s in cfg.succs(b) {
                cb_out.union_with(&cb_in[s.index()]);
            }
            let cb = transfer_block(func, &live, b, cb_out, None);
            if cb != cb_in[b.index()] {
                cb_in[b.index()] = cb;
                changed = true;
            }
        }
    }

    // Insertion pass: re-walk each block backward with its final CB_out
    // and record insertion points.
    let mut inserted = 0;
    for bi in 0..n {
        let b = BlockId::from_index(bi);
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut cb_out = RegSet::new();
        for &s in cfg.succs(b) {
            cb_out.union_with(&cb_in[s.index()]);
        }
        let mut sites: Vec<(usize, Reg)> = Vec::new();
        transfer_block(func, &live, b, cb_out, Some(&mut sites));
        // Insert from the back so indices stay valid.
        sites.sort_by_key(|s| std::cmp::Reverse(s.0));
        let block = func.block_mut(b);
        for (idx, reg) in sites {
            block.insts.insert(idx + 1, Inst::CheckpointStore { reg });
            inserted += 1;
        }
    }
    stats.checkpoints_inserted += inserted as u64;
    inserted
}

/// Backward transfer of the obligation set through block `b`. When
/// `sites` is provided, records `(inst_index, reg)` pairs where a
/// checkpoint must be inserted *after* the instruction at `inst_index`.
fn transfer_block(
    func: &Function,
    live: &Liveness,
    b: BlockId,
    cb_out: RegSet,
    mut sites: Option<&mut Vec<(usize, Reg)>>,
) -> RegSet {
    let block = func.block(b);
    let live_after = live.live_after_insts(func, b);
    let mut cb = cb_out;
    for i in (0..block.insts.len()).rev() {
        let inst = &block.insts[i];
        if let Inst::RegionBoundary { .. } = inst {
            // Everything live at the boundary must be in its slot. The
            // boundary's own live-after set is the live set at the
            // boundary point.
            cb = live_after[i];
            cb.remove(Reg::SP);
            continue;
        }
        // A checkpoint store already present satisfies the obligation for
        // its register (it rewrites the slot with the current value).
        if let Inst::CheckpointStore { reg } = inst {
            cb.remove(*reg);
            continue;
        }
        let defs = inst.defs();
        for r in defs.iter() {
            if r.is_sp() {
                continue; // structural SP protocol
            }
            if cb.remove(r) {
                if let Some(sites) = sites.as_deref_mut() {
                    sites.push((i, r));
                }
            }
        }
    }
    cb
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::builder::FuncBuilder;
    use lightwsp_ir::inst::{AluOp, Cond};
    use lightwsp_ir::layout;

    fn checkpoints_of(func: &Function, b: BlockId) -> Vec<(usize, Reg)> {
        func.block(b)
            .insts
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| match inst {
                Inst::CheckpointStore { reg } => Some((i, *reg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn live_value_checkpointed_after_def() {
        // r1 = 7; boundary; [r2] = r1  → r1 live at boundary, needs ckpt
        // right after its def.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 7);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        let n = insert_checkpoints(&mut f, &mut stats);
        assert!(n >= 1);
        let cks = checkpoints_of(&f, f.entry);
        // Checkpoint of r1 placed directly after the mov (index 0).
        assert!(cks.contains(&(1, Reg::R1)), "got {cks:?}");
        // r2 is also live at the boundary (base of the store) but never
        // defined here, so no checkpoint for it.
        assert!(!cks.iter().any(|&(_, r)| r == Reg::R2));
    }

    #[test]
    fn dead_value_not_checkpointed() {
        // r1 dead at the boundary (redefined after it before use).
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 7);
        b.region_boundary();
        b.mov_imm(Reg::R1, 8);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_checkpoints(&mut f, &mut stats);
        let cks = checkpoints_of(&f, f.entry);
        assert!(
            !cks.iter().any(|&(i, r)| r == Reg::R1 && i == 1),
            "dead def of r1 must not be checkpointed: {cks:?}"
        );
    }

    #[test]
    fn obligation_propagates_across_blocks() {
        // def in entry block, boundary in a later block.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R5, 11);
        let mid = b.new_block();
        b.jump(mid);
        b.switch_to(mid);
        b.region_boundary();
        b.store(Reg::R5, Reg::R6, 0);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_checkpoints(&mut f, &mut stats);
        let cks = checkpoints_of(&f, f.entry);
        assert!(cks.contains(&(1, Reg::R5)), "{cks:?}");
    }

    #[test]
    fn loop_carried_register_checkpointed_each_iteration() {
        // header has the boundary; r1 updated in the body and live across
        // the back edge → checkpoint after the update, inside the loop.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 10, header, exit);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_checkpoints(&mut f, &mut stats);
        let cks = checkpoints_of(&f, header);
        let add_idx = f
            .block(header)
            .insts
            .iter()
            .position(|i| matches!(i, Inst::AluImm { .. }))
            .unwrap();
        assert!(
            cks.iter().any(|&(i, r)| r == Reg::R1 && i == add_idx + 1),
            "r1 checkpoint after its in-loop update: {cks:?}"
        );
    }

    #[test]
    fn sp_handled_structurally_not_by_analysis() {
        let mut b = FuncBuilder::new("f");
        b.region_boundary();
        b.store(Reg::R1, Reg::SP, 0); // SP live at boundary
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_checkpoints(&mut f, &mut stats);
        let cks = checkpoints_of(&f, f.entry);
        assert!(cks.iter().all(|&(_, r)| !r.is_sp()));
    }

    #[test]
    fn existing_checkpoint_discharges_obligation() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 7);
        b.checkpoint(Reg::R1);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        let n = insert_checkpoints(&mut f, &mut stats);
        assert_eq!(n, 0, "hand-written checkpoint already covers r1");
    }

    #[test]
    fn remove_non_structural_keeps_sp_checkpoints() {
        let mut b = FuncBuilder::new("f");
        b.checkpoint(Reg::SP);
        b.checkpoint(Reg::R1);
        b.halt();
        let mut f = b.finish();
        remove_non_structural_checkpoints(&mut f);
        let insts = &f.block(f.entry).insts;
        assert_eq!(insts.len(), 1);
        assert!(matches!(insts[0], Inst::CheckpointStore { reg: Reg::SP }));
    }

    #[test]
    fn diamond_obligation_from_both_arms() {
        // Boundary in each arm; r1 defined before the branch and live in
        // both → single checkpoint after the def.
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 3);
        let left = b.new_block();
        let right = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R9, 0, left, right);
        b.switch_to(left);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        b.switch_to(right);
        b.region_boundary();
        b.store(Reg::R1, Reg::R3, 0);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        let n = insert_checkpoints(&mut f, &mut stats);
        assert_eq!(n, 1);
        assert!(checkpoints_of(&f, f.entry).contains(&(1, Reg::R1)));
    }

    /// The checkpoint-correctness invariant used by higher-level tests:
    /// at each boundary, every live register (except SP) has a checkpoint
    /// after its last def on every backward path. We spot-check via the
    /// analysis itself: re-running insertion must be a no-op.
    #[test]
    fn insertion_is_idempotent() {
        let mut b = FuncBuilder::new("f");
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, layout::HEAP_BASE as i64);
        let header = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.region_boundary();
        b.store(Reg::R1, Reg::R2, 0);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Ne, Reg::R1, 10, header, exit);
        b.switch_to(exit);
        b.halt();
        let mut f = b.finish();
        let mut stats = CompileStats::default();
        insert_checkpoints(&mut f, &mut stats);
        let before = f.clone();
        let n = insert_checkpoints(&mut f, &mut stats);
        assert_eq!(n, 0);
        assert_eq!(f.blocks.len(), before.blocks.len());
    }
}
