//! The parameterised synthetic-workload generator.
//!
//! Real SPEC/STAMP/NPB/SPLASH3/WHISPER binaries cannot run on this IR,
//! so each paper benchmark is modelled by a generated program whose
//! first-order characteristics — instruction mix, store density, working
//! set, spatial locality, loop structure, call rate, synchronisation
//! rate — match the benchmark's published behaviour. Those are exactly
//! the properties the paper's evaluation discriminates on: store
//! intensity drives persist-path pressure, working set drives the
//! DRAM-cache/PSP comparison, and sync rate drives the multi-threaded
//! ordering studies.
//!
//! A workload is a sequence of *phases*; each phase walks an array
//! (sequentially or pseudo-randomly via an in-IR LCG) performing a
//! load/ALU/store mix, optionally taking a lock for a commutative
//! shared-counter update (multi-threaded suites), optionally calling a
//! leaf function between phases. Shared writes are commutative and
//! private data is thread-partitioned, so the final memory state is
//! deterministic regardless of interleaving — which is what lets the
//! crash-consistency oracle compare byte-for-byte.

use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, BlockId, FuncId, Program, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The benchmark suite a workload belongss to (grouping of Fig. 7 ff.).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPEC CPU2006 (single-threaded).
    Cpu2006,
    /// SPEC CPU2017 (single-threaded).
    Cpu2017,
    /// STAMP transactional benchmarks (multi-threaded).
    Stamp,
    /// NAS Parallel Benchmarks (multi-threaded).
    Npb,
    /// SPLASH-3 (multi-threaded).
    Splash3,
    /// WHISPER persistent-memory applications (multi-threaded).
    Whisper,
}

impl Suite {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Cpu2006 => "CPU2006",
            Suite::Cpu2017 => "CPU2017",
            Suite::Stamp => "STAMP",
            Suite::Npb => "NPB",
            Suite::Splash3 => "SPLASH3",
            Suite::Whisper => "WHISPER",
        }
    }

    /// True for the multi-threaded suites.
    pub fn is_multithreaded(self) -> bool {
        !matches!(self, Suite::Cpu2006 | Suite::Cpu2017)
    }

    /// All suites in figure order.
    pub fn all() -> [Suite; 6] {
        [
            Suite::Cpu2006,
            Suite::Cpu2017,
            Suite::Stamp,
            Suite::Npb,
            Suite::Splash3,
            Suite::Whisper,
        ]
    }
}

/// Parameters describing one benchmark.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Deterministic generation seed.
    pub seed: u64,
    /// Loads per phase iteration.
    pub loads_per_iter: u32,
    /// Stores per phase iteration.
    pub stores_per_iter: u32,
    /// ALU ops per phase iteration.
    pub alu_per_iter: u32,
    /// Working-set bytes (array size walked by the phases).
    pub working_set: u64,
    /// Fraction of phases that walk sequentially (the rest are random).
    pub seq_fraction: f64,
    /// Number of phases.
    pub phases: u32,
    /// Iterations per phase.
    pub iters_per_phase: u32,
    /// One in `call_every` phases is followed by a leaf call (0 = none).
    pub call_every: u32,
    /// One in `sync_every` iterations takes a lock and updates a shared
    /// counter (0 = no synchronisation; single-threaded suites).
    pub sync_every: u32,
    /// Default thread count (1 for single-threaded suites, 8 for MT).
    pub threads: usize,
    /// Number of locks striping the shared counters (power of two;
    /// multi-threaded workloads pick a lock per critical section as
    /// real fine-grained-locking applications do).
    pub locks: u32,
    /// Byte stride of sequential phases. 8 (one word) models
    /// cache-resident kernels; 64 (one line per iteration) models
    /// streaming, bandwidth-bound kernels like lbm whose every access
    /// opens a new line.
    pub seq_stride: u64,
}

impl WorkloadSpec {
    /// Scales the workload to approximately `target` dynamic
    /// instructions per thread.
    pub fn scaled_to(mut self, target: u64) -> WorkloadSpec {
        let per_iter = (self.loads_per_iter + self.stores_per_iter + self.alu_per_iter + 4) as u64;
        let total_iters = (target / per_iter).max(16);
        let per_phase = ((total_iters / self.phases.max(1) as u64).max(8) / 8) * 8;
        self.iters_per_phase = per_phase.max(8).min(u32::MAX as u64) as u32;
        self
    }

    /// Approximate dynamic instruction count per thread.
    pub fn approx_dyn_insts(&self) -> u64 {
        let per_iter = (self.loads_per_iter + self.stores_per_iter + self.alu_per_iter + 4) as u64;
        per_iter * self.iters_per_phase as u64 * self.phases as u64
    }

    /// Store fraction of the generated instruction mix.
    pub fn store_fraction(&self) -> f64 {
        let per_iter = (self.loads_per_iter + self.stores_per_iter + self.alu_per_iter + 4) as f64;
        self.stores_per_iter as f64 / per_iter
    }

    /// Generates the IR program for this workload.
    pub fn generate(&self) -> Program {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut main = FuncBuilder::new(self.name);

        // Register conventions within the generated code:
        //   r0  = thread id (seeded by the machine)
        //   r5  = private array base   r6 = cursor
        //   r7  = loop index           r8 = LCG state
        //   r9  = scratch value        r10 = scratch value
        //   r11 = shared counter base  r12 = lock address
        //   r13 = address mask         r14 = working-set base
        let (cursor, idx, lcg, v1, v2) = (Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10);
        let (shared, lockr, mask, base) = (Reg::R11, Reg::R12, Reg::R13, Reg::R14);

        // Private partition: threads never overlap (tid-scaled offset).
        let ws_words = (self.working_set / 8).next_power_of_two();
        main.mov_imm(base, layout::HEAP_BASE as i64);
        // base += tid * working_set
        main.alu_imm(
            AluOp::Shl,
            v1,
            Reg::R0,
            63 - (self.working_set.next_power_of_two().leading_zeros() as i64),
        );
        main.alu(AluOp::Add, base, base, v1);
        main.mov_imm(mask, ((ws_words - 1) * 8) as i64);
        main.mov_imm(shared, (layout::HEAP_BASE - 0x1000) as i64);
        main.mov_imm(lockr, layout::lock_addr(0) as i64);
        main.mov_imm(lcg, 0x9E37_79B9 + self.seed as i64);

        for phase in 0..self.phases {
            let sequential = rng.gen_bool(self.seq_fraction.clamp(0.0, 1.0));
            self.emit_phase(&mut main, phase, sequential, &mut rng);
            if self.call_every > 0 && phase % self.call_every == self.call_every - 1 {
                main.call(FuncId::from_index(1));
            }
        }
        main.halt();

        // Leaf function: a small amount of compute plus one store into
        // the thread's private scratch slot.
        let mut leaf = FuncBuilder::new("leaf");
        leaf.alu_imm(AluOp::Add, Reg::R16, Reg::R16, 1);
        leaf.alu_imm(AluOp::Xor, Reg::R17, Reg::R16, 0x55);
        leaf.mov_imm(Reg::R18, (layout::HEAP_BASE - 0x2000) as i64);
        leaf.alu_imm(AluOp::Shl, Reg::R19, Reg::R0, 3);
        leaf.alu(AluOp::Add, Reg::R18, Reg::R18, Reg::R19);
        leaf.store(Reg::R16, Reg::R18, 0);
        leaf.ret();

        let _ = (cursor, idx, v2);
        Program::new(vec![main.finish(), leaf.finish()], FuncId::from_index(0))
    }

    /// Emits one phase loop into `main`.
    fn emit_phase(&self, main: &mut FuncBuilder, phase: u32, sequential: bool, rng: &mut StdRng) {
        let (cursor, idx, lcg, v1, v2) = (Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10);
        let (shared, lockr, mask, base) = (Reg::R11, Reg::R12, Reg::R13, Reg::R14);

        main.mov_imm(idx, 0);
        // Each phase starts at a rotated offset so repeated walks reuse
        // cache contents across phases (warm DRAM cache, as in memory
        // mode).
        let start = rng.gen_range(0..8) * 64;
        main.alu_imm(AluOp::Add, cursor, base, start);

        let header = main.new_block();
        let after = main.new_block();
        main.hint_trip_count(header, self.iters_per_phase);
        main.jump(header);
        main.switch_to(header);

        // Address generation.
        if sequential {
            // cursor advances by one stride; wrap via mask.
            main.alu_imm(AluOp::Add, cursor, cursor, self.seq_stride as i64);
            main.alu(AluOp::And, v2, cursor, mask);
            main.alu(AluOp::Add, v2, v2, base);
        } else {
            // LCG: x = x * 2862933555777941757 + 3037000493.
            main.mov_imm(v1, 2862933555777941757u64 as i64);
            main.alu(AluOp::Mul, lcg, lcg, v1);
            main.alu_imm(AluOp::Add, lcg, lcg, 3037000493);
            main.alu_imm(AluOp::Shr, v2, lcg, 11);
            main.alu(AluOp::And, v2, v2, mask);
            main.alu(AluOp::Add, v2, v2, base);
        }

        // Memory/compute mix. Accumulators r20..r23 stay live across
        // iterations (and thus across region boundaries), modelling the
        // live-out register pressure real code carries — this is what
        // the checkpoint-insertion pass pays for (§IV-A).
        let accs = [Reg::R20, Reg::R21, Reg::R22, Reg::R23];
        for l in 0..self.loads_per_iter {
            // Sequential kernels re-touch the streamed line; random
            // (pointer-chasing) kernels touch distinct lines per load.
            let off = if sequential {
                (l as i64 % 4) * 8
            } else {
                l as i64 * 64
            };
            main.load(v1, v2, off);
        }
        for a in 0..self.alu_per_iter {
            match a % 3 {
                0 => main.alu(
                    AluOp::Add,
                    accs[(a as usize) % 4],
                    accs[(a as usize) % 4],
                    v1,
                ),
                1 => main.alu_imm(AluOp::Xor, v1, v1, 0x2b),
                _ => main.alu_imm(AluOp::Shr, v1, v1, 1),
            }
        }
        for s in 0..self.stores_per_iter {
            main.store(v1, v2, (s as i64 % 4) * 8);
        }
        self.emit_latch(main, header, after);
        main.switch_to(after);
        // Phase epilogue: accumulators become program output (and stay
        // meaningfully live), written to the thread's private scratch.
        main.mov_imm(v2, (layout::HEAP_BASE - 0x4000) as i64);
        main.alu_imm(AluOp::Shl, v1, Reg::R0, 8);
        main.alu(AluOp::Add, v2, v2, v1);
        for (k, acc) in accs.iter().enumerate() {
            main.store(*acc, v2, (phase as i64 * 32) + (k as i64) * 8);
        }

        // Synchronisation section (multi-threaded suites): the hot loop
        // stays single-block (and unrollable, §IV-A); the phase's
        // critical sections run afterwards — `iters/sync_every`
        // commutative adds to lock-striped shared counters, exactly as
        // a kernel-then-reduce parallel application does.
        if let Some(rounds) = self.iters_per_phase.checked_div(self.sync_every) {
            let rounds = rounds.max(1);
            let sheader = main.new_block();
            let safter = main.new_block();
            main.mov_imm(idx, 0);
            main.jump(sheader);
            main.switch_to(sheader);
            // Lock stripe: (lcg >> 7) & (locks-1); each lock guards its
            // own counter word, so updates stay commutative per word.
            let stripe_mask = (self.locks.next_power_of_two() - 1) as i64;
            main.mov_imm(v1, 2862933555777941757u64 as i64);
            main.alu(AluOp::Mul, lcg, lcg, v1);
            main.alu_imm(AluOp::Add, lcg, lcg, 3037000493);
            main.alu_imm(AluOp::Shr, v1, lcg, 7);
            main.alu_imm(AluOp::And, v1, v1, stripe_mask);
            // lockr = LOCK_BASE + stripe*64
            main.alu_imm(AluOp::Shl, v2, v1, 6);
            main.mov_imm(lockr, layout::lock_addr(0) as i64);
            main.alu(AluOp::Add, lockr, lockr, v2);
            main.lock_acquire(lockr);
            // counter address = shared + stripe*8
            main.alu_imm(AluOp::Shl, v2, v1, 3);
            main.alu(AluOp::Add, v2, shared, v2);
            main.load(v1, v2, 0);
            main.alu_imm(AluOp::Add, v1, v1, 1 + (phase as i64 % 3));
            main.store(v1, v2, 0);
            main.lock_release(lockr);
            main.alu_imm(AluOp::Add, idx, idx, 1);
            main.branch_imm(Cond::Ne, idx, rounds as i64, sheader, safter);
            main.switch_to(safter);
        }
    }

    /// Emits the `idx++; branch` latch of a phase loop.
    fn emit_latch(&self, main: &mut FuncBuilder, header: BlockId, after: BlockId) {
        let idx = Reg::R7;
        main.alu_imm(AluOp::Add, idx, idx, 1);
        main.branch_imm(Cond::Ne, idx, self.iters_per_phase as i64, header, after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::interp::{Interp, Memory};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            suite: Suite::Cpu2006,
            seed: 42,
            loads_per_iter: 2,
            stores_per_iter: 1,
            alu_per_iter: 4,
            working_set: 1 << 16,
            seq_fraction: 0.7,
            phases: 4,
            iters_per_phase: 50,
            call_every: 2,
            sync_every: 0,
            threads: 1,
            locks: 4,
            seq_stride: 8,
        }
    }

    #[test]
    fn generated_program_runs_to_completion() {
        let p = spec().generate();
        let mut mem = Memory::new();
        let mut t = Interp::new(&p, 0);
        let evs = t.run(&p, &mut mem, 1_000_000);
        assert!(t.finished(), "must halt, got {} events", evs.len());
        assert!(!mem.is_empty(), "workload must write memory");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(a.static_size(), b.static_size());
        let run = |p: &Program| {
            let mut mem = Memory::new();
            let mut t = Interp::new(p, 0);
            t.run(p, &mut mem, 1_000_000);
            let mut v: Vec<(u64, u64)> = mem.iter().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(run(&a), run(&b));
    }

    #[test]
    fn scaling_hits_instruction_target() {
        let s = spec().scaled_to(100_000);
        let approx = s.approx_dyn_insts();
        assert!(
            (50_000..200_000).contains(&approx),
            "approx {approx} should be near the 100k target"
        );
    }

    #[test]
    fn synchronized_workload_runs_multithreaded_functionally() {
        let mut s = spec();
        s.sync_every = 8;
        s.threads = 2;
        let p = s.generate();
        // Functional check on one thread (lock uncontended).
        let mut mem = Memory::new();
        let mut t = Interp::new(&p, 0);
        t.run(&p, &mut mem, 2_000_000);
        assert!(t.finished());
        let shared = layout::HEAP_BASE - 0x1000;
        assert!(mem.read_word(shared) > 0, "shared counter updated");
        assert_eq!(mem.read_word(layout::lock_addr(0)), 0, "lock released");
    }

    #[test]
    fn store_fraction_reflects_mix() {
        let s = spec();
        let f = s.store_fraction();
        assert!(f > 0.05 && f < 0.2, "{f}");
    }
}
