//! Durable MPSC queue: per-producer rings, a single consumer, durable
//! acknowledgements — the structure that exercises LightWSP's
//! *cross-thread* persist ordering (flush-free handoff).
//!
//! # Layout (per producer ring `r`)
//!
//! ```text
//! slot_base(r):  cap × [payload][csum]        16 B slots, cap pow2
//! tail_addr(r):  records published by r        producer-written
//! cons_addr(r):  records consumed from r       consumer-written
//! ack_base(r):   one ack word per record       consumer-written
//! err_addr:      consumer's validation flag    consumer-written
//! ```
//!
//! `payloadᵢ = mix64(((r << 32) | i) ^ SALT)`,
//! `csumᵢ = payloadᵢ ^ (i + CSUM_TAG)`, `ackᵢ = payloadᵢ ^ ACK_TAG`.
//! Every word has exactly one writer.
//!
//! # Protocol
//!
//! *Enqueue*: spin until `seq < cons + cap` (flow control), region
//! boundary (the previous tail publish left its region open; the slot
//! store must open a fresh one so its ID postdates the `cons`
//! observation), store payload then checksum, region boundary, publish
//! `tail = seq + 1`.
//! *Consume*: per ring visit, load `tail`, then per record: region
//! boundary (same discipline, closing the previous cons-publish
//! region), load and checksum-validate the slot (flagging `err_addr`
//! on mismatch), store the ack, region boundary, publish `cons + 1`.
//!
//! # Why this is crash-consistent with no flushes
//!
//! The consumer's ack store executes after it observed the published
//! tail, which the producer stored after the record's region closed.
//! Region IDs are sampled in execution order *at each region's first
//! store*, and the per-record boundary guarantees the ack store opens
//! a fresh region — so the ack's region ID
//! is strictly greater than the record's — and the survivable set
//! being one contiguous ID run (`RECOVERY.md` §3) makes "ack durable
//! ⇒ record durable" (`queue-no-lost-ack`) a theorem, not a hope.
//! The same argument gates slot reuse: the producer overwrites a slot
//! only after observing `cons` pass it, so a durable overwrite implies
//! the consumption it depends on is durable too (`queue-slot-reuse`).
//! A wrongly-widened WPQ gate (e.g. the `AnyMcBoundary` mutant) breaks
//! exactly this cross-thread prefix — which is how a DS invariant
//! catches a gating bug that single-structure checks can miss.
//!
//! Note the deliberate asymmetry the checker must accept: the durable
//! `cons` may *exceed* the durable `tail` (the consumer's publish
//! region can commit while the producer's later tail-publish region is
//! still in flight). What can never happen is an ack for a record
//! whose bytes did not survive.
//!
//! # Recovery procedure
//!
//! Trust the counters. The producer resumes at its checkpoint and
//! republishes from `tail`; at most the record at index `tail` is
//! in flight (payload-before-checksum prefix, as the log). The
//! consumer resumes from `cons`; re-acking record `cons` rewrites
//! identical bytes (acks are a pure function of the record), so the
//! at-most-one-extra ambiguity is idempotent.

use super::log::CSUM_TAG;
use super::{mix64, violation, DsViolation, RecoverableDs};
use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, Memory, Program, Reg};

/// XORed into a record's payload to form its acknowledgement word.
pub const ACK_TAG: u64 = 0xACCE_DE00_0000_0001;
/// Mixed into the record index so payload 0 never appears.
pub const QUEUE_SALT: u64 = 0x5EED_FACE_CAFE_0001;

/// Address layout of one single-producer ring (shared with the
/// service, whose request rings reuse the checker).
#[derive(Clone, Copy, Debug)]
pub struct RingLayout {
    /// First slot's address (`cap` 16-byte slots).
    pub slot_base: u64,
    /// Slot count (power of two).
    pub cap: u64,
    /// Total records the ring will carry.
    pub records: u64,
    /// Producer-published record count.
    pub tail_addr: u64,
    /// Consumer-published record count.
    pub cons_addr: u64,
    /// First ack word's address (`records` words).
    pub ack_base: u64,
}

/// A standalone MPSC queue: `producers` rings of `cap` slots, each
/// carrying `records` records, drained by one consumer thread (thread
/// id `producers`).
#[derive(Clone, Copy, Debug)]
pub struct DurableQueueSpec {
    /// Producer threads (one ring each).
    pub producers: usize,
    /// Records per producer.
    pub records: u64,
    /// Ring capacity in slots (power of two).
    pub cap: u64,
}

impl DurableQueueSpec {
    fn ring_stride(&self) -> u64 {
        (self.cap * 16).next_power_of_two().max(4096)
    }

    fn ack_stride(&self) -> u64 {
        (self.records * 8).next_power_of_two().max(4096)
    }

    fn acks_base(&self) -> u64 {
        layout::HEAP_BASE + self.producers as u64 * self.ring_stride()
    }

    fn meta_base(&self) -> u64 {
        self.acks_base() + self.producers as u64 * self.ack_stride()
    }

    /// The consumer's validation-error flag.
    pub fn err_addr(&self) -> u64 {
        self.meta_base() + self.producers as u64 * 128
    }

    /// The ring layout of producer `r`.
    pub fn ring(&self, r: usize) -> RingLayout {
        RingLayout {
            slot_base: layout::HEAP_BASE + r as u64 * self.ring_stride(),
            cap: self.cap,
            records: self.records,
            tail_addr: self.meta_base() + r as u64 * 128,
            cons_addr: self.meta_base() + r as u64 * 128 + 64,
            ack_base: self.acks_base() + r as u64 * self.ack_stride(),
        }
    }

    /// Expected payload of record `i` of ring `r`.
    pub fn payload(&self, r: usize, i: u64) -> u64 {
        mix64((((r as u64) << 32) | i) ^ QUEUE_SALT)
    }

    /// Emits the producer role (`tid < producers`).
    fn emit_producer(&self, b: &mut FuncBuilder, entry: lightwsp_ir::BlockId) {
        let (slotb, tailr, consr, seq) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let (avail, addr, pay, tmp, csum) = (Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9);
        b.switch_to(entry);
        b.alu_imm(
            AluOp::Shl,
            slotb,
            Reg::R0,
            self.ring_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, slotb, slotb, layout::HEAP_BASE as i64);
        b.alu_imm(AluOp::Shl, tailr, Reg::R0, 7);
        b.alu_imm(AluOp::Add, tailr, tailr, self.meta_base() as i64);
        b.alu_imm(AluOp::Add, consr, tailr, 64);
        b.mov_imm(seq, 0);

        let spin = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.hint_trip_count(spin, self.records.min(u32::MAX as u64) as u32);
        b.jump(spin);

        // Flow control: wait until the consumer has durably freed a
        // slot (seq < cons + cap).
        b.switch_to(spin);
        b.load(avail, consr, 0);
        b.alu_imm(AluOp::Add, avail, avail, self.cap as i64);
        b.branch_reg(Cond::Lt, seq, avail, body, spin);

        b.switch_to(body);
        // The previous record's tail publish opened a region that is
        // still live here; close it so the slot overwrite opens a fresh
        // region whose ID postdates the `cons` observation in `spin` —
        // otherwise the overwrite could be durable without the
        // consumer's cons publish (queue-slot-reuse).
        b.region_boundary();
        b.alu_imm(AluOp::And, addr, seq, self.cap as i64 - 1);
        b.alu_imm(AluOp::Shl, addr, addr, 4);
        b.alu(AluOp::Add, addr, addr, slotb);
        b.alu_imm(AluOp::Shl, pay, Reg::R0, 32);
        b.alu(AluOp::Or, pay, pay, seq);
        b.alu_imm(AluOp::Xor, pay, pay, QUEUE_SALT as i64);
        super::emit_mix(b, pay, tmp);
        b.store(pay, addr, 0);
        b.alu_imm(AluOp::Add, csum, seq, CSUM_TAG as i64);
        b.alu(AluOp::Xor, csum, pay, csum);
        b.store(csum, addr, 8);
        // Publish: close the record's region before the tail store.
        b.region_boundary();
        b.alu_imm(AluOp::Add, seq, seq, 1);
        b.store(seq, tailr, 0);
        b.branch_imm(Cond::Ne, seq, self.records as i64, spin, done);

        b.switch_to(done);
        b.halt();
    }

    /// Emits the consumer role (`tid == producers`).
    fn emit_consumer(&self, b: &mut FuncBuilder, entry: lightwsp_ir::BlockId) {
        let (ring, total, slotb, tailr, consr, ackb) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        let (tail, cons, addr, pay, csum, tmp, errr, acka) = (
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
            Reg::R14,
        );
        let p = self.producers as i64;
        b.switch_to(entry);
        b.mov_imm(errr, self.err_addr() as i64);
        b.mov_imm(total, 0);
        b.mov_imm(ring, 0);

        let visit = b.new_block();
        let batch = b.new_block();
        let body = b.new_block();
        let bad = b.new_block();
        let ok = b.new_block();
        let next = b.new_block();
        let wrap = b.new_block();
        let done = b.new_block();
        b.jump(visit);

        b.switch_to(visit);
        b.alu_imm(
            AluOp::Shl,
            slotb,
            ring,
            self.ring_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, slotb, slotb, layout::HEAP_BASE as i64);
        b.alu_imm(AluOp::Shl, tailr, ring, 7);
        b.alu_imm(AluOp::Add, tailr, tailr, self.meta_base() as i64);
        b.alu_imm(AluOp::Add, consr, tailr, 64);
        b.alu_imm(
            AluOp::Shl,
            ackb,
            ring,
            self.ack_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, ackb, ackb, self.acks_base() as i64);
        b.load(tail, tailr, 0);
        b.load(cons, consr, 0);
        b.jump(batch);

        b.switch_to(batch);
        b.branch_reg(Cond::Lt, cons, tail, body, next);

        b.switch_to(body);
        // Same fresh-region discipline as the producer: the previous
        // record's cons publish left its region open, and the ack store
        // below must open a new one whose ID postdates the tail
        // observation in `visit` (queue-no-lost-ack).
        b.region_boundary();
        b.alu_imm(AluOp::And, addr, cons, self.cap as i64 - 1);
        b.alu_imm(AluOp::Shl, addr, addr, 4);
        b.alu(AluOp::Add, addr, addr, slotb);
        b.load(pay, addr, 0);
        b.load(csum, addr, 8);
        b.alu_imm(AluOp::Add, tmp, cons, CSUM_TAG as i64);
        b.alu(AluOp::Xor, tmp, pay, tmp);
        b.branch_reg(Cond::Ne, csum, tmp, bad, ok);

        // Torn or foreign record: raise the persistent flag. The
        // protocol makes this unreachable; the checker asserts so.
        b.switch_to(bad);
        b.store(cons, errr, 0);
        b.jump(ok);

        b.switch_to(ok);
        b.alu_imm(AluOp::Xor, tmp, pay, ACK_TAG as i64);
        b.alu_imm(AluOp::Shl, acka, cons, 3);
        b.alu(AluOp::Add, acka, acka, ackb);
        b.store(tmp, acka, 0);
        // Publish: the ack's region closes before the cons store, so a
        // durable cons proves the ack (and, transitively, the record).
        b.region_boundary();
        b.alu_imm(AluOp::Add, cons, cons, 1);
        b.store(cons, consr, 0);
        b.alu_imm(AluOp::Add, total, total, 1);
        b.jump(batch);

        b.switch_to(next);
        b.alu_imm(AluOp::Add, ring, ring, 1);
        b.branch_imm(Cond::Ne, ring, p, visit, wrap);

        b.switch_to(wrap);
        b.mov_imm(ring, 0);
        let want = (self.producers as u64 * self.records) as i64;
        b.branch_imm(Cond::Ne, total, want, visit, done);

        b.switch_to(done);
        b.halt();
    }

    /// A single-threaded enqueue-then-dequeue variant over the same
    /// ring-0 layout, for LRPO-model admittance (the model's
    /// extraction domain excludes cross-thread reads). Build it from a
    /// `producers: 1` spec; the spec's image checkers apply unchanged.
    pub fn model_program(&self) -> Program {
        assert_eq!(self.producers, 1, "model variant is single-ring");
        let ring = self.ring(0);
        let mut b = FuncBuilder::new("durable_queue_1t");
        let (slotb, tailr, consr, seq) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let (addr, pay, tmp, csum, nxt) = (Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9);
        let (rpay, rcsum, errr, acka) = (Reg::R10, Reg::R11, Reg::R13, Reg::R14);
        b.mov_imm(slotb, ring.slot_base as i64);
        b.mov_imm(tailr, ring.tail_addr as i64);
        b.mov_imm(consr, ring.cons_addr as i64);
        b.mov_imm(errr, self.err_addr() as i64);
        b.mov_imm(seq, 0);

        let header = b.new_block();
        let bad = b.new_block();
        let ok = b.new_block();
        let done = b.new_block();
        b.hint_trip_count(header, self.records.min(u32::MAX as u64) as u32);
        b.jump(header);

        b.switch_to(header);
        b.alu_imm(AluOp::And, addr, seq, self.cap as i64 - 1);
        b.alu_imm(AluOp::Shl, addr, addr, 4);
        b.alu(AluOp::Add, addr, addr, slotb);
        b.alu_imm(AluOp::Xor, pay, seq, QUEUE_SALT as i64);
        super::emit_mix(&mut b, pay, tmp);
        b.store(pay, addr, 0);
        b.alu_imm(AluOp::Add, csum, seq, CSUM_TAG as i64);
        b.alu(AluOp::Xor, csum, pay, csum);
        b.store(csum, addr, 8);
        b.region_boundary();
        b.alu_imm(AluOp::Add, nxt, seq, 1);
        b.store(nxt, tailr, 0);
        // Dequeue the same record.
        b.load(rpay, addr, 0);
        b.load(rcsum, addr, 8);
        b.alu_imm(AluOp::Add, tmp, seq, CSUM_TAG as i64);
        b.alu(AluOp::Xor, tmp, rpay, tmp);
        b.branch_reg(Cond::Ne, rcsum, tmp, bad, ok);
        b.switch_to(bad);
        b.store(seq, errr, 0);
        b.jump(ok);
        b.switch_to(ok);
        b.alu_imm(AluOp::Xor, tmp, rpay, ACK_TAG as i64);
        b.alu_imm(AluOp::Shl, acka, seq, 3);
        b.alu_imm(AluOp::Add, acka, acka, ring.ack_base as i64);
        b.store(tmp, acka, 0);
        b.region_boundary();
        b.store(nxt, consr, 0);
        b.alu_imm(AluOp::Add, seq, seq, 1);
        b.branch_imm(Cond::Ne, seq, self.records as i64, header, done);
        b.switch_to(done);
        b.halt();
        Program::from_single(b.finish())
    }
    /// A producers-only multi-thread variant for exact-mode LRPO
    /// admittance: every producer thread runs the real enqueue protocol
    /// (fresh-region discipline, payload/checksum/tail publish) against
    /// its own ring, but no consumer runs, so the only cross-thread
    /// word the producers *read* — `cons` — keeps its install value and
    /// the program stays inside the extraction domain (disjoint writes,
    /// no foreign-write reads). Requires `records ≤ cap`: with no
    /// consumer, flow control admits exactly one ring's worth.
    pub fn model_program_producers(&self) -> Program {
        assert!(self.cap.is_power_of_two());
        assert!(
            self.records <= self.cap,
            "producers-only variant needs records ≤ cap (no consumer ever frees a slot)"
        );
        let mut b = FuncBuilder::new("durable_queue_producers");
        let entry = b.new_block();
        b.jump(entry);
        self.emit_producer(&mut b, entry);
        Program::from_single(b.finish())
    }
}

impl RecoverableDs for DurableQueueSpec {
    fn name(&self) -> &'static str {
        "durable-queue"
    }

    fn threads(&self) -> usize {
        self.producers + 1
    }

    fn program(&self) -> Program {
        assert!(self.cap.is_power_of_two());
        let mut b = FuncBuilder::new("durable_queue");
        let p_entry = b.new_block();
        let c_entry = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R0, self.producers as i64, c_entry, p_entry);
        self.emit_producer(&mut b, p_entry);
        self.emit_consumer(&mut b, c_entry);
        Program::from_single(b.finish())
    }

    fn check_image(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        for r in 0..self.producers {
            let ring = self.ring(r);
            check_ring(
                pm,
                &ring,
                &|i| self.payload(r, i),
                &format!("ring[{r}]"),
                false,
                &mut out,
            );
        }
        let err = pm.read_word(self.err_addr());
        if err != 0 {
            violation(
                &mut out,
                "queue-records-published",
                format!("consumer flagged a torn record at seq {err}"),
            );
        }
        out
    }

    fn check_final(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        for r in 0..self.producers {
            let ring = self.ring(r);
            check_ring(
                pm,
                &ring,
                &|i| self.payload(r, i),
                &format!("ring[{r}]"),
                true,
                &mut out,
            );
        }
        let err = pm.read_word(self.err_addr());
        if err != 0 {
            violation(
                &mut out,
                "queue-records-published",
                format!("consumer flagged a torn record at seq {err}"),
            );
        }
        out
    }

    /// The consumer's control flow (batch sizes, final register state)
    /// depends on cross-thread timing, so a recovered run's checkpoint
    /// area legitimately differs from the golden run's.
    fn deterministic_final(&self) -> bool {
        false
    }
}

/// Checks one ring against the §8 queue invariants. `payload(i)` is
/// the oracle payload of record `i`; checksums and acks are derived
/// from it. With `complete`, both counters must equal `records`.
pub(crate) fn check_ring(
    pm: &Memory,
    lay: &RingLayout,
    payload: &dyn Fn(u64) -> u64,
    what: &str,
    complete: bool,
    out: &mut Vec<DsViolation>,
) {
    let csum = |i: u64| payload(i) ^ i.wrapping_add(CSUM_TAG);
    let ack = |i: u64| payload(i) ^ ACK_TAG;
    let tail = pm.read_word(lay.tail_addr);
    let cons = pm.read_word(lay.cons_addr);
    if tail > lay.records {
        violation(
            out,
            "queue-records-published",
            format!("{what}: tail {tail} exceeds {}", lay.records),
        );
        return;
    }
    if cons > lay.records {
        violation(
            out,
            "queue-no-lost-ack",
            format!("{what}: cons {cons} exceeds {}", lay.records),
        );
        return;
    }
    if complete && (tail != lay.records || cons != lay.records) {
        violation(
            out,
            "queue-records-published",
            format!(
                "{what}: completed run left tail {tail} / cons {cons} of {}",
                lay.records
            ),
        );
    }

    // queue-no-lost-ack: every durably-consumed record has its exact
    // ack; at most one ack (the in-flight one) may run ahead of cons.
    for i in 0..lay.records {
        let a = pm.read_word(lay.ack_base + i * 8);
        if i < cons {
            if a != ack(i) {
                violation(
                    out,
                    "queue-no-lost-ack",
                    format!(
                        "{what}: consumed record {i} has ack {a:#x}, want {:#x}",
                        ack(i)
                    ),
                );
            }
        } else if i == cons {
            if a != 0 && a != ack(i) {
                violation(
                    out,
                    "queue-no-lost-ack",
                    format!("{what}: in-flight ack {i} holds foreign {a:#x}"),
                );
            }
        } else if a != 0 {
            violation(
                out,
                "queue-no-lost-ack",
                format!("{what}: ack {i} durable {a:#x} while cons is {cons}"),
            );
        }
    }

    // queue-records-published / queue-slot-reuse: each slot holds its
    // newest published record, or a payload-first prefix of the
    // in-flight one — and a durable overwrite proves the overwritten
    // record was durably consumed.
    for idx in 0..lay.cap {
        let p = pm.read_word(lay.slot_base + idx * 16);
        let c = pm.read_word(lay.slot_base + idx * 16 + 8);
        let s_pub = (idx < tail).then(|| idx + ((tail - 1 - idx) / lay.cap) * lay.cap);
        let s_if = (tail % lay.cap == idx && tail < lay.records).then_some(tail);
        let (op, oc) = s_pub.map(|s| (payload(s), csum(s))).unwrap_or((0, 0));
        match s_if {
            Some(sn) => {
                let (np, nc) = (payload(sn), csum(sn));
                let p_ok = p == op || p == np;
                let c_ok = c == oc || c == nc;
                if !p_ok || !c_ok {
                    violation(
                        out,
                        "queue-records-published",
                        format!("{what}: slot {idx} holds ({p:#x},{c:#x}), neither record {s_pub:?} nor {sn}"),
                    );
                    continue;
                }
                if c == nc && c != oc && p != np {
                    violation(
                        out,
                        "queue-records-published",
                        format!("{what}: slot {idx} has csum of {sn} over payload {p:#x}"),
                    );
                }
                let advanced = (p == np && p != op) || (c == nc && c != oc);
                if advanced {
                    if let Some(sp) = s_pub {
                        if cons <= sp {
                            violation(
                                out,
                                "queue-slot-reuse",
                                format!(
                                    "{what}: slot {idx} reused for {sn} but record {sp} \
                                     not durably consumed (cons {cons})"
                                ),
                            );
                        }
                    }
                }
            }
            None => {
                if (p, c) != (op, oc) {
                    violation(
                        out,
                        "queue-records-published",
                        format!(
                            "{what}: slot {idx} holds ({p:#x},{c:#x}), want ({op:#x},{oc:#x}) \
                             for record {s_pub:?}"
                        ),
                    );
                }
            }
        }
    }
}
