//! Durable append-only log with torn-tail detection.
//!
//! The simplest recoverable structure, and the template for the
//! publish-last discipline every other structure in this suite builds
//! on (in-line logging after Cohen et al., minus the explicit flushes
//! LightWSP makes unnecessary).
//!
//! # Layout
//!
//! One log per writer thread `w`, single-writer throughout:
//!
//! ```text
//! rec_base(w):   [payload₀][csum₀][payload₁][csum₁] …   16 B records
//! tail_addr(w):  number of fully published records        1 word
//! ```
//!
//! `payloadᵢ = mix64(((w << 32) | i) ^ SALT)` and
//! `csumᵢ = payloadᵢ ^ (i + CSUM_TAG)`: a checksum is valid only for
//! its own record *and* its own index, so stale or torn bytes cannot
//! masquerade as a later record.
//!
//! # Append and recovery procedure
//!
//! Append stores the payload, then the checksum, then executes a
//! region boundary, then stores the incremented tail. Per-thread
//! region-prefix persistence therefore guarantees **tail ≤ durable
//! valid prefix**: a durable tail implies every record below it is
//! durable, because the tail store sits in a strictly later region
//! than the record it publishes.
//!
//! Recovery needs no scan-and-repair: trust the tail. The only
//! in-flight state a crash can leave is at index `tail` itself —
//! nothing, a bare payload, or a full record whose publish was lost —
//! and the resumed writer simply overwrites it. The checker verifies
//! exactly that shape (`log-torn-tail`): records below the tail match
//! the oracle, index `tail` is a prefix of a valid record (payload
//! before checksum, never a checksum without its payload), and
//! everything beyond is untouched.

use super::{mix64, violation, DsViolation, RecoverableDs};
use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, Memory, Program, Reg};

/// Base address of the log areas (start of the workload heap).
pub const LOG_BASE: u64 = layout::HEAP_BASE;
/// Mixed into the record index so payload 0 never appears.
pub const LOG_SALT: u64 = 0x1095_A17E_D5EA_11E5;
/// Added to the record index inside the checksum, so a checksum is
/// valid only at its own index (and never zero for a zero payload).
pub const CSUM_TAG: u64 = 0xC5C5_C5C5_0000_0001;

/// A durable append log: `writers` independent single-writer logs of
/// `records` records each, one per thread.
#[derive(Clone, Copy, Debug)]
pub struct DurableLogSpec {
    /// Writer threads (one log per thread).
    pub writers: usize,
    /// Records appended per writer.
    pub records: u64,
}

/// Address layout of one single-writer log area; shared with the
/// service workload, whose per-client journals reuse the checker.
#[derive(Clone, Copy, Debug)]
pub struct LogArea {
    /// First record's address (records are 16 bytes: payload, csum).
    pub rec_base: u64,
    /// Address of the published-record-count word.
    pub tail_addr: u64,
    /// Capacity in records.
    pub records: u64,
}

impl DurableLogSpec {
    fn stride(&self) -> u64 {
        (self.records * 16).next_power_of_two().max(4096)
    }

    /// The log area of writer `w`.
    pub fn area(&self, w: usize) -> LogArea {
        let tails_base = LOG_BASE + self.writers as u64 * self.stride();
        LogArea {
            rec_base: LOG_BASE + w as u64 * self.stride(),
            tail_addr: tails_base + w as u64 * 64,
            records: self.records,
        }
    }

    /// Expected payload of record `i` of writer `w`.
    pub fn payload(&self, w: usize, i: u64) -> u64 {
        mix64((((w as u64) << 32) | i) ^ LOG_SALT)
    }

    /// Expected checksum of record `i` of writer `w`.
    pub fn csum(&self, w: usize, i: u64) -> u64 {
        self.payload(w, i) ^ (i.wrapping_add(CSUM_TAG))
    }
}

impl RecoverableDs for DurableLogSpec {
    fn name(&self) -> &'static str {
        "durable-log"
    }

    fn threads(&self) -> usize {
        self.writers
    }

    /// Each thread appends `records` records to its own log. Register
    /// use: r1 record cursor, r2 sequence, r3/r4 hash, r5 checksum,
    /// r6 tail address.
    fn program(&self) -> Program {
        let shift = self.stride().trailing_zeros() as i64;
        let mut b = FuncBuilder::new("durable_log");
        let (cur, seq, x, tmp, csum, tailr) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);

        b.alu_imm(AluOp::Shl, cur, Reg::R0, shift);
        b.alu_imm(AluOp::Add, cur, cur, LOG_BASE as i64);
        b.alu_imm(AluOp::Shl, tailr, Reg::R0, 6);
        let tails_base = LOG_BASE + self.writers as u64 * self.stride();
        b.alu_imm(AluOp::Add, tailr, tailr, tails_base as i64);
        b.mov_imm(seq, 0);

        let header = b.new_block();
        let done = b.new_block();
        b.hint_trip_count(header, self.records.min(u32::MAX as u64) as u32);
        b.jump(header);

        b.switch_to(header);
        // x = ((tid << 32) | seq) ^ SALT; payload = mix64(x).
        b.alu_imm(AluOp::Shl, x, Reg::R0, 32);
        b.alu(AluOp::Or, x, x, seq);
        b.alu_imm(AluOp::Xor, x, x, LOG_SALT as i64);
        super::emit_mix(&mut b, x, tmp);
        b.store(x, cur, 0);
        // csum = payload ^ (seq + CSUM_TAG).
        b.alu_imm(AluOp::Add, csum, seq, CSUM_TAG as i64);
        b.alu(AluOp::Xor, csum, x, csum);
        b.store(csum, cur, 8);
        // Publish: the boundary ends the record's region before the
        // tail store, making "tail durable => record durable" a
        // region-prefix fact rather than a flush.
        b.region_boundary();
        b.alu_imm(AluOp::Add, seq, seq, 1);
        b.store(seq, tailr, 0);
        b.alu_imm(AluOp::Add, cur, cur, 16);
        b.branch_imm(Cond::Ne, seq, self.records as i64, header, done);

        b.switch_to(done);
        b.halt();
        Program::from_single(b.finish())
    }

    fn check_image(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        for w in 0..self.writers {
            let area = self.area(w);
            check_log_area(
                pm,
                &area,
                &|i| (self.payload(w, i), self.csum(w, i)),
                &format!("log[{w}]"),
                false,
                &mut out,
            );
        }
        out
    }

    fn check_final(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        for w in 0..self.writers {
            let area = self.area(w);
            check_log_area(
                pm,
                &area,
                &|i| (self.payload(w, i), self.csum(w, i)),
                &format!("log[{w}]"),
                true,
                &mut out,
            );
        }
        out
    }
}

/// Checks one single-writer log area against the `log-torn-tail`
/// contract: all records below the durable tail intact, at most one
/// in-flight record (payload-before-checksum) at the tail, silence
/// beyond. With `complete`, additionally requires `tail == records`.
///
/// `expect(i)` returns the oracle `(payload, csum)` of record `i`;
/// the service journals reuse this with their own payload streams.
pub(crate) fn check_log_area(
    pm: &Memory,
    area: &LogArea,
    expect: &dyn Fn(u64) -> (u64, u64),
    what: &str,
    complete: bool,
    out: &mut Vec<DsViolation>,
) {
    let tail = pm.read_word(area.tail_addr);
    if tail > area.records {
        violation(
            out,
            "log-torn-tail",
            format!("{what}: tail {tail} exceeds capacity {}", area.records),
        );
        return;
    }
    if complete && tail != area.records {
        violation(
            out,
            "log-torn-tail",
            format!(
                "{what}: completed run published {tail} of {} records",
                area.records
            ),
        );
    }
    for i in 0..area.records {
        let addr = area.rec_base + i * 16;
        let (p, c) = (pm.read_word(addr), pm.read_word(addr + 8));
        let (ep, ec) = expect(i);
        if i < tail {
            // Published: must be exactly the oracle record.
            if p != ep || c != ec {
                violation(
                    out,
                    "log-torn-tail",
                    format!(
                        "{what}: published record {i} is ({p:#x},{c:#x}), oracle ({ep:#x},{ec:#x})"
                    ),
                );
            }
        } else if i == tail {
            // In flight: a durable prefix of (payload, csum) — never a
            // checksum without its payload, never foreign bytes.
            if p != 0 && p != ep {
                violation(
                    out,
                    "log-torn-tail",
                    format!("{what}: in-flight record {i} payload {p:#x}, oracle {ep:#x}"),
                );
            }
            if c != 0 && c != ec {
                violation(
                    out,
                    "log-torn-tail",
                    format!("{what}: in-flight record {i} csum {c:#x}, oracle {ec:#x}"),
                );
            }
            if c == ec && c != 0 && p != ep {
                violation(
                    out,
                    "log-torn-tail",
                    format!("{what}: record {i} has durable csum but torn payload {p:#x}"),
                );
            }
        } else if p != 0 || c != 0 {
            // Beyond the in-flight record: program order says the
            // writer has not reached it; region order says nothing of
            // it can be durable.
            violation(
                out,
                "log-torn-tail",
                format!("{what}: unreachable record {i} holds ({p:#x},{c:#x})"),
            );
        }
    }
}
