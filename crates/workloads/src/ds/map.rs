//! Bucketed durable hash map with sharded, single-writer slots.
//!
//! # Layout
//!
//! A power-of-two array of buckets, each holding a power-of-two number
//! of 16-byte slots `[key][value]`. Slots inside a bucket are
//! partitioned into per-writer **shards** (like per-core shards of a
//! real service's table), so every slot has exactly one writing
//! thread and recovered images are checkable against a replayed
//! per-shard op stream:
//!
//! ```text
//! slot(key, shard) = base
//!                  + (bucket(key) * slots_per_bucket
//!                     + shard * slots_per_shard
//!                     + hash_slot(key)) * 16
//! bucket(key)    = key & (buckets - 1)
//! hash_slot(key) = (key >> 32) & (slots_per_shard - 1)
//! value(key)     = mix64(key) ^ VAL_TAG        (idempotent)
//! ```
//!
//! Colliding keys of the same shard *overwrite* (last writer wins, as
//! in a fixed-size cache table); values are a pure function of the key
//! so any winner yields a valid pair.
//!
//! # Crash consistency
//!
//! A put takes the bucket's striped lock, stores the **value first**,
//! then the key. The LightWSP compiler forces a region boundary before
//! `LockAcquire` and before `LockRelease`, so the whole critical
//! section — lock word, value, key — is one region and commits or
//! discards atomically (`map-bucket-atomicity`: an occupied slot
//! always carries its value). The value-before-key order additionally
//! keeps first claims safe under *any* region split: a durable key
//! implies a durable value even if the compiler's store threshold cut
//! the region (the overwrite path needs the whole-region atomicity,
//! which holds at the default threshold — see `docs/DATASTRUCTURES.md`).
//!
//! Each thread publishes a private progress counter after every put
//! (after the lock release, i.e. in a strictly later region), so a
//! durable counter of `c` proves the first `c` puts are durable and at
//! most one more can be (`map-shard-prefix`).
//!
//! Gets re-read an own earlier key **under the bucket lock** and
//! validate `value == mix64(key) ^ VAL_TAG` *in IR*, raising a
//! persistent error flag on mismatch — the program audits its own
//! reads while the harness audits its images.
//!
//! # Recovery procedure
//!
//! Nothing to repair: the table is valid as stored. A recovering
//! service re-reads each shard's progress counter and resumes its op
//! stream from there; the at-most-one-extra-put ambiguity is absorbed
//! by idempotent values (re-putting op `c+1` rewrites identical
//! bytes).

use super::{mix64, violation, DsViolation, RecoverableDs};
use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, Memory, Program, Reg};

/// XORed into `mix64(key)` to form a slot's value word.
pub const VAL_TAG: u64 = 0x7AB1_E000_0000_0001;
/// Mixed into generated keys so key 0 never appears.
pub const MAP_SALT: u64 = 0x3A9D_B10C_4E75_0001;
/// Multiplies the thread id into the per-thread LCG seed.
pub const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;
/// Per-op LCG step: `state = state * LCG_A + LCG_C` (MMIX constants).
pub const LCG_A: u64 = 6_364_136_223_846_793_005;
/// Per-op LCG increment.
pub const LCG_C: u64 = 1_442_695_040_888_963_407;

/// Address layout of one sharded map table (shared with the service).
#[derive(Clone, Copy, Debug)]
pub struct MapLayout {
    /// Base address of the slot array.
    pub base: u64,
    /// Bucket count (power of two).
    pub buckets: usize,
    /// Slots per bucket (power of two, divisible by `shards`).
    pub slots_per_bucket: usize,
    /// Single-writer shards the slots are partitioned into.
    pub shards: usize,
    /// First lock index of the bucket-striped lock range.
    pub lock0: usize,
    /// Lock stripe count (power of two).
    pub locks: usize,
}

impl MapLayout {
    /// Slots per shard within one bucket.
    pub fn slots_per_shard(&self) -> usize {
        self.slots_per_bucket / self.shards
    }

    /// The bucket a key hashes to.
    pub fn bucket_of(&self, key: u64) -> usize {
        (key & (self.buckets as u64 - 1)) as usize
    }

    /// The in-shard slot a key hashes to.
    pub fn hash_slot_of(&self, key: u64) -> usize {
        ((key >> 32) & (self.slots_per_shard() as u64 - 1)) as usize
    }

    /// Global slot index of `key` in `shard`.
    pub fn slot_index(&self, key: u64, shard: usize) -> usize {
        self.bucket_of(key) * self.slots_per_bucket
            + shard * self.slots_per_shard()
            + self.hash_slot_of(key)
    }

    /// Address of global slot `idx` (key word; value at +8).
    pub fn slot_addr(&self, idx: usize) -> u64 {
        self.base + idx as u64 * 16
    }

    /// Total slot-array bytes.
    pub fn table_bytes(&self) -> u64 {
        (self.buckets * self.slots_per_bucket) as u64 * 16
    }

    /// The value word a key maps to.
    pub fn value_of(&self, key: u64) -> u64 {
        mix64(key) ^ VAL_TAG
    }

    fn assert_pow2(&self) {
        assert!(self.buckets.is_power_of_two());
        assert!(self.slots_per_bucket.is_power_of_two());
        assert!(self.shards.is_power_of_two());
        assert!(self.locks.is_power_of_two());
        assert!(self.slots_per_shard() >= 1);
    }
}

/// Emits a locked put of `key` (clobbers `s`; `shard` is read-only).
/// Value is stored before key; the critical region (lock word, value,
/// key) commits atomically.
pub(crate) fn emit_map_put(
    b: &mut FuncBuilder,
    lay: &MapLayout,
    key: Reg,
    shard: Reg,
    s: [Reg; 4],
) {
    lay.assert_pow2();
    let [s0, s1, s2, s3] = s;
    emit_slot_addr_and_lock(b, lay, key, shard, s0, s1, s2, s3);
    b.lock_acquire(s1);
    b.alu_imm(AluOp::Add, s2, key, 0);
    super::emit_mix(b, s2, s3);
    b.alu_imm(AluOp::Xor, s2, s2, VAL_TAG as i64);
    b.store(s2, s0, 8); // value first …
    b.store(key, s0, 0); // … key publishes the pair
    b.lock_release(s1);
}

/// Emits a locked, self-validating get of `key`: loads the occupying
/// pair and raises the error flag at `[err + 0]` if the value does not
/// match the occupying key. Leaves the builder in a fresh
/// continuation block.
pub(crate) fn emit_map_get_validate(
    b: &mut FuncBuilder,
    lay: &MapLayout,
    key: Reg,
    shard: Reg,
    err: Reg,
    s: [Reg; 4],
) {
    let [s0, s1, s2, s3] = s;
    emit_slot_addr_and_lock(b, lay, key, shard, s0, s1, s2, s3);
    b.lock_acquire(s1);
    b.load(s2, s0, 0); // occupying key
    b.load(s3, s0, 8); // its value
    super::emit_mix(b, s2, s0); // expected value of the occupying key
    b.alu_imm(AluOp::Xor, s2, s2, VAL_TAG as i64);
    let bad = b.new_block();
    let ok = b.new_block();
    b.branch_reg(Cond::Ne, s3, s2, bad, ok);
    b.switch_to(bad);
    b.store(key, err, 0);
    b.jump(ok);
    b.switch_to(ok);
    b.lock_release(s1);
    let cont = b.new_block();
    b.jump(cont);
    b.switch_to(cont);
}

/// Shared addressing: leaves the slot address in `s0` and the stripe
/// lock address in `s1` (clobbers `s2`, `s3`).
#[allow(clippy::too_many_arguments)]
fn emit_slot_addr_and_lock(
    b: &mut FuncBuilder,
    lay: &MapLayout,
    key: Reg,
    shard: Reg,
    s0: Reg,
    s1: Reg,
    s2: Reg,
    s3: Reg,
) {
    let spt = lay.slots_per_shard();
    b.alu_imm(AluOp::And, s0, key, lay.buckets as i64 - 1); // bucket
    b.alu_imm(AluOp::And, s1, s0, lay.locks as i64 - 1);
    b.alu_imm(AluOp::Shl, s1, s1, 6);
    b.alu_imm(AluOp::Add, s1, s1, layout::lock_addr(lay.lock0) as i64);
    b.alu_imm(AluOp::Shr, s2, key, 32);
    b.alu_imm(AluOp::And, s2, s2, spt as i64 - 1); // hash slot
    b.alu_imm(AluOp::Shl, s3, shard, spt.trailing_zeros() as i64);
    b.alu(AluOp::Add, s3, s3, s2);
    b.alu_imm(
        AluOp::Shl,
        s0,
        s0,
        lay.slots_per_bucket.trailing_zeros() as i64,
    );
    b.alu(AluOp::Add, s0, s0, s3);
    b.alu_imm(AluOp::Shl, s0, s0, 4);
    b.alu_imm(AluOp::Add, s0, s0, lay.base as i64);
}

/// One op of a thread's replayed stream.
#[derive(Clone, Copy, Debug)]
pub enum MapOp {
    /// Insert/overwrite `key` (value is implied).
    Put {
        /// The derived key.
        key: u64,
    },
    /// Re-read and validate the `target`-th earlier put of the same
    /// thread.
    Get {
        /// Index into the thread's put sequence.
        target: usize,
    },
}

/// A standalone sharded-map workload: `threads` writers, each running
/// `ops_per_thread` puts/gets (3:1) against its own shard of a shared
/// bucketed table, with bucket-striped locks contended across threads.
#[derive(Clone, Copy, Debug)]
pub struct DurableMapSpec {
    /// Writer threads (one shard each).
    pub threads: usize,
    /// Buckets (power of two).
    pub buckets: usize,
    /// Slots per bucket (power of two, divisible by `threads`).
    pub slots_per_bucket: usize,
    /// Lock stripes (power of two).
    pub locks: usize,
    /// Ops per thread.
    pub ops_per_thread: u64,
}

impl DurableMapSpec {
    /// The table layout this spec drives.
    pub fn layout(&self) -> MapLayout {
        MapLayout {
            base: layout::HEAP_BASE,
            buckets: self.buckets,
            slots_per_bucket: self.slots_per_bucket,
            shards: self.threads,
            lock0: 0,
            locks: self.locks,
        }
    }

    /// Private progress area of thread `t`: puts counter at +0, gets
    /// counter at +8, error flag at +16.
    pub fn priv_addr(&self, t: usize) -> u64 {
        let lay = self.layout();
        lay.base + lay.table_bytes() + t as u64 * 64
    }

    /// The key of thread `t`'s `j`-th put.
    pub fn key(&self, t: usize, j: u64) -> u64 {
        mix64((((t as u64) << 40) | j) ^ MAP_SALT) | 1
    }

    /// Replays thread `t`'s deterministic op stream (the Rust mirror
    /// of the generated IR's LCG and branch structure).
    pub fn ops(&self, t: usize) -> Vec<MapOp> {
        let mut state = mix64(MAP_SALT ^ (t as u64).wrapping_mul(SEED_STRIDE));
        let mut puts = 0u64;
        let mut out = Vec::with_capacity(self.ops_per_thread as usize);
        for _ in 0..self.ops_per_thread {
            state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
            let sel = (state >> 33) & 3;
            if sel == 3 && puts >= 8 {
                let back = 1 + ((state >> 13) & 7);
                out.push(MapOp::Get {
                    target: (puts - back) as usize,
                });
            } else {
                out.push(MapOp::Put {
                    key: self.key(t, puts),
                });
                puts += 1;
            }
        }
        out
    }

    /// The shard-slot contents (global slot index → key) after thread
    /// `t` completed `j` puts.
    fn shard_state(&self, t: usize, j: usize) -> std::collections::HashMap<usize, u64> {
        let lay = self.layout();
        let mut slots = std::collections::HashMap::new();
        for jj in 0..j as u64 {
            let key = self.key(t, jj);
            slots.insert(lay.slot_index(key, t), key);
        }
        slots
    }

    /// Total puts in thread `t`'s stream.
    pub fn total_puts(&self, t: usize) -> u64 {
        self.ops(t)
            .iter()
            .filter(|o| matches!(o, MapOp::Put { .. }))
            .count() as u64
    }

    /// True if the durable shard of `t` equals `state`.
    fn shard_matches(
        &self,
        pm: &Memory,
        t: usize,
        state: &std::collections::HashMap<usize, u64>,
    ) -> bool {
        let lay = self.layout();
        let spt = lay.slots_per_shard();
        for b in 0..lay.buckets {
            for s in 0..spt {
                let idx = b * lay.slots_per_bucket + t * spt + s;
                let key = pm.read_word(lay.slot_addr(idx));
                if key != state.get(&idx).copied().unwrap_or(0) {
                    return false;
                }
            }
        }
        true
    }
}

impl RecoverableDs for DurableMapSpec {
    fn name(&self) -> &'static str {
        "durable-map"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    /// Register use: r1 LCG state, r2 op index, r5 puts counter,
    /// r6 key scratch, r7–r10 put/get scratch, r11 gets counter,
    /// r12 private area base, r13/r14 selector scratch.
    fn program(&self) -> Program {
        let lay = self.layout();
        lay.assert_pow2();
        assert!(self.slots_per_bucket.is_multiple_of(self.threads));
        let mut b = FuncBuilder::new("durable_map");
        let (state, opi, puts, key) = (Reg::R1, Reg::R2, Reg::R5, Reg::R6);
        let scratch = [Reg::R7, Reg::R8, Reg::R9, Reg::R10];
        let (gets, privr, sel) = (Reg::R11, Reg::R12, Reg::R13);

        // state = mix64(MAP_SALT ^ tid * SEED_STRIDE)
        b.alu_imm(AluOp::Mul, state, Reg::R0, SEED_STRIDE as i64);
        b.alu_imm(AluOp::Xor, state, state, MAP_SALT as i64);
        super::emit_mix(&mut b, state, Reg::R14);
        b.alu_imm(AluOp::Shl, privr, Reg::R0, 6);
        let priv_base = lay.base + lay.table_bytes();
        b.alu_imm(AluOp::Add, privr, privr, priv_base as i64);
        b.mov_imm(opi, 0);
        b.mov_imm(puts, 0);
        b.mov_imm(gets, 0);

        let header = b.new_block();
        let maybe_get = b.new_block();
        let put_blk = b.new_block();
        let get_blk = b.new_block();
        let latch = b.new_block();
        let done = b.new_block();
        b.hint_trip_count(header, self.ops_per_thread.min(u32::MAX as u64) as u32);
        b.jump(header);

        b.switch_to(header);
        b.alu_imm(AluOp::Mul, state, state, LCG_A as i64);
        b.alu_imm(AluOp::Add, state, state, LCG_C as i64);
        b.alu_imm(AluOp::Shr, sel, state, 33);
        b.alu_imm(AluOp::And, sel, sel, 3);
        b.branch_imm(Cond::Eq, sel, 3, maybe_get, put_blk);

        b.switch_to(maybe_get);
        b.branch_imm(Cond::Ge, puts, 8, get_blk, put_blk);

        // Put: key = mix64(((tid << 40) | puts) ^ SALT) | 1.
        b.switch_to(put_blk);
        b.alu_imm(AluOp::Shl, key, Reg::R0, 40);
        b.alu(AluOp::Or, key, key, puts);
        b.alu_imm(AluOp::Xor, key, key, MAP_SALT as i64);
        super::emit_mix(&mut b, key, scratch[0]);
        b.alu_imm(AluOp::Or, key, key, 1);
        emit_map_put(&mut b, &lay, key, Reg::R0, scratch);
        b.alu_imm(AluOp::Add, puts, puts, 1);
        b.store(puts, privr, 0); // progress publish (next region)
        b.jump(latch);

        // Get: re-derive the key of put (puts - 1 - ((state>>13)&7)).
        b.switch_to(get_blk);
        b.alu_imm(AluOp::Shr, key, state, 13);
        b.alu_imm(AluOp::And, key, key, 7);
        b.alu_imm(AluOp::Add, key, key, 1);
        b.alu(AluOp::Sub, key, puts, key);
        b.alu_imm(AluOp::Shl, sel, Reg::R0, 40);
        b.alu(AluOp::Or, key, sel, key);
        b.alu_imm(AluOp::Xor, key, key, MAP_SALT as i64);
        super::emit_mix(&mut b, key, scratch[0]);
        b.alu_imm(AluOp::Or, key, key, 1);
        b.alu_imm(AluOp::Add, sel, privr, 16); // error-flag address
        emit_map_get_validate(&mut b, &lay, key, Reg::R0, sel, scratch);
        b.alu_imm(AluOp::Add, gets, gets, 1);
        b.store(gets, privr, 8);
        b.jump(latch);

        b.switch_to(latch);
        b.alu_imm(AluOp::Add, opi, opi, 1);
        b.branch_imm(Cond::Ne, opi, self.ops_per_thread as i64, header, done);

        b.switch_to(done);
        b.halt();
        Program::from_single(b.finish())
    }

    fn check_image(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        let lay = self.layout();
        // map-bucket-atomicity: every occupied slot carries the value
        // of its occupying key; a claimed-but-unpublished slot may hold
        // a bare value, but only a value some key of that slot hashes
        // to.
        for idx in 0..lay.buckets * lay.slots_per_bucket {
            let key = pm.read_word(lay.slot_addr(idx));
            let val = pm.read_word(lay.slot_addr(idx) + 8);
            if key != 0 && val != lay.value_of(key) {
                violation(
                    &mut out,
                    "map-bucket-atomicity",
                    format!(
                        "slot {idx}: key {key:#x} with value {val:#x}, want {:#x}",
                        lay.value_of(key)
                    ),
                );
            }
            if key == 0 && val != 0 {
                let candidate = (0..self.threads).any(|t| {
                    (0..self.total_puts(t)).any(|j| {
                        let k = self.key(t, j);
                        lay.slot_index(k, t) == idx && lay.value_of(k) == val
                    })
                });
                if !candidate {
                    violation(
                        &mut out,
                        "map-bucket-atomicity",
                        format!("slot {idx}: empty key with foreign value {val:#x}"),
                    );
                }
            }
        }
        // map-shard-prefix: each shard equals its oracle state after
        // counter or counter+1 puts (the put and its progress publish
        // sit in consecutive regions). Error flags must be clear.
        for t in 0..self.threads {
            let c = pm.read_word(self.priv_addr(t)) as usize;
            let total = self.total_puts(t) as usize;
            if c > total {
                violation(
                    &mut out,
                    "map-shard-prefix",
                    format!("shard {t}: counter {c} exceeds stream total {total}"),
                );
                continue;
            }
            let state = self.shard_state(t, c);
            if !self.shard_matches(pm, t, &state) {
                let mut next = state;
                if c < total {
                    let key = self.key(t, c as u64);
                    next.insert(self.layout().slot_index(key, t), key);
                }
                if !self.shard_matches(pm, t, &next) {
                    violation(
                        &mut out,
                        "map-shard-prefix",
                        format!(
                            "shard {t}: durable slots match neither {c} nor {} applied puts",
                            (c + 1).min(total)
                        ),
                    );
                }
            }
            let err = pm.read_word(self.priv_addr(t) + 16);
            if err != 0 {
                violation(
                    &mut out,
                    "map-bucket-atomicity",
                    format!("shard {t}: in-IR read validation flagged key {err:#x}"),
                );
            }
        }
        out
    }

    fn check_final(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = self.check_image(pm);
        for t in 0..self.threads {
            let total = self.total_puts(t) as usize;
            let c = pm.read_word(self.priv_addr(t)) as usize;
            let gets = pm.read_word(self.priv_addr(t) + 8);
            let want_gets = self.ops_per_thread - total as u64;
            if c != total {
                violation(
                    &mut out,
                    "map-shard-prefix",
                    format!("shard {t}: completed run counted {c} of {total} puts"),
                );
            }
            if gets != want_gets {
                violation(
                    &mut out,
                    "map-shard-prefix",
                    format!("shard {t}: completed run counted {gets} of {want_gets} gets"),
                );
            }
            if !self.shard_matches(pm, t, &self.shard_state(t, total)) {
                violation(
                    &mut out,
                    "map-shard-prefix",
                    format!("shard {t}: final slots diverge from the oracle"),
                );
            }
        }
        out
    }
}
