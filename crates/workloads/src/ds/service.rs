//! Crash-survivable KV/queue service: the composition workload.
//!
//! `clients` client threads drive a durable hash map directly and ship
//! the rest of their operations as requests — through per-client
//! durable rings *and* a per-client durable journal — to one server
//! thread that applies them to its own half of the map. Every word
//! keeps a single writer; every component is one of the structures in
//! this module, so the composed workload inherits their checkers:
//!
//! ```text
//!  client c ──┬─ direct put / get-validate ──► map shard c
//!             ├─ request ring c  ──────────►┐
//!             └─ journal log c   (oracle)   ├─ server ──► map shard
//!                                           ┘   clients + c, acks
//! ```
//!
//! # Op mix (per client, LCG-driven, deterministic)
//!
//! `sel = (state >> 33) & 3`: `0,1` → direct put of the client's next
//! direct key; `2` → locked get-validate of one of its last 8 direct
//! keys (once it has 8); `3` → enqueue the next request key into its
//! ring (flow-controlled on the server's durable `cons`) and append
//! the same record to its journal, publishing both tails after one
//! region boundary. The request body opens with a region boundary of
//! its own: the previous op's publish (ring/journal tails or a
//! counter store) leaves a region open, and the slot overwrite must
//! open a fresh region so its ID postdates the `cons` observation
//! (rule 2 in `ds`, the fresh-region clause).
//!
//! The server loops over rings round-robin: checksum-validate the
//! record (persistent error flag on mismatch), apply the key to map
//! shard `clients + c` under the bucket lock, store the durable ack,
//! region boundary, publish `cons` — so a durable `cons` proves ack,
//! put, and (cross-thread, by the region-ID prefix rule) the client's
//! original record, in that order.
//!
//! # Recovery procedure
//!
//! Each component recovers by its own procedure (trust the counters;
//! see the per-structure docs). The composition adds one fact worth
//! stating: the *journal* is the service's op-stream oracle — after a
//! crash, `journal tail` records per client are durably both in the
//! journal and (by `queue-no-lost-ack` applied at `cons`) applied or
//! reapplicable, and re-applying is idempotent because map values are
//! a pure function of the key.
//!
//! # Invariants checked (all §8)
//!
//! Rings: `queue-records-published`, `queue-no-lost-ack`,
//! `queue-slot-reuse`. Journals: `log-torn-tail`. Map:
//! `map-bucket-atomicity` (whole table), `map-shard-prefix` for client
//! shard `c` against the direct-put counter and for server shard
//! `clients + c` against the ring's durable `cons`.

use super::log::{check_log_area, LogArea, CSUM_TAG};
use super::map::{emit_map_get_validate, emit_map_put, MapLayout, LCG_A, LCG_C, SEED_STRIDE};
use super::queue::{check_ring, RingLayout, ACK_TAG};
use super::{mix64, violation, DsViolation, RecoverableDs};
use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, Memory, Program, Reg};
use std::collections::HashMap;

/// Seeds the per-client LCG.
pub const SVC_SALT: u64 = 0x5E4C_1CE5_0000_0001;
/// Mixed into direct-put keys.
pub const SVC_DKEY_SALT: u64 = 0xD1DE_C7C7_0000_0001;
/// Mixed into request keys.
pub const SVC_RKEY_SALT: u64 = 0x4E0E_57C7_0000_0001;

/// One client's replayed, deterministic op stream.
#[derive(Clone, Debug, Default)]
struct ClientStream {
    /// Direct-put keys, in put order.
    dkeys: Vec<u64>,
    /// Request keys, in enqueue order (also the journal payloads).
    rkeys: Vec<u64>,
    /// Get-validate count.
    gets: u64,
}

/// The crash-survivable KV/queue service workload: `clients` clients
/// plus one server (thread id `clients`). Construct with
/// [`KvServiceSpec::new`], which precomputes the op-stream oracle.
#[derive(Clone, Debug)]
pub struct KvServiceSpec {
    /// Client threads (power of two; one ring, journal, and pair of
    /// map shards each).
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: u64,
    /// Request-ring capacity in slots (power of two).
    pub cap: u64,
    /// Map buckets (power of two).
    pub buckets: usize,
    /// Map slots per bucket (power of two, divisible by `2 * clients`).
    pub slots_per_bucket: usize,
    /// Map lock stripes (power of two).
    pub locks: usize,
    streams: Vec<ClientStream>,
    /// Every value a key hashing to a slot could leave there — for
    /// classifying bare-value (claimed-but-unpublished) slots.
    slot_values: HashMap<usize, Vec<u64>>,
}

impl KvServiceSpec {
    /// Builds the spec and replays every client's op stream once.
    pub fn new(
        clients: usize,
        ops_per_client: u64,
        cap: u64,
        buckets: usize,
        slots_per_bucket: usize,
        locks: usize,
    ) -> Self {
        assert!(clients.is_power_of_two());
        assert!(cap.is_power_of_two());
        let mut spec = Self {
            clients,
            ops_per_client,
            cap,
            buckets,
            slots_per_bucket,
            locks,
            streams: Vec::new(),
            slot_values: HashMap::new(),
        };
        for c in 0..clients {
            let mut s = ClientStream::default();
            let mut state = mix64(SVC_SALT ^ (c as u64).wrapping_mul(SEED_STRIDE));
            for _ in 0..ops_per_client {
                state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                match (state >> 33) & 3 {
                    3 => s.rkeys.push(Self::rkey(c, s.rkeys.len() as u64)),
                    2 if s.dkeys.len() >= 8 => s.gets += 1,
                    _ => s.dkeys.push(Self::dkey(c, s.dkeys.len() as u64)),
                }
            }
            spec.streams.push(s);
        }
        let lay = spec.map_layout();
        for c in 0..clients {
            for &k in &spec.streams[c].dkeys {
                let idx = lay.slot_index(k, c);
                spec.slot_values
                    .entry(idx)
                    .or_default()
                    .push(lay.value_of(k));
            }
            for &k in &spec.streams[c].rkeys {
                let idx = lay.slot_index(k, clients + c);
                spec.slot_values
                    .entry(idx)
                    .or_default()
                    .push(lay.value_of(k));
            }
        }
        spec
    }

    /// Client `c`'s `j`-th direct-put key.
    pub fn dkey(c: usize, j: u64) -> u64 {
        mix64((((c as u64) << 40) | j) ^ SVC_DKEY_SALT) | 1
    }

    /// Client `c`'s `j`-th request key.
    pub fn rkey(c: usize, j: u64) -> u64 {
        mix64((((c as u64) << 40) | j) ^ SVC_RKEY_SALT) | 1
    }

    /// Requests client `c` enqueues over the whole run.
    pub fn reqs(&self, c: usize) -> u64 {
        self.streams[c].rkeys.len() as u64
    }

    /// Direct puts client `c` performs over the whole run.
    pub fn dputs(&self, c: usize) -> u64 {
        self.streams[c].dkeys.len() as u64
    }

    /// Get-validates client `c` performs over the whole run.
    pub fn gets(&self, c: usize) -> u64 {
        self.streams[c].gets
    }

    /// Total requests across all clients (the server's exit count).
    pub fn total_reqs(&self) -> u64 {
        (0..self.clients).map(|c| self.reqs(c)).sum()
    }

    /// Total operations the service performs (client ops plus the
    /// server's request applications).
    pub fn total_ops(&self) -> u64 {
        self.clients as u64 * self.ops_per_client + self.total_reqs()
    }

    /// The shared map table: client `c` writes shard `c`, the server
    /// writes shard `clients + c` for ring `c`.
    pub fn map_layout(&self) -> MapLayout {
        MapLayout {
            base: layout::HEAP_BASE,
            buckets: self.buckets,
            slots_per_bucket: self.slots_per_bucket,
            shards: 2 * self.clients,
            lock0: 0,
            locks: self.locks,
        }
    }

    fn ring_stride(&self) -> u64 {
        (self.cap * 16).next_power_of_two().max(4096)
    }

    fn ack_stride(&self) -> u64 {
        (self.ops_per_client * 8).next_power_of_two().max(4096)
    }

    fn journal_stride(&self) -> u64 {
        (self.ops_per_client * 16).next_power_of_two().max(4096)
    }

    fn rings_base(&self) -> u64 {
        layout::HEAP_BASE + self.map_layout().table_bytes()
    }

    fn acks_base(&self) -> u64 {
        self.rings_base() + self.clients as u64 * self.ring_stride()
    }

    fn journals_base(&self) -> u64 {
        self.acks_base() + self.clients as u64 * self.ack_stride()
    }

    fn meta_base(&self) -> u64 {
        self.journals_base() + self.clients as u64 * self.journal_stride()
    }

    /// Client `c`'s metadata line block (256 B): ring tail at +0,
    /// ring cons at +64, journal tail at +128, direct-put counter at
    /// +192, get counter at +200, client error flag at +208.
    pub fn meta_addr(&self, c: usize) -> u64 {
        self.meta_base() + c as u64 * 256
    }

    /// The server's checksum-validation error flag.
    pub fn server_err_addr(&self) -> u64 {
        self.meta_base() + self.clients as u64 * 256
    }

    /// Client `c`'s request ring, shaped for `queue::check_ring`.
    pub fn ring(&self, c: usize) -> RingLayout {
        RingLayout {
            slot_base: self.rings_base() + c as u64 * self.ring_stride(),
            cap: self.cap,
            records: self.reqs(c),
            tail_addr: self.meta_addr(c),
            cons_addr: self.meta_addr(c) + 64,
            ack_base: self.acks_base() + c as u64 * self.ack_stride(),
        }
    }

    /// Client `c`'s journal, shaped for `log::check_log_area`.
    pub fn journal(&self, c: usize) -> LogArea {
        LogArea {
            rec_base: self.journals_base() + c as u64 * self.journal_stride(),
            tail_addr: self.meta_addr(c) + 128,
            records: self.reqs(c),
        }
    }

    /// Emits the client role (`tid < clients`). Register use: r1 LCG
    /// state, r2 op index, r3 direct puts, r4 gets, r5 requests,
    /// r6 key, r7–r10 map scratch, r11 ring slot base, r12 meta line,
    /// r13 journal cursor, r14 selector/scratch.
    fn emit_client(&self, b: &mut FuncBuilder, entry: lightwsp_ir::BlockId) {
        let lay = self.map_layout();
        let (state, opi, dputs, gets, rseq, key) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        let scratch = [Reg::R7, Reg::R8, Reg::R9, Reg::R10];
        let (ringb, metab, jcur, sel) = (Reg::R11, Reg::R12, Reg::R13, Reg::R14);

        b.switch_to(entry);
        b.alu_imm(AluOp::Mul, state, Reg::R0, SEED_STRIDE as i64);
        b.alu_imm(AluOp::Xor, state, state, SVC_SALT as i64);
        super::emit_mix(b, state, sel);
        b.alu_imm(
            AluOp::Shl,
            ringb,
            Reg::R0,
            self.ring_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, ringb, ringb, self.rings_base() as i64);
        b.alu_imm(AluOp::Shl, metab, Reg::R0, 8);
        b.alu_imm(AluOp::Add, metab, metab, self.meta_base() as i64);
        b.alu_imm(
            AluOp::Shl,
            jcur,
            Reg::R0,
            self.journal_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, jcur, jcur, self.journals_base() as i64);
        b.mov_imm(opi, 0);
        b.mov_imm(dputs, 0);
        b.mov_imm(gets, 0);
        b.mov_imm(rseq, 0);

        let header = b.new_block();
        let nonreq = b.new_block();
        let maybe_get = b.new_block();
        let put_blk = b.new_block();
        let get_blk = b.new_block();
        let req_spin = b.new_block();
        let req_body = b.new_block();
        let latch = b.new_block();
        let done = b.new_block();
        b.hint_trip_count(header, self.ops_per_client.min(u32::MAX as u64) as u32);
        b.jump(header);

        b.switch_to(header);
        b.alu_imm(AluOp::Mul, state, state, LCG_A as i64);
        b.alu_imm(AluOp::Add, state, state, LCG_C as i64);
        b.alu_imm(AluOp::Shr, sel, state, 33);
        b.alu_imm(AluOp::And, sel, sel, 3);
        b.branch_imm(Cond::Eq, sel, 3, req_spin, nonreq);

        b.switch_to(nonreq);
        b.branch_imm(Cond::Eq, sel, 2, maybe_get, put_blk);
        b.switch_to(maybe_get);
        b.branch_imm(Cond::Ge, dputs, 8, get_blk, put_blk);

        // Direct put into shard `tid`.
        b.switch_to(put_blk);
        b.alu_imm(AluOp::Shl, key, Reg::R0, 40);
        b.alu(AluOp::Or, key, key, dputs);
        b.alu_imm(AluOp::Xor, key, key, SVC_DKEY_SALT as i64);
        super::emit_mix(b, key, scratch[0]);
        b.alu_imm(AluOp::Or, key, key, 1);
        emit_map_put(b, &lay, key, Reg::R0, scratch);
        b.alu_imm(AluOp::Add, dputs, dputs, 1);
        b.store(dputs, metab, 192);
        b.jump(latch);

        // Locked get-validate of one of the last 8 direct keys.
        b.switch_to(get_blk);
        b.alu_imm(AluOp::Shr, key, state, 13);
        b.alu_imm(AluOp::And, key, key, 7);
        b.alu_imm(AluOp::Add, key, key, 1);
        b.alu(AluOp::Sub, key, dputs, key);
        b.alu_imm(AluOp::Shl, sel, Reg::R0, 40);
        b.alu(AluOp::Or, key, sel, key);
        b.alu_imm(AluOp::Xor, key, key, SVC_DKEY_SALT as i64);
        super::emit_mix(b, key, scratch[0]);
        b.alu_imm(AluOp::Or, key, key, 1);
        b.alu_imm(AluOp::Add, sel, metab, 208);
        emit_map_get_validate(b, &lay, key, Reg::R0, sel, scratch);
        b.alu_imm(AluOp::Add, gets, gets, 1);
        b.store(gets, metab, 200);
        b.jump(latch);

        // Request: flow-control on the server's durable cons, then
        // write the ring record and the identical journal record, one
        // boundary, publish both tails.
        b.switch_to(req_spin);
        b.load(scratch[0], metab, 64);
        b.alu_imm(AluOp::Add, scratch[0], scratch[0], self.cap as i64);
        b.branch_reg(Cond::Lt, rseq, scratch[0], req_body, req_spin);

        b.switch_to(req_body);
        // Close whatever region the previous op's publish stores left
        // open: the slot overwrite below must open a *fresh* region, so
        // its lazily sampled ID postdates the `cons` observation in
        // `req_spin` (the observe-then-store rule is only sound for a
        // store whose region opens after the observation).
        b.region_boundary();
        b.alu_imm(AluOp::Shl, key, Reg::R0, 40);
        b.alu(AluOp::Or, key, key, rseq);
        b.alu_imm(AluOp::Xor, key, key, SVC_RKEY_SALT as i64);
        super::emit_mix(b, key, scratch[0]);
        b.alu_imm(AluOp::Or, key, key, 1);
        b.alu_imm(AluOp::And, scratch[0], rseq, self.cap as i64 - 1);
        b.alu_imm(AluOp::Shl, scratch[0], scratch[0], 4);
        b.alu(AluOp::Add, scratch[0], scratch[0], ringb);
        b.store(key, scratch[0], 0);
        b.alu_imm(AluOp::Add, scratch[1], rseq, CSUM_TAG as i64);
        b.alu(AluOp::Xor, scratch[1], key, scratch[1]);
        b.store(scratch[1], scratch[0], 8);
        b.store(key, jcur, 0);
        b.store(scratch[1], jcur, 8);
        b.region_boundary();
        b.alu_imm(AluOp::Add, rseq, rseq, 1);
        b.store(rseq, metab, 0);
        b.store(rseq, metab, 128);
        b.alu_imm(AluOp::Add, jcur, jcur, 16);
        b.jump(latch);

        b.switch_to(latch);
        b.alu_imm(AluOp::Add, opi, opi, 1);
        b.branch_imm(Cond::Ne, opi, self.ops_per_client as i64, header, done);
        b.switch_to(done);
        b.halt();
    }

    /// Emits the server role (`tid == clients`). Register use: r1
    /// ring, r2 total applied, r3 ring slot base, r4 ring meta line,
    /// r5 ack base, r7 tail, r8 cons, r9 slot address, r10 key,
    /// r11 csum, r12 scratch, r13 error-flag address, r14 ack address,
    /// r15 target shard, r16–r19 map scratch.
    fn emit_server(&self, b: &mut FuncBuilder, entry: lightwsp_ir::BlockId) {
        let lay = self.map_layout();
        let (ring, total, ringb, metab, ackb) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        let (tail, cons, addr, key, csum, tmp) =
            (Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12);
        let (errr, acka, shard) = (Reg::R13, Reg::R14, Reg::R15);
        let scratch = [Reg::R16, Reg::R17, Reg::R18, Reg::R19];

        b.switch_to(entry);
        b.mov_imm(errr, self.server_err_addr() as i64);
        b.mov_imm(total, 0);
        b.mov_imm(ring, 0);

        let visit = b.new_block();
        let batch = b.new_block();
        let body = b.new_block();
        let bad = b.new_block();
        let ok = b.new_block();
        let next = b.new_block();
        let wrap = b.new_block();
        let done = b.new_block();
        b.jump(visit);

        b.switch_to(visit);
        b.alu_imm(
            AluOp::Shl,
            ringb,
            ring,
            self.ring_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, ringb, ringb, self.rings_base() as i64);
        b.alu_imm(AluOp::Shl, metab, ring, 8);
        b.alu_imm(AluOp::Add, metab, metab, self.meta_base() as i64);
        b.alu_imm(
            AluOp::Shl,
            ackb,
            ring,
            self.ack_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, ackb, ackb, self.acks_base() as i64);
        b.alu_imm(AluOp::Add, shard, ring, self.clients as i64);
        b.load(tail, metab, 0);
        b.load(cons, metab, 64);
        b.jump(batch);

        b.switch_to(batch);
        b.branch_reg(Cond::Lt, cons, tail, body, next);

        b.switch_to(body);
        b.alu_imm(AluOp::And, addr, cons, self.cap as i64 - 1);
        b.alu_imm(AluOp::Shl, addr, addr, 4);
        b.alu(AluOp::Add, addr, addr, ringb);
        b.load(key, addr, 0);
        b.load(csum, addr, 8);
        b.alu_imm(AluOp::Add, tmp, cons, CSUM_TAG as i64);
        b.alu(AluOp::Xor, tmp, key, tmp);
        b.branch_reg(Cond::Ne, csum, tmp, bad, ok);

        b.switch_to(bad);
        b.store(cons, errr, 0);
        b.jump(ok);

        // Apply, ack, publish — in three strictly ordered regions, so
        // a durable cons proves the ack and the map put, and (prefix
        // rule) the client's original record.
        b.switch_to(ok);
        emit_map_put(b, &lay, key, shard, scratch);
        b.alu_imm(AluOp::Xor, tmp, key, ACK_TAG as i64);
        b.alu_imm(AluOp::Shl, acka, cons, 3);
        b.alu(AluOp::Add, acka, acka, ackb);
        b.store(tmp, acka, 0);
        b.region_boundary();
        b.alu_imm(AluOp::Add, cons, cons, 1);
        b.store(cons, metab, 64);
        b.alu_imm(AluOp::Add, total, total, 1);
        b.jump(batch);

        b.switch_to(next);
        b.alu_imm(AluOp::Add, ring, ring, 1);
        b.branch_imm(Cond::Ne, ring, self.clients as i64, visit, wrap);

        b.switch_to(wrap);
        b.mov_imm(ring, 0);
        b.branch_imm(Cond::Ne, total, self.total_reqs() as i64, visit, done);

        b.switch_to(done);
        b.halt();
    }

    /// Shared body of both checkers. `complete` additionally requires
    /// every counter to have reached its oracle total.
    fn check(&self, pm: &Memory, complete: bool) -> Vec<DsViolation> {
        let mut out = Vec::new();
        let lay = self.map_layout();

        for c in 0..self.clients {
            let stream = &self.streams[c];
            // Ring + acks (queue-records-published, queue-no-lost-ack,
            // queue-slot-reuse).
            check_ring(
                pm,
                &self.ring(c),
                &|i| stream.rkeys[i as usize],
                &format!("svc-ring[{c}]"),
                complete,
                &mut out,
            );
            // Journal (log-torn-tail).
            check_log_area(
                pm,
                &self.journal(c),
                &|i| {
                    let p = stream.rkeys[i as usize];
                    (p, p ^ i.wrapping_add(CSUM_TAG))
                },
                &format!("svc-journal[{c}]"),
                complete,
                &mut out,
            );
            // Client shard prefix, anchored by the direct-put counter.
            let dputs = pm.read_word(self.meta_addr(c) + 192) as usize;
            self.check_shard_prefix(pm, c, &stream.dkeys, dputs, "direct", &mut out);
            // Server shard prefix, anchored by the ring's durable cons.
            let cons = pm.read_word(self.meta_addr(c) + 64) as usize;
            self.check_shard_prefix(pm, self.clients + c, &stream.rkeys, cons, "req", &mut out);
            // Client-side in-IR validation flag.
            let err = pm.read_word(self.meta_addr(c) + 208);
            if err != 0 {
                violation(
                    &mut out,
                    "map-bucket-atomicity",
                    format!("svc client {c}: get-validate flagged key {err:#x}"),
                );
            }
            if complete {
                let gets = pm.read_word(self.meta_addr(c) + 200);
                if dputs as u64 != stream.dkeys.len() as u64 || gets != stream.gets {
                    violation(
                        &mut out,
                        "map-shard-prefix",
                        format!(
                            "svc client {c}: finished with {dputs} puts / {gets} gets, \
                             oracle {} / {}",
                            stream.dkeys.len(),
                            stream.gets
                        ),
                    );
                }
            }
        }

        // Whole-table pair validity (map-bucket-atomicity).
        for idx in 0..lay.buckets * lay.slots_per_bucket {
            let key = pm.read_word(lay.slot_addr(idx));
            let val = pm.read_word(lay.slot_addr(idx) + 8);
            if key != 0 && val != lay.value_of(key) {
                violation(
                    &mut out,
                    "map-bucket-atomicity",
                    format!(
                        "svc slot {idx}: key {key:#x} with value {val:#x}, want {:#x}",
                        lay.value_of(key)
                    ),
                );
            }
            if key == 0
                && val != 0
                && !self
                    .slot_values
                    .get(&idx)
                    .is_some_and(|vs| vs.contains(&val))
            {
                violation(
                    &mut out,
                    "map-bucket-atomicity",
                    format!("svc slot {idx}: empty key with foreign value {val:#x}"),
                );
            }
        }

        // Server checksum-validation flag.
        let err = pm.read_word(self.server_err_addr());
        if err != 0 {
            violation(
                &mut out,
                "queue-records-published",
                format!("svc server flagged a torn request record at seq {err}"),
            );
        }
        out
    }

    /// Asserts shard `shard`'s durable slots equal the oracle state
    /// after `k` or `k + 1` of `keys` (the put and its anchoring
    /// counter publish sit in consecutive regions).
    fn check_shard_prefix(
        &self,
        pm: &Memory,
        shard: usize,
        keys: &[u64],
        k: usize,
        what: &str,
        out: &mut Vec<DsViolation>,
    ) {
        if k > keys.len() {
            violation(
                out,
                "map-shard-prefix",
                format!(
                    "svc {what} shard {shard}: counter {k} exceeds stream {}",
                    keys.len()
                ),
            );
            return;
        }
        let lay = self.map_layout();
        let mut state: HashMap<usize, u64> = HashMap::new();
        for &key in &keys[..k] {
            state.insert(lay.slot_index(key, shard), key);
        }
        if self.shard_matches(pm, shard, &state) {
            return;
        }
        if k < keys.len() {
            state.insert(lay.slot_index(keys[k], shard), keys[k]);
            if self.shard_matches(pm, shard, &state) {
                return;
            }
        }
        violation(
            out,
            "map-shard-prefix",
            format!(
                "svc {what} shard {shard}: durable slots match neither {k} nor {} applied puts",
                (k + 1).min(keys.len())
            ),
        );
    }

    /// A clients-only multi-thread variant for exact-mode LRPO
    /// admittance: each client thread runs only its *request path* —
    /// observe `cons`, fresh region, ring record + journal record,
    /// boundary, publish both tails — against its own ring and journal.
    /// Map operations are omitted (their bucket locks are shared words,
    /// outside the extraction domain) and no server runs, so `cons`
    /// keeps its install value and the program is write-disjoint with
    /// no foreign-write reads. Per-client op counts are baked as
    /// immediates from the precomputed streams; requires
    /// `reqs(c) ≤ cap` for every client (no server frees slots).
    pub fn model_program_clients(&self) -> Program {
        for c in 0..self.clients {
            assert!(
                self.reqs(c) <= self.cap,
                "clients-only variant needs reqs({c}) = {} ≤ cap = {} (no server ever \
                 advances cons)",
                self.reqs(c),
                self.cap
            );
        }
        let mut b = FuncBuilder::new("kv_service_clients");
        let (seq, key, tmp, addr, csum, jcur, metab) = (
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
        );
        let bodies: Vec<_> = (0..self.clients).map(|_| b.new_block()).collect();
        // Dispatch chain on the thread id; the last test's else-edge
        // falls through to the last client's body.
        for (c, &body) in bodies.iter().enumerate().take(self.clients - 1) {
            let next = b.new_block();
            b.branch_imm(Cond::Eq, Reg::R0, c as i64, body, next);
            b.switch_to(next);
        }
        let last = self.clients - 1;
        b.jump(bodies[last]);

        for (c, &client_body) in bodies.iter().enumerate() {
            let ring = self.ring(c);
            let journal = self.journal(c);
            let n = self.reqs(c);
            b.switch_to(client_body);
            if n == 0 {
                b.halt();
                continue;
            }
            b.mov_imm(metab, self.meta_addr(c) as i64);
            b.mov_imm(jcur, journal.rec_base as i64);
            b.mov_imm(seq, 0);
            let spin = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.hint_trip_count(spin, n.min(u32::MAX as u64) as u32);
            b.jump(spin);

            // Same observe-then-store discipline as the real client;
            // with no server, `cons` stays at its install value and
            // `reqs ≤ cap` makes the check pass first try.
            b.switch_to(spin);
            b.load(tmp, metab, 64);
            b.alu_imm(AluOp::Add, tmp, tmp, self.cap as i64);
            b.branch_reg(Cond::Lt, seq, tmp, body, spin);

            b.switch_to(body);
            b.region_boundary();
            b.mov_imm(key, ((c as u64) << 40) as i64);
            b.alu(AluOp::Or, key, key, seq);
            b.alu_imm(AluOp::Xor, key, key, SVC_RKEY_SALT as i64);
            super::emit_mix(&mut b, key, tmp);
            b.alu_imm(AluOp::Or, key, key, 1);
            b.alu_imm(AluOp::And, addr, seq, self.cap as i64 - 1);
            b.alu_imm(AluOp::Shl, addr, addr, 4);
            b.alu_imm(AluOp::Add, addr, addr, ring.slot_base as i64);
            b.store(key, addr, 0);
            b.alu_imm(AluOp::Add, csum, seq, CSUM_TAG as i64);
            b.alu(AluOp::Xor, csum, key, csum);
            b.store(csum, addr, 8);
            b.store(key, jcur, 0);
            b.store(csum, jcur, 8);
            b.region_boundary();
            b.alu_imm(AluOp::Add, seq, seq, 1);
            b.store(seq, metab, 0);
            b.store(seq, metab, 128);
            b.alu_imm(AluOp::Add, jcur, jcur, 16);
            b.branch_imm(Cond::Ne, seq, n as i64, spin, done);
            b.switch_to(done);
            b.halt();
        }
        Program::from_single(b.finish())
    }

    fn shard_matches(&self, pm: &Memory, shard: usize, state: &HashMap<usize, u64>) -> bool {
        let lay = self.map_layout();
        let spt = lay.slots_per_shard();
        for b in 0..lay.buckets {
            for s in 0..spt {
                let idx = b * lay.slots_per_bucket + shard * spt + s;
                if pm.read_word(lay.slot_addr(idx)) != state.get(&idx).copied().unwrap_or(0) {
                    return false;
                }
            }
        }
        true
    }
}

impl RecoverableDs for KvServiceSpec {
    fn name(&self) -> &'static str {
        "kv-service"
    }

    fn threads(&self) -> usize {
        self.clients + 1
    }

    fn program(&self) -> Program {
        let mut b = FuncBuilder::new("kv_service");
        let client = b.new_block();
        let server = b.new_block();
        b.branch_imm(Cond::Eq, Reg::R0, self.clients as i64, server, client);
        self.emit_client(&mut b, client);
        self.emit_server(&mut b, server);
        Program::from_single(b.finish())
    }

    fn check_image(&self, pm: &Memory) -> Vec<DsViolation> {
        self.check(pm, false)
    }

    fn check_final(&self, pm: &Memory) -> Vec<DsViolation> {
        self.check(pm, true)
    }

    /// Server batching and client flow control are timing-dependent.
    fn deterministic_final(&self) -> bool {
        false
    }
}
