//! Lock-serialised Treiber stack with a recovery scan.
//!
//! The IR has no compare-and-swap, so the classic lock-free Treiber
//! push loop becomes a lock-serialised one — which is exactly the
//! interesting case for LightWSP: the crash consistency of the
//! structure rests entirely on the simulator's lock protocol
//! (`DESIGN.md`: a boundary is forced before both `LockAcquire` and
//! `LockRelease`, so a critical section — lock-word store plus body
//! stores — is **one region** that commits or discards atomically,
//! and a crash mid-section rolls the acquire back so recovery never
//! inherits a held lock).
//!
//! # Layout
//!
//! ```text
//! HEAD:            top-of-stack node address (0 = empty)  HEAP_BASE
//! arena_base(t):   ops × [value][next]   per-thread node arena
//! pushed_addr(t):  nodes pushed by t     ┐ separate lines,
//! popped_addr(t):  nodes popped by t     ┘ single-writer
//! lock:            layout::lock_addr(0)
//! ```
//!
//! Nodes are never freed or reused: thread `t`'s `i`-th push uses
//! arena node `i`, whose value is `mix64(((t << 32) | i) ^ SALT)` —
//! so a checker can identify any node address's owner and verify its
//! value without replaying interleavings (single-writer rule).
//!
//! # Operations
//!
//! Each thread runs `ops` iterations, choosing push or pop by an LCG
//! (the map's constants). Push: compute the value outside the lock,
//! then under the lock store `[value][next=head]`, link `HEAD`, and
//! bump `pushed[t]` — 5 stores, one atomic region. Pop: under the
//! lock, unlink the head node and bump `popped[t]` (3 stores);
//! popping empty releases and moves on.
//!
//! # Recovery procedure and invariants
//!
//! Because every mutation is one atomic region and lock order equals
//! region-ID order (the next holder's first store follows the previous
//! holder's release), any durable image is an exact prefix of the
//! serialised mutation history: `HEAD`, the counters, and the arenas
//! are mutually consistent. Recovery is therefore a *scan, not a
//! repair*: walk `HEAD` (`stack-reachability`: every link a valid
//! arena node holding its oracle value, acyclic, NUL-terminated) and
//! reconcile the walk length against the counters
//! (`stack-lifo-accounting`: length = Σ pushed − Σ popped, and arena
//! node `i` of thread `t` is non-zero exactly when `i < pushed[t]`).
//! Both checks assume whole-region atomicity, which holds at the
//! default compiler store threshold (32 ≫ 5).

use super::map::{LCG_A, LCG_C, SEED_STRIDE};
use super::{mix64, violation, DsViolation, RecoverableDs};
use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, Memory, Program, Reg};

/// Mixed into `(t << 32) | i` to form node values; also seeds the LCG.
pub const STACK_SALT: u64 = 0x57AC_57AC_0000_0001;

/// A lock-serialised Treiber stack shared by `threads` threads, each
/// performing `ops` push-or-pop operations.
#[derive(Clone, Copy, Debug)]
pub struct TreiberStackSpec {
    /// Worker threads sharing the one stack.
    pub threads: usize,
    /// Operations (push or pop attempts) per thread.
    pub ops: u64,
}

impl TreiberStackSpec {
    /// The head word's address.
    pub fn head_addr(&self) -> u64 {
        layout::HEAP_BASE
    }

    fn arena_stride(&self) -> u64 {
        (self.ops * 16).next_power_of_two().max(4096)
    }

    fn arena0(&self) -> u64 {
        layout::HEAP_BASE + 4096
    }

    /// The arena base of thread `t` (`ops` 16-byte nodes).
    pub fn arena_base(&self, t: usize) -> u64 {
        self.arena0() + t as u64 * self.arena_stride()
    }

    fn counters_base(&self) -> u64 {
        self.arena0() + self.threads as u64 * self.arena_stride()
    }

    /// The push-counter address of thread `t`.
    pub fn pushed_addr(&self, t: usize) -> u64 {
        self.counters_base() + t as u64 * 128
    }

    /// The pop-counter address of thread `t`.
    pub fn popped_addr(&self, t: usize) -> u64 {
        self.counters_base() + t as u64 * 128 + 64
    }

    /// The oracle value of thread `t`'s `i`-th pushed node.
    pub fn value_of(&self, t: usize, i: u64) -> u64 {
        mix64((((t as u64) << 32) | i) ^ STACK_SALT)
    }

    /// Replays thread `t`'s LCG: `true` entries are pushes. Pops are
    /// attempts — whether one succeeds depends on timing.
    pub fn is_push(state: u64) -> bool {
        (state >> 33) & 1 == 0
    }

    fn seed(&self, t: usize) -> u64 {
        mix64(STACK_SALT ^ (t as u64).wrapping_mul(SEED_STRIDE))
    }

    /// The exact number of pushes thread `t` performs (pushes always
    /// succeed; only pops can no-op on empty).
    pub fn pushes_of(&self, t: usize) -> u64 {
        let mut state = self.seed(t);
        let mut n = 0;
        for _ in 0..self.ops {
            state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
            if Self::is_push(state) {
                n += 1;
            }
        }
        n
    }
}

impl RecoverableDs for TreiberStackSpec {
    fn name(&self) -> &'static str {
        "treiber-stack"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    /// Register use: r1 LCG state, r2 op index, r3 pushes, r4 pops,
    /// r5 head, r6 next, r7 node address, r8 value, r9 lock address,
    /// r10 arena base, r11/r12 counter addresses, r13 selector,
    /// r14 scratch, r15 HEAD address.
    fn program(&self) -> Program {
        let mut b = FuncBuilder::new("treiber_stack");
        let (state, opi, pushes, pops) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let (head, next, node, val) = (Reg::R5, Reg::R6, Reg::R7, Reg::R8);
        let (lockr, arena, pushr, popr) = (Reg::R9, Reg::R10, Reg::R11, Reg::R12);
        let (sel, tmp, headr) = (Reg::R13, Reg::R14, Reg::R15);

        // Per-thread constants. The LCG seed is mixed so thread
        // streams are decorrelated despite the shared constants.
        b.alu_imm(AluOp::Mul, state, Reg::R0, SEED_STRIDE as i64);
        b.alu_imm(AluOp::Xor, state, state, STACK_SALT as i64);
        super::emit_mix(&mut b, state, tmp);
        b.mov_imm(opi, 0);
        b.mov_imm(pushes, 0);
        b.mov_imm(pops, 0);
        b.mov_imm(lockr, layout::lock_addr(0) as i64);
        b.mov_imm(headr, self.head_addr() as i64);
        b.alu_imm(
            AluOp::Shl,
            arena,
            Reg::R0,
            self.arena_stride().trailing_zeros() as i64,
        );
        b.alu_imm(AluOp::Add, arena, arena, self.arena0() as i64);
        b.alu_imm(AluOp::Shl, pushr, Reg::R0, 7);
        b.alu_imm(AluOp::Add, pushr, pushr, self.counters_base() as i64);
        b.alu_imm(AluOp::Add, popr, pushr, 64);

        let header = b.new_block();
        let push_blk = b.new_block();
        let pop_blk = b.new_block();
        let pop_take = b.new_block();
        let pop_empty = b.new_block();
        let latch = b.new_block();
        let done = b.new_block();
        b.hint_trip_count(header, self.ops.min(u32::MAX as u64) as u32);
        b.jump(header);

        b.switch_to(header);
        b.alu_imm(AluOp::Mul, state, state, LCG_A as i64);
        b.alu_imm(AluOp::Add, state, state, LCG_C as i64);
        b.alu_imm(AluOp::Shr, sel, state, 33);
        b.alu_imm(AluOp::And, sel, sel, 1);
        b.branch_imm(Cond::Eq, sel, 0, push_blk, pop_blk);

        // Push: value and node address are computed outside the lock;
        // the critical section is 5 stores — atomic at the default
        // region-size threshold.
        b.switch_to(push_blk);
        b.alu_imm(AluOp::Shl, node, pushes, 4);
        b.alu(AluOp::Add, node, node, arena);
        b.alu_imm(AluOp::Shl, val, Reg::R0, 32);
        b.alu(AluOp::Or, val, val, pushes);
        b.alu_imm(AluOp::Xor, val, val, STACK_SALT as i64);
        super::emit_mix(&mut b, val, tmp);
        b.lock_acquire(lockr);
        b.load(head, headr, 0);
        b.store(val, node, 0);
        b.store(head, node, 8);
        b.store(node, headr, 0);
        b.alu_imm(AluOp::Add, pushes, pushes, 1);
        b.store(pushes, pushr, 0);
        b.lock_release(lockr);
        b.jump(latch);

        // Pop: unlink under the lock; empty is a no-op attempt.
        b.switch_to(pop_blk);
        b.lock_acquire(lockr);
        b.load(head, headr, 0);
        b.branch_imm(Cond::Eq, head, 0, pop_empty, pop_take);

        b.switch_to(pop_take);
        b.load(next, head, 8);
        b.store(next, headr, 0);
        b.alu_imm(AluOp::Add, pops, pops, 1);
        b.store(pops, popr, 0);
        b.lock_release(lockr);
        b.jump(latch);

        b.switch_to(pop_empty);
        b.lock_release(lockr);
        b.jump(latch);

        b.switch_to(latch);
        b.alu_imm(AluOp::Add, opi, opi, 1);
        b.branch_imm(Cond::Ne, opi, self.ops as i64, header, done);

        b.switch_to(done);
        b.halt();
        Program::from_single(b.finish())
    }

    fn check_image(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        self.check_consistent(pm, &mut out);
        out
    }

    fn check_final(&self, pm: &Memory) -> Vec<DsViolation> {
        let mut out = Vec::new();
        self.check_consistent(pm, &mut out);
        for t in 0..self.threads {
            let pushed = pm.read_word(self.pushed_addr(t));
            let want = self.pushes_of(t);
            if pushed != want {
                violation(
                    &mut out,
                    "stack-lifo-accounting",
                    format!("thread {t} pushed {pushed}, oracle says {want}"),
                );
            }
        }
        out
    }

    /// Pop-empty outcomes (and hence final registers and counters)
    /// depend on cross-thread timing.
    fn deterministic_final(&self) -> bool {
        false
    }
}

impl TreiberStackSpec {
    /// Maps a node address back to its owning `(thread, index)`.
    fn node_owner(&self, addr: u64) -> Option<(usize, u64)> {
        if addr < self.arena0() || !addr.is_multiple_of(16) {
            return None;
        }
        let off = addr - self.arena0();
        let t = (off / self.arena_stride()) as usize;
        let i = (off % self.arena_stride()) / 16;
        (t < self.threads && i < self.ops).then_some((t, i))
    }

    /// The shared body of both checkers: every durable image is an
    /// exact prefix of the lock-serialised history, so reachability
    /// and accounting must hold at *every* crash point.
    fn check_consistent(&self, pm: &Memory, out: &mut Vec<DsViolation>) {
        // stack-reachability: walk HEAD through valid, oracle-valued,
        // acyclic arena nodes to NUL.
        let mut walk_len: u64 = 0;
        let mut seen = std::collections::HashSet::new();
        let mut cur = pm.read_word(self.head_addr());
        let bound = self.threads as u64 * self.ops + 1;
        while cur != 0 {
            if walk_len >= bound || !seen.insert(cur) {
                violation(
                    out,
                    "stack-reachability",
                    format!("cycle in stack chain at node {cur:#x}"),
                );
                return;
            }
            let Some((t, i)) = self.node_owner(cur) else {
                violation(
                    out,
                    "stack-reachability",
                    format!("head chain reaches non-arena address {cur:#x}"),
                );
                return;
            };
            let v = pm.read_word(cur);
            if v != self.value_of(t, i) {
                violation(
                    out,
                    "stack-reachability",
                    format!(
                        "node {cur:#x} (thread {t} push {i}) holds {v:#x}, oracle {:#x}",
                        self.value_of(t, i)
                    ),
                );
            }
            walk_len += 1;
            cur = pm.read_word(cur + 8);
        }

        // stack-lifo-accounting: counters and arenas agree with the
        // walk. Critical sections are atomic regions, so there is no
        // legal in-flight slack to allow for.
        let mut pushed_total: u64 = 0;
        let mut popped_total: u64 = 0;
        for t in 0..self.threads {
            let pushed = pm.read_word(self.pushed_addr(t));
            let popped = pm.read_word(self.popped_addr(t));
            if pushed > self.ops || popped > self.ops {
                violation(
                    out,
                    "stack-lifo-accounting",
                    format!("thread {t} counters out of range (pushed {pushed}, popped {popped})"),
                );
                continue;
            }
            pushed_total += pushed;
            popped_total += popped;
            for i in 0..self.ops {
                let addr = self.arena_base(t) + i * 16;
                let v = pm.read_word(addr);
                if i < pushed {
                    if v != self.value_of(t, i) {
                        violation(
                            out,
                            "stack-lifo-accounting",
                            format!("thread {t} node {i} torn: {v:#x} despite pushed={pushed}"),
                        );
                    }
                } else if v != 0 || pm.read_word(addr + 8) != 0 {
                    violation(
                        out,
                        "stack-lifo-accounting",
                        format!("thread {t} node {i} written but pushed={pushed}"),
                    );
                }
            }
        }
        if popped_total > pushed_total {
            violation(
                out,
                "stack-lifo-accounting",
                format!("popped {popped_total} exceeds pushed {pushed_total}"),
            );
        } else if walk_len != pushed_total - popped_total {
            violation(
                out,
                "stack-lifo-accounting",
                format!("walk length {walk_len} != pushed {pushed_total} - popped {popped_total}"),
            );
        }
    }
}
