//! Recoverable persistent-memory data structures, authored as IR
//! programs that run under LightWSP's whole-system persistence.
//!
//! Every structure in this module is designed for **crash consistency
//! without any flush or logging code**: the only ordering tools the
//! programs use are the ones §III of the paper actually guarantees —
//! per-thread program order persists as a *prefix at region
//! granularity*, and the globally-survivable set is one contiguous run
//! of region IDs (`RECOVERY.md` §3). From those two facts the module
//! derives three authoring rules, used by every structure and spelled
//! out per structure in `docs/DATASTRUCTURES.md`:
//!
//! 1. **Publish last.** Data words are stored first, the word that
//!    makes them reachable (a log tail, a hash-map key, a queue tail, a
//!    stack head) is stored after a region boundary — so if the publish
//!    is durable, the data it points at is durable too.
//! 2. **Observe, then store — in a fresh region.** A consumer's first
//!    store after observing a published word happens *after* the
//!    producer's data stores executed, so **if that store opens a new
//!    region** its lazily-sampled region ID is larger than the
//!    producer's — and the contiguous-prefix rule then guarantees the
//!    producer's data survives whenever the consumer's
//!    acknowledgement does. The fresh-region clause is load-bearing:
//!    region IDs are sampled at a region's *first* store, so a
//!    dependent store that joins a region left open by an earlier
//!    publish carries an ID that predates the observation, and the
//!    argument collapses. Every observe-then-store site in this
//!    module therefore emits a `region_boundary` between its last
//!    unrelated store and the dependent store. This is the flush-free
//!    cross-thread handoff the delay-free-concurrency literature
//!    builds explicitly; under LightWSP it falls out of the gating
//!    protocol.
//! 3. **Single-writer words.** Every persistent word has exactly one
//!    writing thread (per-producer rings, per-thread arenas, sharded
//!    map slots), so recovered images are checkable against a replayed
//!    op-stream oracle with no interleaving enumeration.
//!
//! The structures (each file documents its layout, recovery procedure,
//! and the `RECOVERY.md` §8 invariants its checker enforces):
//!
//! | module | structure | §8 invariants |
//! |---|---|---|
//! | [`log`] | durable append log, torn-tail detection | `log-torn-tail` |
//! | [`map`] | bucketed durable hash map, sharded slots | `map-bucket-atomicity`, `map-shard-prefix` |
//! | [`queue`] | durable MPSC queue, per-producer rings | `queue-records-published`, `queue-no-lost-ack`, `queue-slot-reuse` |
//! | [`stack`] | lock-serialised Treiber stack, recovery scan | `stack-reachability`, `stack-lifo-accounting` |
//! | [`service`] | KV/queue service composing map+queue+log | all of the above, per component |
//!
//! Checkers run against a post-resolution durable image (what
//! [`lightwsp_ir::Memory`] holds after the WPQ gate flushed and
//! discarded); they are pure functions of the image plus the
//! structure's parameters, so the crash-audit driver can call them at
//! every swept point without resuming.

use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::AluOp;
use lightwsp_ir::Reg;

pub mod log;
pub mod map;
pub mod queue;
pub mod service;
pub mod stack;

/// First multiplier of the 64-bit finalizer hash (Murmur3 fmix64).
pub const MIX_C1: u64 = 0xff51_afd7_ed55_8ccd;
/// Second multiplier of the 64-bit finalizer hash (Murmur3 fmix64).
pub const MIX_C2: u64 = 0xc4ce_b9fe_1a85_ec53;

/// The 64-bit mixing hash every structure derives payloads, checksums
/// and map values from — the exact Rust mirror of the instruction
/// sequence `emit_mix` emits, so oracles can replay program state.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_mul(MIX_C1);
    x ^= x >> 33;
    x = x.wrapping_mul(MIX_C2);
    x ^= x >> 29;
    x
}

/// Emits `reg = mix64(reg)` (clobbers `tmp`). Kept to six
/// straight-line ALU instructions so a hash never spans a region
/// boundary decision.
pub(crate) fn emit_mix(b: &mut FuncBuilder, reg: Reg, tmp: Reg) {
    b.alu_imm(AluOp::Mul, reg, reg, MIX_C1 as i64);
    b.alu_imm(AluOp::Shr, tmp, reg, 33);
    b.alu(AluOp::Xor, reg, reg, tmp);
    b.alu_imm(AluOp::Mul, reg, reg, MIX_C2 as i64);
    b.alu_imm(AluOp::Shr, tmp, reg, 29);
    b.alu(AluOp::Xor, reg, reg, tmp);
}

/// One violated data-structure invariant, found by a checker in a
/// durable image. The `invariant` names match `RECOVERY.md` §8.
#[derive(Clone, Debug)]
pub struct DsViolation {
    /// The violated invariant's normative name (`RECOVERY.md` §8).
    pub invariant: &'static str,
    /// Human-readable specifics (structure, index, got/want values).
    pub detail: String,
}

impl std::fmt::Display for DsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Pushes a violation onto `out` (checker-internal shorthand).
pub(crate) fn violation(out: &mut Vec<DsViolation>, invariant: &'static str, detail: String) {
    out.push(DsViolation { invariant, detail });
}

/// A recoverable PM data structure: an IR program plus the pure image
/// checkers the crash-audit driver calls at every swept point.
///
/// `check_image` must accept **every** durable image the machine can
/// legally produce — any crash point, any region split the compiler's
/// store threshold introduces (the builders assume the default
/// threshold; see each structure's docs). `check_final` additionally
/// assumes the run (golden or recovered) ran to completion.
pub trait RecoverableDs: Sync {
    /// Short stable name (used in reports and `BENCH_ds.json`).
    fn name(&self) -> &'static str;
    /// Software threads the program expects.
    fn threads(&self) -> usize;
    /// Builds the (uninstrumented) IR program; callers compile it with
    /// `lightwsp_compiler::instrument`.
    fn program(&self) -> lightwsp_ir::Program;
    /// Checks the structure's crash-time invariants against a durable
    /// image captured at an arbitrary point.
    fn check_image(&self, pm: &lightwsp_ir::Memory) -> Vec<DsViolation>;
    /// Checks the structure's completed-run state (all ops applied,
    /// counters exact, oracle state reproduced).
    fn check_final(&self, pm: &lightwsp_ir::Memory) -> Vec<DsViolation>;
    /// True when the *entire* final durable image (including per-thread
    /// checkpoint areas) is interleaving-independent, so a recovered
    /// run may be byte-compared against the golden run. Structures
    /// whose thread control flow depends on cross-thread timing (queue
    /// consumer batches, stack pop-empty paths, the service) return
    /// `false` and rely on `check_final` instead.
    fn deterministic_final(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_matches_emitted_sequence() {
        // Golden values pin the Rust mirror; the IR side is exercised
        // end-to-end by every structure's recovery tests.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 0);
        assert_ne!(mix64(1), mix64(2));
        // Pinned golden value of this exact constant/shift sequence.
        assert_eq!(mix64(1), 0xb456_bcf9_cc5c_72b1);
    }
}
