//! # lightwsp-workloads — the 38 synthetic evaluation benchmarks
//!
//! The paper evaluates LightWSP on SPEC CPU2006/2017, STAMP, NPB-CPP,
//! SPLASH-3 and WHISPER (§V-A). Those binaries cannot run on this
//! reproduction's IR, so this crate provides, per the substitution rule
//! in `DESIGN.md`, one **parameterised synthetic workload per paper
//! benchmark** — 38 in total — whose first-order characteristics (store
//! density, working set, locality, loop/call structure, synchronisation
//! rate) are calibrated to the benchmark's published behaviour. See
//! [`gen::WorkloadSpec`] for the knobs and [`suites::all_workloads`] for
//! the roster.
//!
//! ```
//! use lightwsp_workloads::suites;
//!
//! let all = suites::all_workloads();
//! assert_eq!(all.len(), 39); // 38 apps; lbm appears in two suites
//! let lbm = suites::workload("lbm").unwrap();
//! let program = lbm.scaled_to(50_000).generate();
//! assert!(program.static_size() > 0);
//! ```

//!
//! Beyond the calibrated benchmarks, [`ds`] provides a suite of
//! *recoverable PM data structures* (durable log, hash map, MPSC
//! queue, Treiber stack) and a composed crash-survivable KV/queue
//! service, each with documented recovery procedures and pure
//! post-crash image checkers (`docs/DATASTRUCTURES.md`).

#![warn(missing_docs)]

pub mod ds;
pub mod gen;
pub mod suites;

pub use ds::RecoverableDs;
pub use gen::{Suite, WorkloadSpec};
pub use suites::{all_workloads, geomean, memory_intensive, suite_workloads, workload};
