//! The 38 benchmarks of the paper's evaluation (§V-A), as parameterised
//! synthetic workloads.
//!
//! Parameters are calibrated from each benchmark's published first-order
//! characteristics: store density (persist-path pressure), working-set
//! size and locality (cache/DRAM-cache behaviour), call and
//! synchronisation rates (boundary density). Working sets are expressed
//! against the *scaled* cache hierarchy used for the experiments (see
//! `lightwsp-core`): simulations of ~10⁵ instructions per thread cannot
//! exercise a 16 MB L2, so caches and working sets are scaled down
//! together, preserving the ratios that drive the paper's effects —
//! working sets of memory-intensive benchmarks exceed the L2 by the
//! same factor, and cache-resident benchmarks stay resident.

use crate::gen::{Suite, WorkloadSpec};

/// Builds the spec for one benchmark.
#[allow(clippy::too_many_arguments)]
fn spec(
    name: &'static str,
    suite: Suite,
    seed: u64,
    loads: u32,
    stores: u32,
    alu: u32,
    working_set: u64,
    seq_fraction: f64,
    call_every: u32,
    sync_every: u32,
) -> WorkloadSpec {
    let threads = if suite.is_multithreaded() { 8 } else { 1 };
    WorkloadSpec {
        name,
        suite,
        seed,
        loads_per_iter: loads,
        stores_per_iter: stores,
        alu_per_iter: alu,
        working_set,
        seq_fraction,
        phases: 6,
        iters_per_phase: 2000,
        call_every,
        sync_every,
        threads,
        locks: 4,
        seq_stride: 8,
    }
}

/// Marks a workload as a streaming, bandwidth-bound kernel (line-stride
/// sequential walks).
fn streaming(mut w: WorkloadSpec) -> WorkloadSpec {
    w.seq_stride = 64;
    w
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// All Fig. 7 workload entries in paper order (39 entries covering 38
/// distinct applications: `lbm` appears in both CPU2006 and CPU2017).
pub fn all_workloads() -> Vec<WorkloadSpec> {
    use Suite::*;
    vec![
        // ---- SPEC CPU2006 (single-threaded) --------------------------
        spec("bzip2", Cpu2006, 101, 3, 1, 6, 512 * KB, 0.70, 3, 0),
        spec("h264ref", Cpu2006, 102, 3, 1, 8, 128 * KB, 0.85, 2, 0),
        spec("hmmer", Cpu2006, 103, 2, 1, 9, 64 * KB, 0.90, 0, 0),
        streaming(spec("lbm", Cpu2006, 104, 3, 2, 5, 4 * MB, 0.90, 0, 0)),
        streaming(spec(
            "libquantum",
            Cpu2006,
            105,
            1,
            2,
            5,
            4 * MB,
            0.95,
            0,
            0,
        )),
        spec("mcf", Cpu2006, 106, 4, 1, 4, 2 * MB, 0.15, 0, 0),
        streaming(spec("milc", Cpu2006, 107, 3, 2, 6, 3 * MB, 0.70, 0, 0)),
        spec("namd", Cpu2006, 108, 2, 1, 12, 256 * KB, 0.85, 2, 0),
        // ---- SPEC CPU2017 (single-threaded) --------------------------
        spec("deepsjeng", Cpu2017, 201, 3, 1, 7, 256 * KB, 0.55, 3, 0),
        spec("imagick", Cpu2017, 202, 2, 1, 10, MB, 0.85, 2, 0),
        streaming(spec("lbm17", Cpu2017, 203, 3, 2, 5, 4 * MB, 0.90, 0, 0)),
        spec("leela", Cpu2017, 204, 3, 1, 8, 128 * KB, 0.60, 3, 0),
        spec("nab", Cpu2017, 205, 2, 1, 10, 512 * KB, 0.80, 2, 0),
        spec("namd17", Cpu2017, 206, 2, 1, 12, 256 * KB, 0.85, 2, 0),
        spec("xz", Cpu2017, 207, 3, 1, 6, 2 * MB, 0.50, 0, 0),
        // ---- STAMP (multi-threaded) ----------------------------------
        spec("intruder", Stamp, 301, 3, 1, 6, 512 * KB, 0.45, 0, 16),
        spec("labyrinth", Stamp, 302, 3, 2, 6, MB, 0.60, 0, 32),
        spec("ssca2", Stamp, 303, 3, 1, 5, 2 * MB, 0.25, 0, 16),
        spec("vacation", Stamp, 304, 3, 1, 6, MB, 0.40, 0, 16),
        // ---- NPB (multi-threaded) ------------------------------------
        spec("cg", Npb, 401, 3, 1, 7, 2 * MB, 0.45, 0, 64),
        spec("ep", Npb, 402, 2, 1, 14, MB, 0.60, 0, 128),
        spec("is", Npb, 403, 2, 2, 4, 2 * MB, 0.35, 0, 64),
        streaming(spec("ft", Npb, 404, 3, 2, 6, 3 * MB, 0.70, 0, 64)),
        spec("lu", Npb, 405, 3, 1, 8, 2 * MB, 0.55, 0, 64),
        spec("mg", Npb, 406, 3, 1, 7, 3 * MB, 0.60, 0, 64),
        spec("sp", Npb, 407, 3, 1, 8, 2 * MB, 0.60, 0, 64),
        // ---- SPLASH-3 (multi-threaded) -------------------------------
        spec("cholesky", Splash3, 501, 3, 1, 8, 2 * MB, 0.50, 0, 32),
        spec("fft", Splash3, 502, 3, 2, 7, 2 * MB, 0.55, 0, 64),
        spec("radix", Splash3, 503, 2, 2, 4, 2 * MB, 0.30, 0, 64),
        spec("barnes", Splash3, 504, 4, 1, 7, MB, 0.40, 0, 32),
        spec("raytrace", Splash3, 505, 4, 1, 8, 512 * KB, 0.35, 0, 32),
        spec("lu-cg", Splash3, 506, 3, 1, 8, MB, 0.80, 0, 64),
        spec("lu-ncg", Splash3, 507, 3, 1, 8, 2 * MB, 0.50, 0, 64),
        streaming(spec("ocean-cg", Splash3, 508, 3, 2, 6, 3 * MB, 0.70, 0, 64)),
        spec("water-ns", Splash3, 509, 2, 1, 11, MB, 0.60, 0, 32),
        spec("water-sp", Splash3, 510, 2, 1, 11, MB, 0.55, 0, 32),
        // ---- WHISPER (multi-threaded, write-intensive) ---------------
        spec("rb", Whisper, 601, 4, 3, 8, 2 * MB, 0.30, 0, 16),
        spec("tatp", Whisper, 602, 4, 2, 8, MB, 0.35, 0, 16),
        spec("tpcc", Whisper, 603, 4, 3, 9, 2 * MB, 0.30, 0, 16),
    ]
}

/// The workloads of one suite, in figure order.
pub fn suite_workloads(suite: Suite) -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| w.suite == suite)
        .collect()
}

/// Looks up a workload by its paper name.
pub fn workload(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// The memory-intensive subset evaluated in Fig. 9 (PSP vs WSP).
pub fn memory_intensive() -> Vec<WorkloadSpec> {
    ["lbm", "libquantum", "milc", "rb", "tatp", "tpcc"]
        .iter()
        .map(|n| workload(n).expect("known workload"))
        .collect()
}

/// Geometric mean helper used by every figure.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_ir::interp::{Interp, Memory};

    #[test]
    fn workload_roster_matches_fig7() {
        // Fig. 7 plots 39 entries; `lbm` appears in both CPU2006 and
        // CPU2017 (same application, different suite inputs), which is
        // how the paper arrives at "38 applications".
        let all = all_workloads();
        assert_eq!(all.len(), 39, "39 figure entries");
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 39, "entry names must be unique");
        let distinct_apps = names.iter().filter(|n| **n != "lbm17").count();
        assert_eq!(distinct_apps, 38, "38 distinct applications");
    }

    #[test]
    fn suite_partition_matches_paper() {
        assert_eq!(suite_workloads(Suite::Cpu2006).len(), 8);
        assert_eq!(suite_workloads(Suite::Cpu2017).len(), 7);
        assert_eq!(suite_workloads(Suite::Stamp).len(), 4);
        assert_eq!(suite_workloads(Suite::Npb).len(), 7);
        assert_eq!(suite_workloads(Suite::Splash3).len(), 10);
        assert_eq!(suite_workloads(Suite::Whisper).len(), 3);
    }

    #[test]
    fn single_threaded_suites_have_one_thread() {
        for w in all_workloads() {
            if w.suite.is_multithreaded() {
                assert_eq!(w.threads, 8, "{}", w.name);
                assert!(w.sync_every > 0, "{} must synchronise", w.name);
            } else {
                assert_eq!(w.threads, 1, "{}", w.name);
                assert_eq!(w.sync_every, 0, "{} must not take locks", w.name);
            }
        }
    }

    #[test]
    fn memory_intensive_subset_matches_fig9() {
        let names: Vec<&str> = memory_intensive().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["lbm", "libquantum", "milc", "rb", "tatp", "tpcc"]
        );
        // All have working sets beyond the scaled L2 (512 KB).
        for w in memory_intensive() {
            assert!(w.working_set >= MB, "{} must be memory-intensive", w.name);
        }
    }

    #[test]
    fn whisper_is_write_intensive() {
        for w in suite_workloads(Suite::Whisper) {
            assert!(
                w.store_fraction() > 0.10,
                "{} store fraction {:.3}",
                w.name,
                w.store_fraction()
            );
        }
    }

    #[test]
    fn every_workload_generates_and_terminates() {
        for w in all_workloads() {
            let scaled = w.clone().scaled_to(6_000);
            let p = scaled.generate();
            let mut mem = Memory::new();
            let mut t = Interp::new(&p, 0);
            t.run(&p, &mut mem, 5_000_000);
            assert!(t.finished(), "{} did not halt", w.name);
            assert!(!mem.is_empty(), "{} wrote nothing", w.name);
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("lbm").is_some());
        assert!(workload("nonexistent").is_none());
        assert_eq!(workload("tpcc").unwrap().suite, Suite::Whisper);
    }
}
