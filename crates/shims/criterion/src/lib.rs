//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so `[[bench]]` targets
//! (`harness = false`) link against this shim instead. It implements the
//! API subset the repository's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! calibrated-timing loop instead of criterion's statistical machinery.
//!
//! Output format (one line per benchmark, machine-greppable):
//!
//! ```text
//! bench: <name> ... <median> ns/iter (best <best>, iters <n>x<batches>)
//! ```
//!
//! Environment knobs: `BENCH_TARGET_MS` (per-benchmark measurement
//! budget, default 250 ms), `BENCH_BATCHES` (sample count, default 11).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion-compatible).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost (accepted for compatibility;
/// the shim re-runs setup per iteration regardless, outside the timed
/// section).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to group functions.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
    batches: u32,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let target_ms = std::env::var("BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(250u64);
        let batches = std::env::var("BENCH_BATCHES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(11u32);
        // `cargo bench -- <filter>`: first non-flag argument filters
        // benchmark names (substring match), as criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            target: Duration::from_millis(target_ms),
            batches: batches.max(3),
            filter,
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            mode: Mode::Calibrate,
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration: grow the iteration count until one batch costs
        // roughly target/batches.
        let per_batch = self.target / self.batches;
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= per_batch || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (per_batch.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }
        // Measurement: `batches` samples of `iters` iterations.
        b.mode = Mode::Measure;
        let mut samples: Vec<f64> = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples.sort_by(|a, c| a.total_cmp(c));
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "bench: {name:<40} {median:>12.1} ns/iter (best {best:.1}, iters {}x{})",
            b.iters, self.batches
        );
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Calibrate,
    Measure,
}

/// Runs the timed closure; handed to the `bench_function` callback.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let _ = self.mode;
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = t0.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup
    /// runs outside the timed section.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("BENCH_TARGET_MS", "5");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0, "routine never ran");
    }

    #[test]
    fn iter_batched_fresh_input_per_iteration() {
        std::env::set_var("BENCH_TARGET_MS", "5");
        let mut c = Criterion::default();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs, "one setup per routine run");
        assert!(runs > 0);
    }
}
