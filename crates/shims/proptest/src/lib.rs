//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace maps the
//! `proptest` dev-dependency onto this shim. It implements the subset of
//! the proptest API this repository's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges
//!   and tuples up to 12 elements;
//! * [`Just`], [`any`], `prop::collection::vec`, [`prop_oneof!`];
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] and [`TestCaseError`].
//!
//! Differences from upstream: generation is seeded deterministically
//! from the test name (every run explores the same cases — effectively
//! a large table-driven test), there is **no shrinking** (the failing
//! inputs are printed verbatim instead), and `.proptest-regressions`
//! files are ignored.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A failed test case. `?`-compatible with proptest test bodies.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A value generator. Object-safe so [`prop_oneof!`] can box mixed
/// concrete strategies of one `Value` type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinators over [`Strategy`] (kept separate for object safety).
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`StrategyExt::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`] backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A uniform union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % width;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// Whole-domain strategies ([`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Upstream-style `prop::` paths (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, StrategyExt, TestCaseError,
        TestRng,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::StrategyExt::boxed($strategy)),+])
    };
}

/// Asserts `cond`, failing the current case (not panicking) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed ({}:{}): `{:?}` != `{:?}`",
                file!(),
                line!(),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed ({}:{}): `{:?}` != `{:?}`: {}",
                file!(),
                line!(),
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed ({}:{}): `{:?}` == `{:?}`",
                file!(),
                line!(),
                lhs,
                rhs
            )));
        }
    }};
}

/// The proptest test-definition macro: `fn name(arg in strategy, ..)`
/// bodies run once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut __proptest_inputs = ::std::string::String::new();
                $(
                    let __proptest_val = $crate::Strategy::generate(&($strategy), &mut rng);
                    __proptest_inputs.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "),
                        &__proptest_val
                    ));
                    let $arg = __proptest_val;
                )+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        cfg.cases,
                        e,
                        __proptest_inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(v in (0u8..4, 10u8..14).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..18).contains(&v));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u32), Just(5u32), 100u32..110]) {
            prop_assert!(v == 1 || v == 5 || (100..110).contains(&v));
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(any::<u64>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn prop_assert_failure_reports_not_panics() {
        fn inner() -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3, "math {}", "broke");
            Ok(())
        }
        let err = inner().unwrap_err().to_string();
        assert!(err.contains("math broke"), "{err}");
    }
}
