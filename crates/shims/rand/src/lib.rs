//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace maps the `rand` dependency onto this in-repo shim. It
//! implements the small API subset the workload generator uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] — on top of a SplitMix64 core.
//!
//! Determinism is the only contract: the same seed always yields the
//! same stream (workload generation must be reproducible run-to-run and
//! machine-to-machine). The stream intentionally does **not** match
//! upstream rand's ChaCha-based `StdRng`; nothing in this repository
//! depends on the upstream bit stream.

/// Seedable random sources.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling API used by the workload generator.
pub trait Rng {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits → [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let width = (range.end as i128 - range.start as i128) as u128;
        // Modulo bias is ≤ width/2⁶⁴, far below what synthetic workload
        // shaping can observe; determinism is what matters here.
        let r = (self.next_u64() as u128) % width;
        (range.start as i128 + r as i128) as i64
    }
}

/// Random number generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.): passes BigCrush, one u64 of
            // state, and trivially portable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = r.gen_range(0..8);
            assert!((0..8).contains(&v));
        }
        let v = r.gen_range(-5..-4);
        assert_eq!(v, -5);
    }
}
