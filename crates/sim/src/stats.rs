//! Simulation statistics feeding every figure and table of the
//! evaluation (§V).

/// Why a core could not retire in a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Store buffer full — the persist-path back-pressure chain
    /// (SB ← FEB ← path ← WPQ). This is LightWSP's `Twait` (Eq. 1).
    StoreBufferFull,
    /// Outstanding load miss.
    LoadMiss,
    /// Waiting at a region boundary for persistence (Capri
    /// stop-and-wait; PPA store drain). This is PPA's `Twait`.
    BoundaryWait,
    /// Spinning on a lock.
    LockSpin,
}

/// Counters accumulated over one simulation.
///
/// `PartialEq` compares every counter exactly (including the sampled
/// `wpq_mean_occupancy`, whose numerator and denominator are integers in
/// both step modes) — the step-mode parity suite relies on this to
/// assert bit-identical results between `StepMode::Reference` and
/// `StepMode::SkipAhead`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Retired instructions, including compiler instrumentation.
    pub insts: u64,
    /// Retired boundary/checkpoint instructions.
    pub instrumentation_insts: u64,
    /// Retired store-like instructions (persist-path entries).
    pub persist_stores: u64,
    /// Hardware checkpoint-slot repair stores emitted by forced region
    /// closes (timeout / spin / halt), so every synthetic boundary is a
    /// genuine recovery point.
    pub forced_ckpt_stores: u64,
    /// Stall cycles: store buffer full (persist back-pressure).
    pub stall_sb_full: u64,
    /// Stall cycles: load misses.
    pub stall_load_miss: u64,
    /// Stall cycles: boundary persistence waits (Capri/PPA).
    pub stall_boundary_wait: u64,
    /// Stall cycles: lock spinning.
    pub stall_lock_spin: u64,
    /// Regions executed (boundary events, including synthetic ones).
    pub regions: u64,
    /// Regions committed (fully persisted).
    pub regions_committed: u64,
    /// Sum over committed regions of (commit − boundary-issue) cycles.
    pub persist_latency_sum: u64,
    /// Instructions in completed regions (for insts/region, §V-G3).
    pub region_insts_sum: u64,
    /// Stores in completed regions (for stores/region, §V-G3).
    pub region_stores_sum: u64,
    /// WPQ overflow (deadlock fallback) events, §IV-D / §V-F5.
    pub wpq_overflows: u64,
    /// WPQ CAM hits on LLC load misses (Fig. 18).
    pub wpq_load_hits: u64,
    /// DRAM-cache (LLC) load misses that went to PM.
    pub llc_load_misses: u64,
    /// Stale-load hazards observed (snooping disabled only).
    pub stale_loads: u64,
    /// L1 eviction snoops (Table II).
    pub snoops: u64,
    /// L1 eviction snoops that hit a conflicting line (Table II).
    pub snoop_conflicts: u64,
    /// L1 hits aggregated over cores.
    pub l1_hits: u64,
    /// L1 misses aggregated over cores.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM-cache hits.
    pub dram_hits: u64,
    /// DRAM-cache misses.
    pub dram_misses: u64,
    /// Persist-path head-of-line blocked cycles.
    pub hol_blocked_cycles: u64,
    /// Power failures injected.
    pub failures: u64,
    /// Instructions re-executed during recoveries.
    pub reexecuted_insts: u64,
    /// Estimated total exposed persistence latency `Tp` (Eq. 1 input).
    pub tp_estimate: u64,
    /// Mean WPQ occupancy across MCs (entries; sampled every cycle).
    pub wpq_mean_occupancy: f64,
    /// Peak WPQ occupancy across MCs (entries).
    pub wpq_max_occupancy: usize,
    /// I/O operations emitted (§IV-A), including post-failure replays.
    pub io_ops: u64,
}

/// A stat-field value that can round-trip through the store's text
/// record format.
trait StatFieldCodec: Sized {
    fn enc(&self) -> String;
    fn dec(s: &str) -> Result<Self, String>;
}

impl StatFieldCodec for u64 {
    fn enc(&self) -> String {
        self.to_string()
    }
    fn dec(s: &str) -> Result<u64, String> {
        s.parse().map_err(|e| format!("{e}: {s:?}"))
    }
}

impl StatFieldCodec for usize {
    fn enc(&self) -> String {
        self.to_string()
    }
    fn dec(s: &str) -> Result<usize, String> {
        s.parse().map_err(|e| format!("{e}: {s:?}"))
    }
}

impl StatFieldCodec for f64 {
    // Bit-exact round-trip: the step-mode parity suite compares stats
    // with `==`, so a stored record must decode to the identical f64.
    fn enc(&self) -> String {
        format!("{:016x}", self.to_bits())
    }
    fn dec(s: &str) -> Result<f64, String> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("{e}: {s:?}"))
    }
}

/// Generates [`SimStats::encode_record`] / [`SimStats::decode_record`]
/// from one field list. Decode builds a struct literal, so adding a
/// field to [`SimStats`] without extending this list is a compile
/// error — the codec can never silently drop a counter.
macro_rules! sim_stats_codec {
    ($($field:ident),+ $(,)?) => {
        impl SimStats {
            /// Serialises every counter as `name=value` pairs (floats
            /// as hex bit patterns, so decoding is bit-exact).
            pub fn encode_record(&self) -> String {
                let parts: Vec<String> =
                    vec![$(format!(concat!(stringify!($field), "={}"), self.$field.enc())),+];
                parts.join(" ")
            }

            /// Parses [`SimStats::encode_record`] output.
            ///
            /// # Errors
            ///
            /// Describes the first missing or malformed field.
            pub fn decode_record(text: &str) -> Result<SimStats, String> {
                let mut map = std::collections::BTreeMap::new();
                for pair in text.split_whitespace() {
                    let (name, value) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("malformed stat pair {pair:?}"))?;
                    map.insert(name, value);
                }
                Ok(SimStats {
                    $($field: {
                        let raw = map
                            .get(stringify!($field))
                            .ok_or_else(|| format!("missing stat {}", stringify!($field)))?;
                        StatFieldCodec::dec(raw)
                            .map_err(|e| format!("stat {}: {e}", stringify!($field)))?
                    }),+
                })
            }
        }
    };
}

sim_stats_codec!(
    cycles,
    insts,
    instrumentation_insts,
    persist_stores,
    forced_ckpt_stores,
    stall_sb_full,
    stall_load_miss,
    stall_boundary_wait,
    stall_lock_spin,
    regions,
    regions_committed,
    persist_latency_sum,
    region_insts_sum,
    region_stores_sum,
    wpq_overflows,
    wpq_load_hits,
    llc_load_misses,
    stale_loads,
    snoops,
    snoop_conflicts,
    l1_hits,
    l1_misses,
    l2_hits,
    l2_misses,
    dram_hits,
    dram_misses,
    hol_blocked_cycles,
    failures,
    reexecuted_insts,
    tp_estimate,
    wpq_mean_occupancy,
    wpq_max_occupancy,
    io_ops,
);

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Mean dynamic instructions per region (§V-G3; paper: 91.33).
    pub fn insts_per_region(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.region_insts_sum as f64 / self.regions as f64
        }
    }

    /// Mean dynamic stores per region (§V-G3; paper: 11.29).
    pub fn stores_per_region(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.region_stores_sum as f64 / self.regions as f64
        }
    }

    /// Fraction of retired instructions that are compiler
    /// instrumentation (§V-G3; paper: 7.03 %).
    pub fn instrumentation_fraction(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.instrumentation_insts as f64 / self.insts as f64
        }
    }

    /// The `Twait` of Eq. 1 for this scheme: persist-caused stalls.
    pub fn twait(&self) -> u64 {
        self.stall_sb_full + self.stall_boundary_wait
    }

    /// Region-level persistence efficiency (Eq. 1):
    /// `(Tp − Twait) / Tp × 100`.
    pub fn persistence_efficiency(&self) -> f64 {
        if self.tp_estimate == 0 {
            return 100.0;
        }
        let twait = self.twait().min(self.tp_estimate);
        (self.tp_estimate - twait) as f64 / self.tp_estimate as f64 * 100.0
    }

    /// WPQ load hits per million instructions (Fig. 18).
    pub fn wpq_hits_per_minsts(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.wpq_load_hits as f64 / (self.insts as f64 / 1.0e6)
        }
    }

    /// L1 miss rate in percent (Fig. 14).
    pub fn l1_miss_rate_pct(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64 * 100.0
        }
    }

    /// Buffer-conflict rate in permille of snoops (Table II).
    pub fn conflict_rate_permille(&self) -> f64 {
        if self.snoops == 0 {
            0.0
        } else {
            self.snoop_conflicts as f64 / self.snoops as f64 * 1000.0
        }
    }

    /// WPQ overflows per 10 000 instructions (§V-F5).
    pub fn overflows_per_10k_insts(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.wpq_overflows as f64 / (self.insts as f64 / 1.0e4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            insts: 2000,
            instrumentation_insts: 140,
            regions: 20,
            region_insts_sum: 1800,
            region_stores_sum: 220,
            tp_estimate: 1000,
            stall_sb_full: 10,
            wpq_load_hits: 1,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-9);
        assert!((s.insts_per_region() - 90.0).abs() < 1e-9);
        assert!((s.stores_per_region() - 11.0).abs() < 1e-9);
        assert!((s.instrumentation_fraction() - 0.07).abs() < 1e-9);
        assert!((s.persistence_efficiency() - 99.0).abs() < 1e-9);
        assert!((s.wpq_hits_per_minsts() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn record_codec_roundtrips_bit_exactly() {
        let s = SimStats {
            cycles: 123,
            insts: u64::MAX,
            wpq_mean_occupancy: 0.1 + 0.2, // not exactly representable
            wpq_max_occupancy: 17,
            io_ops: 9,
            ..SimStats::default()
        };
        let rec = s.encode_record();
        let d = SimStats::decode_record(&rec).unwrap();
        assert_eq!(d, s);
        assert_eq!(
            d.wpq_mean_occupancy.to_bits(),
            s.wpq_mean_occupancy.to_bits()
        );
        assert!(
            SimStats::decode_record("cycles=1").is_err(),
            "missing fields"
        );
        assert!(SimStats::decode_record(&rec.replace("io_ops=9", "io_ops=x")).is_err());
    }

    #[test]
    fn efficiency_clamps_and_handles_zero() {
        let s = SimStats::default();
        assert_eq!(s.persistence_efficiency(), 100.0);
        let s2 = SimStats {
            tp_estimate: 10,
            stall_boundary_wait: 50,
            ..SimStats::default()
        };
        assert_eq!(s2.persistence_efficiency(), 0.0, "Twait clamped to Tp");
    }
}
