//! Unit tests of the machine: end-to-end execution, scheme behaviours,
//! power failure and recovery.

use crate::config::{Scheme, SimConfig};
use crate::consistency;
use crate::machine::{Completion, Machine};
use lightwsp_compiler::prune::RecoveryRecipes;
use lightwsp_compiler::{instrument, Compiled, CompilerConfig};
use lightwsp_ir::builder::FuncBuilder;
use lightwsp_ir::inst::{AluOp, Cond};
use lightwsp_ir::{layout, Program, Reg};

/// A loop writing `n` array slots, then reading them back into a sum
/// stored at `HEAP_BASE + 0x10000`.
fn array_workload(n: i64) -> Program {
    let mut b = FuncBuilder::new("array");
    let (i, base, v, sum) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    b.mov_imm(base, layout::HEAP_BASE as i64);
    b.mov_imm(sum, 0);
    let wloop = b.new_block();
    let rsetup = b.new_block();
    let rloop = b.new_block();
    let exit = b.new_block();
    b.hint_trip_count(wloop, n as u32);
    b.jump(wloop);
    b.switch_to(wloop);
    b.alu_imm(AluOp::Mul, v, i, 3);
    // Pad with compute so the store rate stays within the 4 GB/s
    // persist path (as real SPEC-class code does).
    for _ in 0..16 {
        b.alu_imm(AluOp::Xor, v, v, 0x11);
    }
    b.store(v, base, 0);
    b.alu_imm(AluOp::Add, base, base, 8);
    b.alu_imm(AluOp::Add, i, i, 1);
    b.branch_imm(Cond::Ne, i, n, wloop, rsetup);
    b.switch_to(rsetup);
    b.mov_imm(i, 0);
    b.mov_imm(base, layout::HEAP_BASE as i64);
    b.jump(rloop);
    b.switch_to(rloop);
    b.load(v, base, 0);
    b.alu(AluOp::Add, sum, sum, v);
    b.alu_imm(AluOp::Add, base, base, 8);
    b.alu_imm(AluOp::Add, i, i, 1);
    b.branch_imm(Cond::Ne, i, n, rloop, exit);
    b.switch_to(exit);
    b.mov_imm(base, (layout::HEAP_BASE + 0x10000) as i64);
    b.store(sum, base, 0);
    b.halt();
    Program::from_single(b.finish())
}

/// A lock-protected shared counter: each thread adds its tid+1 into a
/// shared word `iters` times (commutative → deterministic final value).
fn locked_counter_workload(iters: i64) -> Program {
    let mut b = FuncBuilder::new("counter");
    let (i, lockr, sharedr, v) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    b.mov_imm(lockr, layout::lock_addr(0) as i64);
    b.mov_imm(sharedr, (layout::HEAP_BASE + 0x8000) as i64);
    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);
    b.lock_acquire(lockr);
    b.load(v, sharedr, 0);
    b.alu(AluOp::Add, v, v, Reg::R0); // += tid
    b.alu_imm(AluOp::Add, v, v, 1); // += 1
    b.store(v, sharedr, 0);
    b.lock_release(lockr);
    b.alu_imm(AluOp::Add, i, i, 1);
    b.branch_imm(Cond::Ne, i, iters, body, exit);
    b.switch_to(exit);
    b.halt();
    Program::from_single(b.finish())
}

fn compile(p: &Program) -> Compiled {
    instrument(p, &CompilerConfig::default())
}

fn uninstrumented(p: &Program) -> Compiled {
    Compiled {
        program: p.clone(),
        recipes: RecoveryRecipes::default(),
        stats: Default::default(),
    }
}

fn run_scheme(p: &Program, scheme: Scheme) -> (Completion, Machine) {
    let compiled = if scheme.is_instrumented() {
        compile(p)
    } else {
        uninstrumented(p)
    };
    let cfg = SimConfig::new(scheme);
    let mut m = Machine::new(compiled.program, compiled.recipes, cfg, 1);
    let c = m.run();
    (c, m)
}

#[test]
fn baseline_completes_and_counts() {
    let p = array_workload(64);
    let (c, m) = run_scheme(&p, Scheme::Baseline);
    assert_eq!(c, Completion::Finished);
    let s = m.stats();
    assert!(s.insts > 64 * 8, "loop body instructions retired");
    assert!(s.cycles > 0 && s.ipc() > 0.1);
    // The sum of 3*i for i in 0..64.
    let sum: u64 = (0..64).map(|i| 3 * i).sum();
    assert_eq!(
        m.volatile_contents().read_word(layout::HEAP_BASE + 0x10000),
        sum
    );
}

#[test]
fn lightwsp_completes_drains_and_matches_architectural_state() {
    let p = array_workload(64);
    let (c, m) = run_scheme(&p, Scheme::LightWsp);
    assert_eq!(c, Completion::Finished);
    assert!(m.drained());
    // Drain property: every store persisted.
    let diff = m.pm_contents().first_difference(m.volatile_contents());
    assert_eq!(
        diff, None,
        "PM and architectural state must agree at completion"
    );
    let s = m.stats();
    assert!(s.regions > 0);
    assert_eq!(
        s.regions_committed as i64 - s.regions as i64,
        0,
        "all regions committed"
    );
    assert!(
        s.instrumentation_insts > 0,
        "boundaries + checkpoints retired"
    );
}

#[test]
fn lightwsp_overhead_is_modest() {
    let p = array_workload(256);
    let (_, base) = run_scheme(&p, Scheme::Baseline);
    let (_, lwsp) = run_scheme(&p, Scheme::LightWsp);
    let slowdown = lwsp.stats().cycles as f64 / base.stats().cycles as f64;
    assert!(
        (0.95..1.6).contains(&slowdown),
        "LightWSP slowdown out of plausible range: {slowdown:.3}"
    );
}

#[test]
fn capri_waits_at_boundaries() {
    let p = array_workload(128);
    let (c, m) = run_scheme(&p, Scheme::Capri);
    assert_eq!(c, Completion::Finished);
    assert!(
        m.stats().stall_boundary_wait > 0,
        "stop-and-wait must stall"
    );
    // Capri should be slower than LightWSP on a store-heavy loop.
    let (_, lwsp) = run_scheme(&p, Scheme::LightWsp);
    assert!(m.stats().cycles > lwsp.stats().cycles);
}

#[test]
fn ppa_stalls_at_implicit_boundaries() {
    let p = array_workload(256);
    let (c, m) = run_scheme(&p, Scheme::Ppa);
    assert_eq!(c, Completion::Finished);
    assert!(m.stats().regions > 0, "PRF-bounded regions delineated");
    assert!(m.stats().stall_boundary_wait > 0);
}

#[test]
fn cwsp_completes_without_ordering_stalls() {
    let p = array_workload(128);
    let (c, m) = run_scheme(&p, Scheme::Cwsp);
    assert_eq!(c, Completion::Finished);
    assert_eq!(m.stats().stall_boundary_wait, 0, "speculation never waits");
}

#[test]
fn psp_ideal_pays_pm_latency() {
    // Working set larger than L2 → the read-back pass hits the DRAM
    // cache under the baseline but pays PM latency under ideal PSP.
    let p = array_workload(16384); // 128 KB array
    let shrink = |mut cfg: SimConfig| {
        cfg.mem.l2_bytes = 32 * 1024;
        cfg.mem.l1_bytes = 8 * 1024;
        cfg
    };
    let compiled = uninstrumented(&p);
    let mut base = Machine::new(
        compiled.program.clone(),
        compiled.recipes.clone(),
        shrink(SimConfig::new(Scheme::Baseline)),
        1,
    );
    assert_eq!(base.run(), Completion::Finished);
    let mut psp = Machine::new(
        compiled.program.clone(),
        compiled.recipes,
        shrink(SimConfig::new(Scheme::PspIdeal)),
        1,
    );
    assert_eq!(psp.run(), Completion::Finished);
    let slowdown = psp.stats().cycles as f64 / base.stats().cycles as f64;
    assert!(
        slowdown > 1.2,
        "PSP slowdown {slowdown:.3} should be significant"
    );
}

#[test]
fn lightwsp_efficiency_is_high_single_thread() {
    let p = array_workload(256);
    let (_, m) = run_scheme(&p, Scheme::LightWsp);
    let eff = m.stats().persistence_efficiency();
    assert!(
        eff > 95.0,
        "LRPO should hide nearly all persistence: {eff:.2}%"
    );
}

#[test]
fn region_stats_are_sane() {
    let p = array_workload(256);
    let (_, m) = run_scheme(&p, Scheme::LightWsp);
    let s = m.stats();
    let ipr = s.insts_per_region();
    let spr = s.stores_per_region();
    assert!(ipr > 1.0 && ipr < 500.0, "insts/region {ipr}");
    assert!(
        (1.0..=33.0).contains(&spr),
        "stores/region {spr} bounded by threshold"
    );
}

#[test]
fn power_failure_recovery_single_thread() {
    let p = array_workload(64);
    let compiled = compile(&p);
    let cfg = SimConfig::new(Scheme::LightWsp);
    let report = consistency::check_crash_consistency(&compiled, &cfg, 1, &[300]).unwrap();
    assert!(report.failures <= 1);
    assert!(report.words_compared > 64);
}

#[test]
fn power_failure_recovery_many_failure_points() {
    let p = array_workload(48);
    let compiled = compile(&p);
    let cfg = SimConfig::new(Scheme::LightWsp);
    // Hammer the run with failures every 300 cycles.
    let points: Vec<u64> = (1..30).map(|i| i * 300).collect();
    let report = consistency::check_crash_consistency(&compiled, &cfg, 1, &points).unwrap();
    assert!(report.failures >= 2, "expected several injected failures");
}

#[test]
fn power_failure_immediately_after_start() {
    let p = array_workload(32);
    let compiled = compile(&p);
    let cfg = SimConfig::new(Scheme::LightWsp);
    let report = consistency::check_crash_consistency(&compiled, &cfg, 1, &[1, 2, 3]).unwrap();
    assert!(report.failures >= 1);
}

#[test]
fn multithreaded_locked_counter_is_consistent() {
    let p = locked_counter_workload(8);
    let compiled = compile(&p);
    let threads = 4;
    let cfg = SimConfig::new(Scheme::LightWsp).with_cores(4);
    let mut m = Machine::new(
        compiled.program.clone(),
        compiled.recipes.clone(),
        cfg.clone(),
        threads,
    );
    assert_eq!(m.run(), Completion::Finished);
    // Σ over threads of iters*(tid+1).
    let expect: u64 = (0..threads as u64).map(|t| 8 * (t + 1)).sum();
    let shared = layout::HEAP_BASE + 0x8000;
    assert_eq!(m.volatile_contents().read_word(shared), expect);
    assert_eq!(m.pm_contents().read_word(shared), expect, "persisted too");
}

#[test]
fn multithreaded_crash_recovery() {
    let p = locked_counter_workload(6);
    let compiled = compile(&p);
    let cfg = SimConfig::new(Scheme::LightWsp).with_cores(4);
    let report =
        consistency::check_crash_consistency(&compiled, &cfg, 4, &[150, 350, 600]).unwrap();
    assert!(report.failures >= 1);
}

#[test]
fn more_threads_than_cores_multiplexes() {
    let p = locked_counter_workload(3);
    let compiled = compile(&p);
    let cfg = SimConfig::new(Scheme::LightWsp).with_cores(2);
    let mut m = Machine::new(compiled.program, compiled.recipes, cfg, 6);
    assert_eq!(m.run(), Completion::Finished);
    let expect: u64 = (0..6u64).map(|t| 3 * (t + 1)).sum();
    assert_eq!(
        m.volatile_contents().read_word(layout::HEAP_BASE + 0x8000),
        expect
    );
}

#[test]
fn wpq_hit_rate_is_low() {
    let p = array_workload(512);
    let (_, m) = run_scheme(&p, Scheme::LightWsp);
    // The paper reports ~0.039 hits per million instructions; our
    // workloads should also be well under one per thousand.
    assert!(m.stats().wpq_hits_per_minsts() < 10_000.0);
}

#[test]
fn smaller_wpq_is_not_faster() {
    let p = array_workload(512);
    let compiled = compile(&p);
    let mut small = SimConfig::new(Scheme::LightWsp);
    small.mem = small.mem.with_wpq_entries(16);
    let mut m_small = Machine::new(compiled.program.clone(), compiled.recipes.clone(), small, 1);
    assert_eq!(m_small.run(), Completion::Finished);

    let big = SimConfig::new(Scheme::LightWsp);
    let mut m_big = Machine::new(compiled.program.clone(), compiled.recipes, big, 1);
    assert_eq!(m_big.run(), Completion::Finished);
    assert!(m_small.stats().cycles >= m_big.stats().cycles);
}

#[test]
fn lower_persist_bandwidth_is_not_faster() {
    let p = array_workload(512);
    let compiled = compile(&p);
    let mut slow = SimConfig::new(Scheme::LightWsp);
    slow.mem = slow.mem.with_persist_bandwidth_gbps(1);
    let mut m_slow = Machine::new(compiled.program.clone(), compiled.recipes.clone(), slow, 1);
    assert_eq!(m_slow.run(), Completion::Finished);

    let fast = SimConfig::new(Scheme::LightWsp);
    let mut m_fast = Machine::new(compiled.program.clone(), compiled.recipes, fast, 1);
    assert_eq!(m_fast.run(), Completion::Finished);
    assert!(m_slow.stats().cycles >= m_fast.stats().cycles);
}

#[test]
fn recovery_report_accounts_for_the_protocol() {
    let p = array_workload(96);
    let compiled = compile(&p);
    let cfg = SimConfig::new(Scheme::LightWsp);
    let mut m = Machine::new(compiled.program, compiled.recipes, cfg, 1);
    m.run_until(400);
    let report = m.inject_power_failure();
    // Survivable regions are a contiguous ascending prefix.
    for w in report.survivable_regions.windows(2) {
        assert_eq!(w[1], w[0] + 1, "survivable set must be contiguous");
    }
    assert_eq!(report.resume_points.len(), 1);
    // Whatever was flushed or discarded, the counts are consistent with
    // a drained WPQ afterwards.
    assert!(m.drained() || !m.all_halted());
    assert_eq!(m.run(), Completion::Finished);
}

#[test]
fn disabling_lrpo_is_never_faster() {
    // The §III-B strawman: stall at every boundary until the region
    // commits. LRPO exists to beat exactly this.
    let p = array_workload(256);
    let compiled = compile(&p);
    let lazy_cfg = SimConfig::new(Scheme::LightWsp);
    let mut lazy = Machine::new(
        compiled.program.clone(),
        compiled.recipes.clone(),
        lazy_cfg.clone(),
        1,
    );
    assert_eq!(lazy.run(), Completion::Finished);

    let mut eager_cfg = lazy_cfg;
    eager_cfg.disable_lrpo = true;
    let mut eager = Machine::new(compiled.program, compiled.recipes, eager_cfg, 1);
    assert_eq!(eager.run(), Completion::Finished);
    assert!(
        eager.stats().cycles > lazy.stats().cycles,
        "sfence-per-boundary ({}) must cost more than LRPO ({})",
        eager.stats().cycles,
        lazy.stats().cycles
    );
    assert!(eager.stats().stall_boundary_wait > 0);
}

/// §IV-A "I/O Functions": a program emitting I/O operations. Each op is
/// preceded by a compiler boundary, so completed regions never replay
/// their I/O, and a power failure replays at most the interrupted
/// operation.
#[test]
fn io_operations_bounded_replay() {
    use lightwsp_ir::inst::AluOp;
    let mut b = lightwsp_ir::builder::FuncBuilder::new("io");
    let (i, base) = (Reg::R1, Reg::R2);
    b.mov_imm(i, 0);
    b.mov_imm(base, layout::HEAP_BASE as i64);
    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);
    b.store(i, base, 0);
    b.io_out(i); // boundary inserted immediately before by the compiler
    b.alu_imm(AluOp::Add, i, i, 1);
    b.alu_imm(AluOp::Add, base, base, 8);
    b.branch_imm(Cond::Ne, i, 20, body, exit);
    b.switch_to(exit);
    b.halt();
    let p = Program::from_single(b.finish());
    let compiled = compile(&p);

    // Failure-free: each value emitted exactly once, in order.
    let cfg = SimConfig::new(Scheme::LightWsp);
    let mut m = Machine::new(
        compiled.program.clone(),
        compiled.recipes.clone(),
        cfg.clone(),
        1,
    );
    assert_eq!(m.run(), Completion::Finished);
    let vals: Vec<u64> = m.io_log().iter().map(|&(_, _, v)| v).collect();
    assert_eq!(vals, (0..20).collect::<Vec<u64>>());

    // With a mid-run failure: every value still appears, in order, and
    // any duplicate is confined to the replay window (values may repeat
    // but never regress below the last persisted operation).
    let mut m = Machine::new(compiled.program, compiled.recipes, cfg, 1);
    m.run_until(400);
    m.inject_power_failure();
    assert_eq!(m.run(), Completion::Finished);
    let vals: Vec<u64> = m.io_log().iter().map(|&(_, _, v)| v).collect();
    // Deduplicated order must be exactly 0..20.
    let mut dedup = vals.clone();
    dedup.dedup();
    let mut strictly: Vec<u64> = dedup.clone();
    strictly.sort_unstable();
    strictly.dedup();
    assert_eq!(
        strictly,
        (0..20).collect::<Vec<u64>>(),
        "all ops performed: {vals:?}"
    );
    // Replay window: values never regress by more than the interrupted
    // region (monotone non-decreasing after dedup within one recovery).
    for w in dedup.windows(2) {
        assert!(
            w[1] >= w[0] || w[1] == 0 || w[1] < 20,
            "order anomaly: {dedup:?}"
        );
    }
}
