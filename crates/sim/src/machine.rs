//! The whole-machine cycle-level simulator.
//!
//! One [`Machine`] owns the functional state (per-thread interpreters +
//! the volatile memory view) and the timing state (cores, caches, store
//! buffers, front-end buffers, persist paths, memory controllers, the
//! region-ordering tracker, and persistent memory). Each call to
//! [`Machine::step_cycle`] advances one 2 GHz cycle:
//!
//! 1. memory controllers flush WPQ entries onto PM channels and the
//!    tracker commits regions whose flush-ACKs completed;
//! 2. each core moves its persist machinery: path head → WPQ (boundary
//!    tokens must enter *every* WPQ), front-end buffer → path (bandwidth
//!    gate), store buffer → L1 + front-end buffer;
//! 3. each core retires up to `width` instructions from its active
//!    thread, stalling on load misses, full store buffers (the persist
//!    back-pressure chain), Capri/PPA boundary waits, or lock spins.
//!
//! Two liveness mechanisms keep the global flush frontier moving in
//! multi-threaded runs, both hardware analogues of §IV-C's region-ID
//! virtualisation: a spinning thread ends its open region at every
//! (backed-off) retry — each retry is a fresh synchronisation point —
//! and any region open longer than `region_timeout` cycles is
//! force-ended. A halting thread broadcasts its trailing region so the
//! frontier can drain past it.
//!
//! Time advances in one of two modes (`StepMode`): the per-cycle
//! reference stepper above, or the default event-driven skip-ahead,
//! which asks every timed component for its `next_event` horizon and
//! jumps straight to the earliest one, accounting the skipped interval's
//! stall cycles and occupancy samples in closed form. The two are
//! bit-identical in every reported statistic and in machine state at
//! every observed cycle (enforced by `tests/step_mode_parity.rs`).

use crate::config::{ExecMode, GatingMutant, Scheme, SimConfig, StepMode};
use crate::stats::SimStats;
use crate::trace::RegionTraceLog;
use lightwsp_compiler::prune::RecoveryRecipes;
use lightwsp_ir::fxhash::FxHashMap;
use lightwsp_ir::reg::NUM_REGS;
use lightwsp_ir::{layout, DecodedProgram, DynEvent, Interp, Memory, Program, Reg, StoreKind};
use lightwsp_mem::cache::{DirectMappedCache, SetAssocCache, VictimPolicy};
use lightwsp_mem::controller::FlushMode;
use lightwsp_mem::front_buffer::FrontBuffer;
use lightwsp_mem::persist_path::{PersistEntry, PersistKind, PersistPath};
use lightwsp_mem::pm::PersistentMemory;
use lightwsp_mem::store_buffer::StoreBuffer;
use lightwsp_mem::wpq::WpqEntry;
use lightwsp_mem::{FailureResolution, MemController, RegionId, RegionTracker};

/// What the §IV-F recovery protocol did at a power failure.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Regions whose boundary had reached every WPQ — flushed on battery
    /// and treated as persisted (steps 1–5).
    pub survivable_regions: Vec<RegionId>,
    /// WPQ entries written to PM during recovery.
    pub entries_flushed: u64,
    /// WPQ entries discarded (unpersisted regions, step 6).
    pub entries_discarded: u64,
    /// Undo-log rollbacks applied (§IV-D overflow fallback).
    pub undo_rolled_back: u64,
    /// Recovery PC of each thread (decoded from its PM checkpoint slot).
    pub resume_points: Vec<lightwsp_ir::ProgramPoint>,
}

/// Everything the crash auditor needs to check the recovery contract
/// (`RECOVERY.md`) against one power failure: the tracker's view of the
/// machine at the instant of the cut, the PM image before battery
/// resolution ran, and each MC's entry-by-entry resolution.
#[derive(Clone, Debug)]
pub struct CrashCapture {
    /// Cycle at which power was cut.
    pub at_cycle: u64,
    /// Commit frontier (oldest uncommitted region) at the cut.
    pub commit_frontier: RegionId,
    /// Highest region ID allocated before the cut.
    pub last_allocated: RegionId,
    /// Ground-truth survivable regions per the §IV-F contract: the
    /// contiguous run from the commit frontier whose boundaries reached
    /// **every** WPQ. Always the tracker's honest answer, even when a
    /// [`GatingMutant`] corrupted what the resolution actually used.
    pub survivable: Vec<RegionId>,
    /// The survivable set the resolution actually used (differs from
    /// [`CrashCapture::survivable`] only under a test-only mutant).
    pub used_survivable: Vec<RegionId>,
    /// Durable PM image at the instant of the cut, before the
    /// battery-backed WPQ resolution wrote anything.
    pub pm_before: Memory,
    /// Each MC's entry-by-entry failure resolution, in MC order.
    pub per_mc: Vec<FailureResolution>,
    /// The step-by-step recovery summary (counts + resume points).
    pub report: RecoveryReport,
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// All threads halted and the persist machinery drained.
    Finished,
    /// The configured cycle cap was reached first.
    MaxCycles,
}

/// Why [`Machine::advance`] stopped — the single termination path shared
/// by [`Machine::run`] and [`Machine::run_until`] in both step modes.
enum Stop {
    /// All threads halted and the persist machinery drained.
    Finished,
    /// `cfg.max_cycles` reached.
    MaxCycles,
    /// The caller's target cycle reached.
    Target,
}

/// Per-thread software state.
#[derive(Clone, Debug)]
struct ThreadCtx {
    interp: Interp,
    /// The open region its stores are tagged with (§IV-B). `None`
    /// between a boundary and the next tagged store: the region ID is
    /// sampled *lazily* at the first store that needs it, so a thread
    /// scheduled out at a boundary never holds an ID that would block
    /// the global flush frontier (the model's realisation of §IV-C's
    /// region-ID virtualisation).
    cur_region: Option<RegionId>,
    region_open_since: u64,
    region_insts: u64,
    region_stores: u64,
    spin_until: u64,
    halted: bool,
}

/// Per-core hardware state.
#[derive(Clone, Debug)]
struct CoreCtx {
    sb: StoreBuffer,
    feb: FrontBuffer,
    path: PersistPath,
    l1: SetAssocCache,
    stall_until: u64,
    /// Capri stop-and-wait: stall until this region commits.
    wait_for_commit: Option<RegionId>,
    /// PPA: stall until every outstanding persist of this core drains.
    wait_outstanding: bool,
    /// Persist entries issued by this core not yet flushed to PM.
    outstanding: u64,
    /// Thread ids assigned to this core (round-robin multiplexed).
    threads: Vec<usize>,
    active: usize,
    /// Cycle of the last thread switch (preemption quantum).
    last_switch: u64,
    /// Boundary-token fan-out progress (which MCs accepted the head).
    bdry_progress: Vec<bool>,
}

/// An opaque point-in-time snapshot of a [`Machine`], captured by
/// [`Machine::snapshot`] and reinstated by [`Machine::restore`]. Taking
/// one is O(components + pages-table) — memory pages are shared
/// copy-on-write with the live machine until either side writes.
#[derive(Clone)]
pub struct MachineSnapshot(Machine);

impl MachineSnapshot {
    /// Materialises an independent machine at the snapshotted state
    /// (equivalent to `restore` onto a scratch machine).
    pub fn to_machine(&self) -> Machine {
        self.0.clone()
    }

    /// The snapshotted cycle.
    pub fn now(&self) -> u64 {
        self.0.now
    }
}

/// The simulated machine.
///
/// `Clone` is a full, independent snapshot of the machine state —
/// caches, buffers, persist path, controllers, tracker, PM, volatile
/// memory, per-thread interpreters, and stats. It is deliberately
/// cheap: the program and recovery recipes stay `Arc`-shared, and both
/// memories ([`Memory`]) are copy-on-write paged, so cloning costs
/// O(components + pages-table), not O(memory footprint). The crash-sweep
/// engine ([`crate::crash::CrashSweeper`]) leans on this to fork a
/// machine at each crash point instead of re-simulating from cycle 0.
#[derive(Clone)]
pub struct Machine {
    cfg: SimConfig,
    program: std::sync::Arc<Program>,
    /// Pre-decoded micro-op image of `program`
    /// ([`ExecMode::Decoded`] only). `Arc`-shared: crash-sweep forks
    /// and clones reuse the same decode, never re-decoding.
    decoded: Option<std::sync::Arc<DecodedProgram>>,
    recipes: std::sync::Arc<RecoveryRecipes>,
    threads: Vec<ThreadCtx>,
    cores: Vec<CoreCtx>,
    l2: SetAssocCache,
    dram: DirectMappedCache,
    mcs: Vec<MemController>,
    tracker: RegionTracker,
    pm: PersistentMemory,
    vmem: Memory,
    now: u64,
    stats: SimStats,
    region_broadcast_at: FxHashMap<RegionId, u64>,
    flushed_scratch: Vec<WpqEntry>,
    /// Region-lifetime trace (enabled via `SimConfig::trace_regions`).
    trace: RegionTraceLog,
    /// Output port log: `(cycle, thread, value)` per executed I/O op.
    /// Survives power failure conceptually as the external world's view;
    /// §IV-A's boundary-before-I/O placement bounds replay to at most
    /// the interrupted operation.
    io_log: Vec<(u64, usize, u64)>,
    /// Shared-resource contention: next-free cycle of the L2 port, the
    /// DRAM-cache bus, and the PM read channels.
    l2_free: u64,
    dram_free: u64,
    pm_read_free: u64,
    /// Skip-ahead scan pacing: consecutive active (non-skippable)
    /// cycles observed, and remaining cycles to step without paying an
    /// event scan. Stepping is the reference semantics, so deferring
    /// scans during long active phases is a pure heuristic — it cannot
    /// change any observable.
    active_streak: u32,
    scan_holdoff: u32,
    /// Machinery-horizon memo for the decoded event-driven loop: the
    /// last [`Machine::machinery_next_event`] result (only cached when
    /// strictly beyond `now + 1`) and the [`Machine::machinery_stamp`]
    /// it was computed under. Pure memoization — reused only while the
    /// stamp proves the machinery untouched, so it cannot change any
    /// observable (cross-checked by a debug assertion in `advance`).
    mach_horizon: u64,
    mach_horizon_stamp: u64,
    /// Bumped by every operation that can change persist-machinery
    /// state: a store-buffer push, a region close, a machinery cycle
    /// ([`Machine::step_cycle`]), and power-failure recovery.
    machinery_stamp: u64,
}

impl Machine {
    /// Builds a machine running `num_threads` copies of `program`'s
    /// entry function (thread id in `r0` differentiates them).
    ///
    /// Accepts the program and recipes either by value or as
    /// pre-shared `Arc`s — the parallel campaign runner compiles each
    /// workload once and hands the same `Arc` to every scheme's
    /// machine, so construction never deep-copies a program.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(
        program: impl Into<std::sync::Arc<Program>>,
        recipes: impl Into<std::sync::Arc<RecoveryRecipes>>,
        cfg: SimConfig,
        num_threads: usize,
    ) -> Machine {
        let program: std::sync::Arc<Program> = program.into();
        let recipes: std::sync::Arc<RecoveryRecipes> = recipes.into();
        assert!(num_threads > 0, "need at least one thread");
        let decoded = match cfg.exec_mode {
            ExecMode::Decoded => Some(std::sync::Arc::new(DecodedProgram::decode(&program))),
            ExecMode::Reference => None,
        };
        let mem = &cfg.mem;
        let mut vmem = Memory::new();
        let mut pm_img = Memory::new();

        // Install-time image: every thread's initial register file and
        // recovery PC are checkpointed so a failure before the first
        // boundary recovers to the program start.
        let mut threads = Vec::with_capacity(num_threads);
        for tid in 0..num_threads {
            let interp = Interp::new(&program, tid);
            for r in Reg::all() {
                let v = interp.reg(r);
                pm_img.write_word(layout::checkpoint_slot(tid, r), v);
                vmem.write_word(layout::checkpoint_slot(tid, r), v);
            }
            let pc = interp.point().encode();
            pm_img.write_word(layout::pc_slot(tid), pc);
            vmem.write_word(layout::pc_slot(tid), pc);
            threads.push(ThreadCtx {
                interp,
                cur_region: None,
                region_open_since: 0,
                region_insts: 0,
                region_stores: 0,
                spin_until: 0,
                halted: false,
            });
        }

        let mut cores: Vec<CoreCtx> = (0..cfg.num_cores)
            .map(|_| CoreCtx {
                sb: StoreBuffer::new(mem.store_buffer_entries),
                feb: FrontBuffer::new(mem.front_buffer_entries, mem.line_bytes),
                path: PersistPath::new(
                    mem.persist_path_latency,
                    mem.persist_path_cycles_per_entry,
                    mem.line_bytes,
                ),
                l1: SetAssocCache::new(mem.l1_sets(), mem.l1_ways, mem.line_bytes),
                stall_until: 0,
                wait_for_commit: None,
                wait_outstanding: false,
                outstanding: 0,
                threads: Vec::new(),
                active: 0,
                last_switch: 0,
                bdry_progress: vec![false; mem.num_mcs],
            })
            .collect();
        for tid in 0..num_threads {
            cores[tid % cfg.num_cores].threads.push(tid);
        }

        let tracker = RegionTracker::new(mem.num_mcs, mem.noc_latency);

        let mut mcs: Vec<MemController> = (0..mem.num_mcs)
            .map(|i| MemController::new(i, mem))
            .collect();
        for mc in &mut mcs {
            mc.set_mode(cfg.scheme.flush_mode());
            if cfg.scheme == Scheme::Cwsp {
                mc.set_extra_write_occupancy(cfg.cwsp_extra_occupancy);
            }
        }

        let mut dram = DirectMappedCache::new(mem.dram_cache_bytes, mem.line_bytes);
        // Pre-size the sparse tag table for the warm working set so
        // neither this machine nor its crash-sweep forks pay incremental
        // rehash-and-grow on first touch.
        let warm_lines: u64 = cfg
            .warm_dram
            .iter()
            .map(|&(start, end)| end.saturating_sub(start).div_ceil(mem.line_bytes))
            .sum();
        dram.reserve_lines(warm_lines);
        for &(start, end) in &cfg.warm_dram {
            dram.prefill_range(start, end);
        }
        Machine {
            l2: SetAssocCache::new(mem.l2_sets(), mem.l2_ways, mem.line_bytes),
            dram,
            mcs,
            tracker,
            pm: PersistentMemory::with_image(pm_img),
            vmem,
            now: 0,
            stats: SimStats::default(),
            region_broadcast_at: FxHashMap::default(),
            flushed_scratch: Vec::new(),
            trace: RegionTraceLog::new(cfg.trace_regions),
            io_log: Vec::new(),
            l2_free: 0,
            dram_free: 0,
            pm_read_free: 0,
            active_streak: 0,
            scan_holdoff: 0,
            mach_horizon: 0,
            mach_horizon_stamp: u64::MAX,
            machinery_stamp: 0,
            threads,
            cores,
            program,
            decoded,
            recipes,
            cfg,
        }
    }

    /// Captures a point-in-time snapshot of the whole machine. Cheap
    /// (COW pages, `Arc`-shared program): O(components + pages-table).
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot(self.clone())
    }

    /// Restores the machine to a previously captured snapshot. The
    /// snapshot is reusable: restoring does not consume it.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        *self = snap.0.clone();
    }

    /// Forks an independent machine at the current state. The fork and
    /// the original share untouched memory pages (copy-on-write) and
    /// the immutable program/recipes; every mutable component is
    /// duplicated, so the two diverge freely from here on.
    pub fn fork(&self) -> Machine {
        self.clone()
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics (cache/queue counters are folded in when a
    /// run completes).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The durable PM contents.
    pub fn pm_contents(&self) -> &Memory {
        self.pm.contents()
    }

    /// The volatile (architectural) memory view.
    pub fn volatile_contents(&self) -> &Memory {
        &self.vmem
    }

    /// The external I/O port log (`(cycle, thread, value)` per emitted
    /// operation, including any §IV-A replays after power failure).
    pub fn io_log(&self) -> &[(u64, usize, u64)] {
        &self.io_log
    }

    /// The region-lifetime trace (empty unless `SimConfig::trace_regions`
    /// is set).
    pub fn region_trace(&self) -> &RegionTraceLog {
        &self.trace
    }

    /// Per-MC WPQ occupancy diagnostics: `(mean, max, inserts)`.
    pub fn wpq_occupancy(&self) -> Vec<(f64, usize, u64)> {
        self.mcs
            .iter()
            .map(|mc| {
                let (inserts, _, _, max) = mc.wpq().stats();
                (mc.wpq().mean_occupancy(), max, inserts)
            })
            .collect()
    }

    /// True once every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Per-thread `(halted, current program point)` snapshot — the
    /// debugging handle for stalled runs (which thread is spinning,
    /// and in which block).
    pub fn thread_points(&self) -> Vec<(bool, lightwsp_ir::ProgramPoint)> {
        self.threads
            .iter()
            .map(|t| (t.halted, t.interp.point()))
            .collect()
    }

    /// Runs until completion (threads halted + persist machinery
    /// drained) or the cycle cap.
    pub fn run(&mut self) -> Completion {
        match self.advance(None) {
            Stop::Finished => Completion::Finished,
            Stop::MaxCycles | Stop::Target => Completion::MaxCycles,
        }
    }

    /// Runs until cycle `target` (or completion, or the `max_cycles`
    /// cap, whichever comes first); returns true if the workload
    /// completed. Lands on exactly cycle `target` when neither
    /// completion nor the cap intervenes — the crash injector relies on
    /// this to cut power at precisely the requested cycle in either
    /// step mode.
    pub fn run_until(&mut self, target: u64) -> bool {
        matches!(self.advance(Some(target)), Stop::Finished)
    }

    /// Replaces the hard cycle cap. The crash auditor uses this to grant
    /// a resumed machine a fresh post-crash budget: `run_until(c)` can
    /// legitimately stop at `c == max_cycles`, and resuming under the
    /// original cap would report a spurious cap hit after zero cycles of
    /// recovered execution.
    pub fn set_max_cycles(&mut self, cap: u64) {
        self.cfg.max_cycles = cap;
    }

    /// The single run loop behind [`Machine::run`] and
    /// [`Machine::run_until`]: checks the caller's target, then
    /// completion, then the `max_cycles` cap, and otherwise advances —
    /// cycle by cycle under [`StepMode::Reference`], or by jumping over
    /// provably-idle intervals under [`StepMode::SkipAhead`]. The skip
    /// destination is clamped to both the target and the cap so the
    /// machine lands on those cycles exactly, never beyond.
    fn advance(&mut self, target: Option<u64>) -> Stop {
        loop {
            if let Some(t) = target {
                if self.now >= t {
                    return Stop::Target;
                }
            }
            if self.all_halted() && self.drained() {
                self.finish_stats();
                return Stop::Finished;
            }
            if self.now >= self.cfg.max_cycles {
                self.finish_stats();
                return Stop::MaxCycles;
            }
            if self.cfg.step_mode == StepMode::SkipAhead {
                if self.decoded.is_some() && self.cfg.scheme.uses_persist_path() {
                    // Decoded engine under a persist-path scheme:
                    // event-driven machinery. (Regular-path schemes
                    // skip this: their per-cycle machinery is a single
                    // store-buffer branch, cheaper than the horizon
                    // scans, so the paced path below wins.) The two
                    // horizons are computed separately so that on
                    // retire-active cycles with no machinery event the
                    // MC/tracker/queue ticks — provable no-ops — are
                    // replaced by the closed-form occupancy sample.
                    // Retire can arm the machinery (a store push, a
                    // region boundary) — every such operation bumps
                    // `machinery_stamp`, so the memoized horizon is
                    // reused only across iterations where the machinery
                    // provably did not move (retire-only cycles and
                    // idle skips). Machinery-before-retire ordering
                    // within a cycle is preserved because a machinery
                    // event due at `now + 1` always routes through the
                    // full `step_cycle` (which bumps the stamp).
                    let soon = self.now + 1;
                    let mach = if self.mach_horizon_stamp == self.machinery_stamp
                        && self.mach_horizon > soon
                    {
                        if cfg!(debug_assertions) {
                            let fresh = self.machinery_next_event();
                            assert_eq!(self.mach_horizon, fresh, "stale machinery horizon memo");
                        }
                        self.mach_horizon
                    } else {
                        let m = self.machinery_next_event();
                        // Cache only future horizons: an active
                        // machinery (`m <= soon`) routes through
                        // `step_cycle`, which re-arms the stamp anyway.
                        if m > soon {
                            self.mach_horizon = m;
                            self.mach_horizon_stamp = self.machinery_stamp;
                        }
                        m
                    };
                    let ret = self.retire_next_event();
                    if ret <= soon {
                        if mach <= soon {
                            self.step_cycle();
                        } else {
                            self.step_cycle_retire_only();
                        }
                        continue;
                    }
                    let limit = target.map_or(self.cfg.max_cycles, |t| t.min(self.cfg.max_cycles));
                    let next = mach.min(ret);
                    let dest = next.saturating_sub(1).min(limit);
                    if dest > self.now {
                        // Cycles strictly before `next` are idle on
                        // both sides; skipped cycles change no state,
                        // so the pre-skip horizons still classify the
                        // landing cycle.
                        self.skip_idle_cycles(dest - self.now);
                        if dest < limit {
                            if mach <= dest + 1 {
                                self.step_cycle();
                            } else {
                                self.step_cycle_retire_only();
                            }
                        }
                        continue;
                    }
                    self.step_cycle();
                    continue;
                }
                // Scan pacing: during a long active phase the event
                // scan returns "step now" every time, so its cost is
                // pure overhead. Back off exponentially (scan every
                // 8th cycle at the cap) — the deferred cycles are
                // stepped for real, which is the reference semantics,
                // so pacing can delay a skip but never corrupt one.
                if self.scan_holdoff > 0 {
                    self.scan_holdoff -= 1;
                    self.step_cycle();
                    continue;
                }
                let next = self.next_interesting_cycle();
                let limit = target.map_or(self.cfg.max_cycles, |t| t.min(self.cfg.max_cycles));
                // Cycles strictly before `next` are idle; land on
                // `next - 1` so the pre-incrementing `step_cycle`
                // executes `next` itself. The clamp is inclusive of
                // `limit` because the reference loop also stops only
                // once `now` reaches the target/cap.
                let dest = next.saturating_sub(1).min(limit);
                if dest > self.now {
                    self.active_streak = 0;
                    self.skip_idle_cycles(dest - self.now);
                    if dest < limit {
                        // The skip deliberately stopped one short of
                        // `next`; execute that known-interesting cycle
                        // without paying a second event scan. Skipped
                        // cycles change no component state, so the
                        // machine cannot have finished during the jump,
                        // and `dest < limit` keeps the target/cap
                        // checks for the loop top.
                        self.step_cycle();
                    }
                    continue;
                }
                self.active_streak = self.active_streak.saturating_add(1);
                self.scan_holdoff = (self.active_streak / 4).min(7);
            }
            self.step_cycle();
        }
    }

    /// The earliest future cycle at which anything observable can
    /// happen: `now + 1` if some component is active right now
    /// (`step_cycle` pre-increments, so with the loop at `now` the next
    /// executed cycle is `now + 1` — active cycles must be stepped for
    /// real, because WPQ insert retries and thread-rotation decisions
    /// have side effects), otherwise the minimum over every component's
    /// `next_event` horizon. Cycles strictly before the returned one are
    /// provably idle: no queue moves, no instruction retires, no
    /// protocol state changes — their only per-cycle effects are the
    /// stall counters and occupancy samples that
    /// [`Machine::skip_idle_cycles`] applies in closed form.
    fn next_interesting_cycle(&mut self) -> u64 {
        self.machinery_next_event().min(self.retire_next_event())
    }

    /// The earliest future cycle at which the persist machinery (store
    /// buffers, front-end buffers, persist paths, region tracker, and
    /// memory controllers) can change state: `now + 1` if something
    /// moves right now, otherwise the minimum of the component
    /// `next_event` horizons. On every cycle strictly before the
    /// returned one, `step_cycle`'s machinery phases are no-ops apart
    /// from the WPQ occupancy sample — the exact property the
    /// skip-ahead core already relies on in [`Machine::skip_idle_cycles`],
    /// and what lets the decoded-mode loop retire instructions without
    /// ticking the machinery ([`Machine::step_cycle_retire_only`]).
    fn machinery_next_event(&mut self) -> u64 {
        let now = self.now;
        let soon = now + 1;
        let mut next = u64::MAX;
        let persist = self.cfg.scheme.uses_persist_path();

        for c in &self.cores {
            if persist {
                // Path head delivery — or a head-of-line retry, which
                // must run every cycle (try_insert arms the §IV-D
                // deadlock detector on each rejection).
                if let Some(t) = c.path.next_event(now) {
                    if t <= soon {
                        return soon;
                    }
                    next = next.min(t);
                }
                // FEB → path, gated by path bandwidth and capacity (a
                // full transit window frees only when the head pops —
                // covered by the head-arrival event above).
                if c.feb.next_event(now).is_some() {
                    if let Some(t) = c.path.issue_ready_at() {
                        if t <= soon {
                            return soon;
                        }
                        next = next.min(t);
                    }
                }
                // SB → L1 + FEB, whenever the FEB admits.
                if c.sb.next_event(now).is_some() && c.feb.has_room() {
                    return soon;
                }
            } else if c.sb.next_event(now).is_some() {
                // Regular-path-only drain: one store per cycle.
                return soon;
            }
        }

        if persist {
            if let Some(t) = self.tracker.next_event() {
                if t <= soon {
                    return soon;
                }
                next = next.min(t);
            }
            let tracker = &self.tracker;
            for mc in &mut self.mcs {
                if let Some(t) = mc.next_event(tracker) {
                    if t <= soon {
                        return soon;
                    }
                    next = next.min(t);
                }
            }
        }
        next
    }

    /// The earliest future cycle at which any core's retire stage does
    /// something: `now + 1` if a thread can retire next cycle, else the
    /// earliest stall expiry / spin wake. Waits cleared only by flush
    /// progress are covered by [`Machine::machinery_next_event`].
    fn retire_next_event(&self) -> u64 {
        let now = self.now;
        let soon = now + 1;
        let mut next = u64::MAX;

        for c in &self.cores {
            // Mirrors `retire_core`'s branch order.
            if c.threads.is_empty() {
                continue;
            }
            if c.stall_until > now {
                next = next.min(c.stall_until);
                continue;
            }
            if let Some(region) = c.wait_for_commit {
                if self.tracker.flush_frontier() > region {
                    return soon; // the wait clears and retire resumes
                }
                continue; // cleared only by MC flush progress
            }
            if c.wait_outstanding {
                if c.outstanding == 0 && c.sb.is_empty() && c.feb.is_empty() && c.path.is_empty() {
                    return soon;
                }
                continue; // cleared only by MC flush completions
            }
            // A runnable thread retires next cycle; spinners wake later.
            // Exception: a single-thread core whose store buffer is full
            // is drain-limited — retire charges exactly one sb-full
            // stall and breaks, with no thread-rotation decision to
            // take (`pick_thread` is side-effect-free for one thread).
            // Those cycles are skippable: the stall accrues in closed
            // form and the unblocking drain is already covered by the
            // FEB/path events above.
            let drain_limited = c.threads.len() == 1 && !c.sb.has_room();
            for &tid in &c.threads {
                let th = &self.threads[tid];
                if th.halted {
                    continue;
                }
                if th.spin_until > soon {
                    next = next.min(th.spin_until);
                    continue;
                }
                if !drain_limited {
                    return soon;
                }
                if th.spin_until > now {
                    // Wakes exactly next cycle; the sb-full stall
                    // series starts there, so don't skip past it.
                    next = next.min(soon);
                }
            }
        }
        next
    }

    /// Jumps `cycles` provably-idle cycles forward, applying their
    /// per-cycle accounting in closed form. Two things accrue during an
    /// idle cycle in the reference stepper: every MC samples its WPQ
    /// occupancy (persist-path schemes tick MCs unconditionally), and
    /// each core's retire stage counts exactly one stall cycle according
    /// to its blocking state. Queue contents, protocol state, and
    /// contention clocks cannot change on an idle cycle, so applying
    /// `cycles` worth of both linearly is bit-identical to stepping.
    fn skip_idle_cycles(&mut self, cycles: u64) {
        debug_assert!(cycles > 0);
        let now = self.now;
        if self.cfg.scheme.uses_persist_path() {
            for mc in &mut self.mcs {
                mc.wpq_mut().sample_occupancy_n(cycles);
            }
        }
        // Branch order mirrors `retire_core`: load-miss stall first,
        // then the boundary waits (Capri commit wait / PPA drain wait).
        for c in &self.cores {
            if c.threads.is_empty() {
                continue;
            }
            if c.stall_until > now {
                debug_assert!(now + cycles < c.stall_until, "skip crossed a stall expiry");
                self.stats.stall_load_miss += cycles;
            } else if let Some(region) = c.wait_for_commit {
                debug_assert!(self.tracker.flush_frontier() <= region);
                self.stats.stall_boundary_wait += cycles;
            } else if c.wait_outstanding {
                self.stats.stall_boundary_wait += cycles;
            } else if c.threads.len() == 1 {
                let th = &self.threads[c.threads[0]];
                if !th.halted && th.spin_until <= now {
                    // A runnable single thread blocked by a full store
                    // buffer (the only way its cycles were skippable):
                    // one sb-full stall per cycle, as in the reference
                    // retire loop.
                    debug_assert!(!c.sb.has_room());
                    self.stats.stall_sb_full += cycles;
                }
            }
            // Otherwise the core is parked (spinning or halted threads):
            // the reference stepper counts nothing for it either.
        }
        self.now += cycles;
    }

    fn finish_stats(&mut self) {
        self.stats.cycles = self.now;
        let (l2h, l2m) = self.l2.hit_miss();
        self.stats.l2_hits = l2h;
        self.stats.l2_misses = l2m;
        let (dh, dm) = self.dram.hit_miss();
        self.stats.dram_hits = dh;
        self.stats.dram_misses = dm;
        self.stats.l1_hits = 0;
        self.stats.l1_misses = 0;
        self.stats.snoops = 0;
        self.stats.snoop_conflicts = 0;
        self.stats.hol_blocked_cycles = 0;
        for c in &self.cores {
            let (h, m) = c.l1.hit_miss();
            self.stats.l1_hits += h;
            self.stats.l1_misses += m;
            let (s, cf) = c.l1.snoop_stats();
            self.stats.snoops += s;
            self.stats.snoop_conflicts += cf;
            self.stats.hol_blocked_cycles += c.path.stats().1;
        }
        self.stats.wpq_overflows = 0;
        let mut occ_sum = 0.0;
        self.stats.wpq_max_occupancy = 0;
        for mc in &self.mcs {
            self.stats.wpq_overflows += mc.stats().1;
            occ_sum += mc.wpq().mean_occupancy();
            self.stats.wpq_max_occupancy = self.stats.wpq_max_occupancy.max(mc.wpq().stats().3);
        }
        self.stats.wpq_mean_occupancy = occ_sum / self.mcs.len().max(1) as f64;
        self.stats.io_ops = self.io_log.len() as u64;
    }

    /// True when no store is anywhere in the persist machinery.
    pub fn drained(&self) -> bool {
        let queues_empty = self
            .cores
            .iter()
            .all(|c| c.sb.is_empty() && c.feb.is_empty() && c.path.is_empty());
        if !queues_empty {
            return false;
        }
        if !self.cfg.scheme.uses_persist_path() {
            return true;
        }
        let wpqs_empty = self.mcs.iter().all(|mc| mc.wpq().is_empty());
        if self.cfg.scheme.flush_mode() == FlushMode::Gated {
            wpqs_empty && self.tracker.commit_frontier() > self.tracker.last_allocated()
        } else {
            wpqs_empty
        }
    }

    /// Advances one cycle.
    pub fn step_cycle(&mut self) {
        self.now += 1;
        let now = self.now;
        // The machinery phases below move queues and protocol state.
        self.machinery_stamp += 1;

        // --- 1. memory controllers + region commits -------------------
        if self.cfg.scheme.uses_persist_path() {
            let mut flushed = std::mem::take(&mut self.flushed_scratch);
            flushed.clear();
            for i in 0..self.mcs.len() {
                // An idle controller's tick is a no-op apart from the
                // occupancy sample (the `next_event` contract), so pay
                // only the sample. Earlier controllers' ticks may move
                // the tracker, which the memoized horizon re-keys on.
                let idle = self.mcs[i]
                    .next_event(&self.tracker)
                    .is_none_or(|t| t > now);
                if idle {
                    self.mcs[i].wpq_mut().sample_occupancy();
                } else {
                    self.mcs[i].tick(now, &mut self.tracker, &mut self.pm, &mut flushed);
                }
            }
            for e in flushed.drain(..) {
                if let Some(c) = self.cores.get_mut(e.core) {
                    c.outstanding = c.outstanding.saturating_sub(1);
                }
            }
            self.flushed_scratch = flushed;

            if let Some(k) = self.tracker.tick(now) {
                for mc in &mut self.mcs {
                    mc.on_region_committed(k);
                }
                self.trace.note_committed(k, now);
                self.stats.regions_committed += 1;
                if let Some(t0) = self.region_broadcast_at.remove(&k) {
                    self.stats.persist_latency_sum += now.saturating_sub(t0);
                }
            }
        }

        // --- 2. persist machinery movement per core -------------------
        for ci in 0..self.cores.len() {
            if self.cfg.scheme.uses_persist_path() {
                self.move_persist_queues(ci, now);
            } else if let Some(e) = self.cores[ci].sb.pop() {
                // Regular-path-only schemes still drain the store buffer
                // into L1 one store per cycle.
                self.regular_path_store(ci, e.addr);
            }
        }

        // --- 3. retire ------------------------------------------------
        for ci in 0..self.cores.len() {
            self.retire_core(ci, now);
        }
    }

    /// Advances one cycle executing only the retire stage. Sound only
    /// when [`Machine::machinery_next_event`] has proved that the
    /// machinery phases of [`Machine::step_cycle`] would be no-ops on
    /// this cycle; the WPQ occupancy sample — the one per-cycle effect
    /// an idle machinery tick does have — is applied directly, exactly
    /// as [`Machine::skip_idle_cycles`] does. The decoded-mode run loop
    /// uses this to retire instructions without paying the memory
    /// controller and queue scans on cycles where nothing can move.
    fn step_cycle_retire_only(&mut self) {
        self.now += 1;
        let now = self.now;
        if self.cfg.scheme.uses_persist_path() {
            for mc in &mut self.mcs {
                mc.wpq_mut().sample_occupancy_n(1);
            }
        }
        for ci in 0..self.cores.len() {
            self.retire_core(ci, now);
        }
    }

    /// Path head → WPQ(s); FEB → path; SB → L1 + FEB.
    fn move_persist_queues(&mut self, ci: usize, now: u64) {
        // Deliver at most one path head per cycle.
        if let Some(head) = self.cores[ci].path.head_arrived(now).copied() {
            match head.kind {
                PersistKind::Data => {
                    let mc = self.cfg.mem.mc_of(head.addr);
                    if self.mcs[mc].try_insert(&head, true, now, &mut self.tracker) {
                        self.cores[ci].path.pop_head();
                    } else {
                        self.cores[ci].path.note_hol_block();
                    }
                }
                PersistKind::Boundary => {
                    // The token must enter every WPQ (the broadcast).
                    let home_mc = self.cfg.mem.mc_of(head.addr);
                    let mut all_in = true;
                    for m in 0..self.mcs.len() {
                        if self.cores[ci].bdry_progress[m] {
                            continue;
                        }
                        if self.mcs[m].try_insert(&head, m == home_mc, now, &mut self.tracker) {
                            self.cores[ci].bdry_progress[m] = true;
                        } else {
                            all_in = false;
                        }
                    }
                    if all_in {
                        for f in &mut self.cores[ci].bdry_progress {
                            *f = false;
                        }
                        self.trace.note_delivered(head.region, now);
                        self.cores[ci].path.pop_head();
                    } else {
                        self.cores[ci].path.note_hol_block();
                    }
                }
            }
        }

        // FEB → path (bandwidth gate).
        if self.cores[ci].path.can_issue(now) && !self.cores[ci].feb.is_empty() {
            let weight = self.cfg.scheme.persist_weight();
            let e = self.cores[ci].feb.pop().expect("front buffer non-empty");
            self.cores[ci].path.issue_weighted(now, e, weight);
        }

        // SB → L1 (regular path) + FEB (persist copy), one per cycle.
        if !self.cores[ci].sb.is_empty() && self.cores[ci].feb.has_room() {
            let e = self.cores[ci].sb.pop().expect("store buffer non-empty");
            self.regular_path_store(ci, e.addr);
            self.cores[ci].feb.push(e);
            self.cores[ci].outstanding += 1;
        }
    }

    /// Write `addr` through the cache hierarchy (regular path). Returns
    /// true if the L1 eviction was conflict-delayed.
    fn regular_path_store(&mut self, ci: usize, addr: u64) -> bool {
        // L1 write hit: no eviction, so no snoop and no writeback — skip
        // policy resolution and the snoop-closure setup entirely.
        if self.cores[ci].l1.try_hit(addr, true) {
            return false;
        }
        self.store_miss(ci, addr)
    }

    /// The store miss path: allocate in L1 (snooping the persist front
    /// end for victim conflicts) and write back any dirty victim.
    fn store_miss(&mut self, ci: usize, addr: u64) -> bool {
        let line_bytes = self.cfg.mem.line_bytes;
        let policy = self.effective_policy();
        let core = &mut self.cores[ci];
        let CoreCtx { l1, feb, path, .. } = core;
        let res = l1.access(addr, true, policy, |la| {
            feb.search_line(la, line_bytes) || path.conflicts_with_line(la, line_bytes)
        });
        if let Some((evicted, true)) = res.evicted {
            self.writeback(evicted);
        }
        res.conflict_delayed
    }

    fn effective_policy(&self) -> VictimPolicy {
        if self.cfg.scheme.uses_persist_path() {
            self.cfg.victim_policy
        } else {
            VictimPolicy::StaleLoad // no front end to snoop
        }
    }

    /// A dirty line leaving L1 writes back into L2 (and cascades to the
    /// DRAM cache; dirty LLC evictions are silently dropped in
    /// persist-path schemes, §IV-G — the persist path already carried
    /// the data).
    fn writeback(&mut self, addr: u64) {
        let res = self
            .l2
            .access(addr, true, VictimPolicy::StaleLoad, |_| false);
        if let Some((evicted, true)) = res.evicted {
            if self.cfg.scheme.uses_dram_cache() {
                self.dram.access(evicted, true);
            }
        }
    }

    /// Queueing delay at a shared resource: waits for the port and
    /// occupies it for `occupancy` cycles.
    fn contend(free: &mut u64, now: u64, occupancy: u64) -> u64 {
        let wait = free.saturating_sub(now);
        *free = now.max(*free) + occupancy;
        wait
    }

    /// Load timing through the hierarchy; returns total latency.
    fn load_latency(&mut self, ci: usize, addr: u64) -> u64 {
        // L1 hit: fixed latency, no eviction, no contention bookkeeping
        // — answered without policy resolution or snoop-closure setup.
        // A hit through `try_hit` performs the cache's full hit
        // bookkeeping, and a miss touches nothing, so the fallback's
        // general access sees pristine state.
        if self.cores[ci].l1.try_hit(addr, false) {
            return self.cfg.mem.l1_latency;
        }
        self.load_miss_latency(ci, addr)
    }

    /// The load miss path: L1 fill (victim snoop + writeback), then the
    /// L2 / DRAM-cache / PM walk with shared-port contention.
    fn load_miss_latency(&mut self, ci: usize, addr: u64) -> u64 {
        let line_bytes = self.cfg.mem.line_bytes;
        let policy = self.effective_policy();
        {
            let core = &mut self.cores[ci];
            let CoreCtx { l1, feb, path, .. } = core;
            let l1res = l1.access(addr, false, policy, |la| {
                feb.search_line(la, line_bytes) || path.conflicts_with_line(la, line_bytes)
            });
            let evicted = l1res.evicted;
            if l1res.hit {
                return self.cfg.mem.l1_latency;
            }
            if let Some((ev, true)) = evicted {
                self.writeback(ev);
            }
        }
        let now = self.now;
        let l2_wait = Self::contend(&mut self.l2_free, now, self.cfg.mem.l2_occupancy);
        let l2res = self
            .l2
            .access(addr, false, VictimPolicy::StaleLoad, |_| false);
        if let Some((evicted, true)) = l2res.evicted {
            if self.cfg.scheme.uses_dram_cache() {
                self.dram.access(evicted, true);
            }
        }
        if l2res.hit {
            return self.cfg.mem.l2_latency + l2_wait;
        }
        if !self.cfg.scheme.uses_dram_cache() {
            // Ideal PSP: every L2 miss pays full PM latency (Fig. 9).
            let pm_wait =
                Self::contend(&mut self.pm_read_free, now, self.cfg.mem.pm_read_occupancy);
            return self.cfg.mem.l2_latency + l2_wait + self.cfg.mem.pm_read_latency + pm_wait;
        }
        let dram_wait = Self::contend(&mut self.dram_free, now, self.cfg.mem.dram_occupancy);
        let (dram_hit, _) = self.dram.access(addr, false);
        if dram_hit {
            return self.cfg.mem.l2_latency + l2_wait + self.cfg.mem.dram_cache_latency + dram_wait;
        }
        // LLC miss → PM, with the WPQ CAM search of §IV-H.
        self.stats.llc_load_misses += 1;
        let pm_wait = Self::contend(&mut self.pm_read_free, now, self.cfg.mem.pm_read_occupancy);
        let mut lat = self.cfg.mem.l2_latency
            + l2_wait
            + self.cfg.mem.dram_cache_latency
            + dram_wait
            + self.cfg.mem.pm_read_latency
            + pm_wait;
        if self.cfg.scheme.uses_persist_path() {
            let mc = self.cfg.mem.mc_of(addr);
            if self.mcs[mc].wpq_mut().search_line(addr, line_bytes) {
                // WPQ hit: drop the PM load, wait for the entry to
                // flush, reload (§IV-H).
                self.stats.wpq_load_hits += 1;
                lat += self.cfg.mem.pm_write_latency + self.cfg.mem.pm_read_latency;
            }
            // Stale-load accounting: with snooping disabled, data still
            // in the volatile front end is missed entirely and must be
            // refetched once it lands (Fig. 6).
            if self.cfg.victim_policy == VictimPolicy::StaleLoad {
                let core = &mut self.cores[ci];
                let CoreCtx { feb, path, .. } = core;
                if feb.search_line(addr, line_bytes) || path.conflicts_with_line(addr, line_bytes) {
                    self.stats.stale_loads += 1;
                    lat += self.cfg.mem.persist_path_latency + self.cfg.mem.pm_read_latency;
                }
            }
        }
        lat
    }

    /// Estimated serialized persist cost of a region with `stores`
    /// stores (the `Tp` contribution of Eq. 1).
    fn region_tp(&self, stores: u64) -> u64 {
        let mem = &self.cfg.mem;
        let channels = (mem.channels_per_mc * mem.num_mcs).max(1) as u64;
        let per_store = mem
            .persist_path_cycles_per_entry
            .max(mem.pm_write_occupancy / channels);
        // Serialized exposure per region: path transit, per-store drain,
        // the PM media write of the last store, and the ACK exchanges.
        mem.persist_path_latency
            + (stores + 1) * per_store
            + mem.pm_write_latency
            + 2 * mem.noc_latency
    }

    /// Ends thread `tid`'s open region: emits the (possibly synthetic)
    /// boundary token through the store buffer of core `ci`. The next
    /// region's ID will be sampled lazily by the first store needing a
    /// tag. Returns false if the store buffer is full (caller retries
    /// later).
    fn end_region(&mut self, ci: usize, tid: usize, pc_val: u64, now: u64) -> bool {
        if !self.cores[ci].sb.has_room() {
            return false;
        }
        // The boundary's own PC store needs a tag even when the region
        // had no other stores.
        let ending = match self.threads[tid].cur_region.take() {
            Some(r) => r,
            None => self.tracker.alloc_region(),
        };
        let entry = PersistEntry {
            addr: layout::pc_slot(tid) & !7,
            val: pc_val,
            region: ending,
            kind: PersistKind::Boundary,
            core: ci,
        };
        self.cores[ci].sb.push(entry);
        self.machinery_stamp += 1;
        self.cores[ci].outstanding += 1;
        self.trace.note_boundary(ending, tid, now);
        let (insts, stores) = {
            let th = &self.threads[tid];
            (th.region_insts, th.region_stores)
        };
        self.stats.regions += 1;
        self.stats.region_insts_sum += insts;
        self.stats.region_stores_sum += stores;
        let tp = self.region_tp(stores);
        self.stats.tp_estimate += tp;
        if self.cfg.scheme.flush_mode() == FlushMode::Gated {
            self.region_broadcast_at.insert(ending, now);
        }
        if self.cfg.scheme.waits_at_boundary() || self.cfg.disable_lrpo {
            self.cores[ci].wait_for_commit = Some(ending);
        }
        let th = &mut self.threads[tid];
        th.region_insts = 0;
        th.region_stores = 0;
        th.region_open_since = now;
        true
    }

    /// Forcibly ends `tid`'s open region at an arbitrary execution point
    /// (region timeout, lock-spin retry, halt) and makes the forced
    /// boundary a *genuine* recovery point.
    ///
    /// Compiler checkpoints are placed right after each register's last
    /// update, so an open region routinely contains checkpoint-slot
    /// stores for values produced *inside* it. Re-storing the
    /// region-start PC here (the old behaviour) therefore let a crash
    /// that preserved this region but lost the next ones resume with
    /// checkpoint slots *newer* than the recovery PC — re-executing
    /// already-applied updates (observed as an LCG state double-step in
    /// the kv-service workload). Instead, the hardware dumps every
    /// register whose slot is stale into this region and checkpoints the
    /// *current* PC, so slots and PC commit or roll back together and a
    /// resume replays nothing.
    ///
    /// The dump is idempotent: repaired slots compare equal and are
    /// skipped, so when the store buffer fills mid-dump we return
    /// `false` and the caller's retry resumes where it left off (the
    /// thread cannot change registers while its region is pending
    /// close). Returns `true` once the boundary token is pushed.
    fn synthetic_close(&mut self, ci: usize, tid: usize, now: u64) -> bool {
        if self.threads[tid].cur_region.is_none() {
            return true;
        }
        if let Some(dp) = &self.decoded {
            self.threads[tid].interp.sync_point(dp);
        }
        let region = self.threads[tid].cur_region.expect("checked above");
        for r in Reg::all() {
            let slot = layout::checkpoint_slot(tid, r);
            let val = self.threads[tid].interp.reg(r);
            if self.vmem.read_word(slot) == val {
                continue;
            }
            if !self.cores[ci].sb.has_room() {
                return false;
            }
            self.vmem.write_word(slot, val);
            self.trace.note_store(region);
            self.cores[ci].sb.push(PersistEntry {
                addr: slot & !7,
                val,
                region,
                kind: PersistKind::Data,
                core: ci,
            });
            self.machinery_stamp += 1;
            self.stats.persist_stores += 1;
            self.stats.forced_ckpt_stores += 1;
            self.threads[tid].region_stores += 1;
        }
        let pc = self.threads[tid].interp.point().encode();
        self.end_region(ci, tid, pc, now)
    }

    /// Retire up to `width` events on core `ci`.
    fn retire_core(&mut self, ci: usize, now: u64) {
        if self.cores[ci].threads.is_empty() {
            return;
        }
        if self.cores[ci].stall_until > now {
            self.stats.stall_load_miss += 1;
            return;
        }
        if let Some(region) = self.cores[ci].wait_for_commit {
            if self.tracker.flush_frontier() > region {
                self.cores[ci].wait_for_commit = None;
            } else {
                self.stats.stall_boundary_wait += 1;
                return;
            }
        }
        if self.cores[ci].wait_outstanding {
            let c = &self.cores[ci];
            if c.outstanding == 0 && c.sb.is_empty() && c.feb.is_empty() && c.path.is_empty() {
                self.cores[ci].wait_outstanding = false;
            } else {
                self.stats.stall_boundary_wait += 1;
                return;
            }
        }

        let gated =
            self.cfg.scheme.uses_persist_path() && self.cfg.scheme.flush_mode() == FlushMode::Gated;

        let mut slots = self.cfg.width;
        // Batched timing stats: the per-retire instruction counters
        // (`Stats::insts`, the open region's instruction count)
        // accumulate in locals inside this dispatch loop and fold into
        // their owners only where a reader could observe them — before
        // any region close (which sums `region_insts` into the region
        // stats), on a thread switch, and unconditionally at loop exit.
        // Crash captures happen at cycle boundaries, strictly after the
        // exit fold, so observable `Stats` are byte-identical to
        // unbatched counting (pinned by `batched_stats_fold_*` in
        // tests/exec_mode_parity.rs).
        let mut acc_insts: u64 = 0;
        let mut acc_region: u64 = 0;
        let mut acc_tid = usize::MAX;
        while slots > 0 {
            let Some(tid) = self.pick_thread(ci, now) else {
                break;
            };
            if acc_region != 0 && tid != acc_tid {
                self.threads[acc_tid].region_insts += acc_region;
                acc_region = 0;
            }
            acc_tid = tid;

            // Persist back-pressure: a full store buffer blocks retire.
            if !self.cores[ci].sb.has_room() {
                self.stats.stall_sb_full += 1;
                break;
            }

            // Liveness: force-end regions that have been open too long.
            if gated
                && self.threads[tid].cur_region.is_some()
                && now.saturating_sub(self.threads[tid].region_open_since) > self.cfg.region_timeout
            {
                self.threads[tid].region_insts += acc_region;
                acc_region = 0;
                self.synthetic_close(ci, tid, now);
                slots -= 1;
                continue;
            }

            let ev = if let Some(dp) = &self.decoded {
                // Batched decoded dispatch: retire up to `budget`
                // ALU-class instructions inside the interpreter's tight
                // loop and surface only the next timed event. Exact
                // per-slot equivalence with the reference path holds
                // because nothing an ALU-class instruction does can
                // change this loop's per-slot predicates: the thread
                // pick is stable within a cycle (`now` is fixed, and
                // rotation re-arms the quantum), the store buffer only
                // grows at the store events that end a batch, and
                // region state only changes at events.
                let budget = if self.cores[ci].threads.len() == 1 || self.cfg.timeslice > 0 {
                    slots
                } else {
                    // timeslice == 0 round-robins threads every retire
                    // slot; keep batches at one instruction so the
                    // rotation stays per-slot exact.
                    1
                };
                let (alus, ev) = self.threads[tid]
                    .interp
                    .step_batch(dp, &mut self.vmem, budget);
                acc_insts += alus as u64;
                acc_region += alus as u64;
                slots -= alus;
                match ev {
                    Some(ev) => ev,
                    None => continue,
                }
            } else {
                self.threads[tid].interp.step(&self.program, &mut self.vmem)
            };
            match ev {
                DynEvent::Alu | DynEvent::Fence => {
                    acc_insts += 1;
                    acc_region += 1;
                    slots -= 1;
                }
                DynEvent::Load { addr } => {
                    acc_insts += 1;
                    acc_region += 1;
                    let lat = self.load_latency(ci, addr);
                    if lat > self.cfg.mem.l1_latency {
                        let extra =
                            (lat - self.cfg.mem.l1_latency) / self.cfg.miss_overlap_div.max(1);
                        self.cores[ci].stall_until = now + extra;
                        slots = 0;
                    } else {
                        slots -= 1;
                    }
                }
                DynEvent::Store { addr, val, kind } => {
                    acc_insts += 1;
                    if kind == StoreKind::Checkpoint {
                        self.stats.instrumentation_insts += 1;
                    }
                    if self.cfg.scheme.uses_persist_path() {
                        self.stats.persist_stores += 1;
                    }
                    let region = match self.threads[tid].cur_region {
                        Some(r) => r,
                        None => {
                            let r = self.tracker.alloc_region();
                            let th = &mut self.threads[tid];
                            th.cur_region = Some(r);
                            th.region_open_since = now;
                            self.trace.note_sampled(r, tid, now);
                            r
                        }
                    };
                    self.trace.note_store(region);
                    {
                        // Fold the batched region counter here: the PPA
                        // branch below reads `region_insts`.
                        let th = &mut self.threads[tid];
                        th.region_insts += acc_region + 1;
                        acc_region = 0;
                        th.region_stores += 1;
                    }
                    let entry = PersistEntry {
                        addr: addr & !7,
                        val,
                        region,
                        kind: PersistKind::Data,
                        core: ci,
                    };
                    self.cores[ci].sb.push(entry);
                    self.machinery_stamp += 1;
                    slots -= 1;

                    // PPA: hardware-delineated region boundary when the
                    // PRF-pressure budget is exhausted.
                    if self.cfg.scheme == Scheme::Ppa
                        && self.threads[tid].region_stores >= self.cfg.ppa_region_stores
                    {
                        let (insts, stores) = {
                            let th = &self.threads[tid];
                            (th.region_insts, th.region_stores)
                        };
                        self.stats.regions += 1;
                        self.stats.region_insts_sum += insts;
                        self.stats.region_stores_sum += stores;
                        let tp = self.region_tp(stores);
                        self.stats.tp_estimate += tp;
                        let th = &mut self.threads[tid];
                        th.region_insts = 0;
                        th.region_stores = 0;
                        th.region_open_since = now;
                        self.cores[ci].wait_outstanding = true;
                        slots = 0;
                    }
                }
                DynEvent::Boundary { addr: _, pc_val } => {
                    acc_insts += 1;
                    self.stats.instrumentation_insts += 1;
                    // Fold before `end_region` sums the region counters.
                    self.threads[tid].region_insts += acc_region + 1;
                    acc_region = 0;
                    if self.cfg.scheme.uses_persist_path() {
                        self.end_region(ci, tid, pc_val, now);
                    }
                    slots -= 1;
                    if self.cfg.scheme.waits_at_boundary() {
                        slots = 0;
                    }
                }
                DynEvent::Io { val } => {
                    acc_insts += 1;
                    acc_region += 1;
                    self.io_log.push((now, tid, val));
                    slots -= 1;
                }
                DynEvent::LockSpin { addr: _ } => {
                    self.threads[tid].spin_until = now + self.cfg.spin_retry_interval;
                    self.stats.stall_lock_spin += 1;
                    // Each retry is a fresh synchronisation point: end
                    // the open region so the spinner never blocks the
                    // flush frontier (§IV-C liveness).
                    if gated {
                        self.threads[tid].region_insts += acc_region;
                        acc_region = 0;
                        self.synthetic_close(ci, tid, now);
                    }
                    slots = 0;
                }
                DynEvent::Halt => {
                    self.threads[tid].region_insts += acc_region;
                    acc_region = 0;
                    if gated && self.threads[tid].cur_region.is_some() {
                        // Broadcast the trailing region so the frontier
                        // can drain past this thread; retry while the
                        // store buffer is full.
                        if self.synthetic_close(ci, tid, now) {
                            self.threads[tid].halted = true;
                        }
                    } else {
                        self.threads[tid].halted = true;
                    }
                    slots = 0;
                }
            }
        }
        // Exit fold: everything observable after this call (stats
        // queries, crash captures, the next cycle's region checks) sees
        // fully folded counters.
        if acc_insts != 0 {
            self.stats.insts += acc_insts;
        }
        if acc_region != 0 {
            self.threads[acc_tid].region_insts += acc_region;
        }
    }

    /// Picks the runnable thread for core `ci`: sticks with the active
    /// thread until it halts, spins, or — once the preemption quantum
    /// expires — reaches a safe point (closed region); then rotates.
    fn pick_thread(&mut self, ci: usize, now: u64) -> Option<usize> {
        let n = self.cores[ci].threads.len();
        if n == 0 {
            return None;
        }
        let active = self.cores[ci].active;
        let cur_tid = self.cores[ci].threads[active];
        let cur_runnable = {
            let th = &self.threads[cur_tid];
            !th.halted && th.spin_until <= now
        };
        let quantum_expired = now.saturating_sub(self.cores[ci].last_switch) >= self.cfg.timeslice;
        let at_safe_point = self.threads[cur_tid].cur_region.is_none();
        if cur_runnable && !(quantum_expired && at_safe_point && n > 1) {
            return Some(cur_tid);
        }
        for off in 1..=n {
            let idx = (active + off) % n;
            let tid = self.cores[ci].threads[idx];
            let th = &self.threads[tid];
            if !th.halted && th.spin_until <= now {
                self.cores[ci].active = idx;
                self.cores[ci].last_switch = now;
                return Some(tid);
            }
        }
        // No other runnable thread; stay on the active one if possible.
        cur_runnable.then_some(cur_tid)
    }

    /// Injects a power failure at the current cycle and performs the
    /// §IV-F recovery protocol: battery-covered WPQ resolution, volatile
    /// state loss, and per-thread restart from the checkpoint storage.
    /// Returns a step-by-step account of what recovery did.
    pub fn inject_power_failure(&mut self) -> RecoveryReport {
        self.inject_power_failure_audited().report
    }

    /// [`Machine::inject_power_failure`] plus the full audit capture:
    /// tracker frontiers, the pre-resolution PM image, and each MC's
    /// entry-by-entry resolution, so the crash auditor
    /// ([`crate::crash`]) can verify the recovery contract rather than
    /// just the end state. Honors `SimConfig::gating_mutant`, but
    /// always records the tracker's honest survivable set alongside.
    pub fn inject_power_failure_audited(&mut self) -> CrashCapture {
        self.stats.failures += 1;
        // Recovery clears the volatile machinery wholesale.
        self.machinery_stamp += 1;
        let mut report = RecoveryReport::default();

        // §IV-F steps 1–2: in-flight ACKs are delivered on battery; the
        // survivable set is the contiguous boundary-everywhere prefix.
        let at_cycle = self.now;
        let commit_frontier = self.tracker.commit_frontier();
        let last_allocated = self.tracker.last_allocated();
        let survivable = self.tracker.survivable_regions();
        let used_survivable = match self.cfg.gating_mutant {
            None => survivable.clone(),
            Some(GatingMutant::FlushUnacked) => (commit_frontier..=last_allocated).collect(),
            Some(GatingMutant::AnyMcBoundary) => {
                let mut out = Vec::new();
                let mut k = commit_frontier;
                while k <= last_allocated && self.tracker.boundary_anywhere(k) {
                    out.push(k);
                    k += 1;
                }
                out
            }
            Some(GatingMutant::FirstMcBoundary) => {
                let mut out = Vec::new();
                let mut k = commit_frontier;
                while k <= last_allocated && self.tracker.boundary_at_mc(k, 0) {
                    out.push(k);
                    k += 1;
                }
                out
            }
        };
        report.survivable_regions = used_survivable.clone();
        let pm_before = self.pm.snapshot();

        // §IV-F steps 3–6 on each MC's persistence domain.
        let mut per_mc = Vec::with_capacity(self.mcs.len());
        for mc in &mut self.mcs {
            let res = mc.on_power_failure(&used_survivable, &mut self.pm);
            report.entries_flushed += res.flushed.len() as u64;
            report.entries_discarded += res.discarded.len() as u64;
            report.undo_rolled_back += res.rolled_back.len() as u64;
            per_mc.push(res);
        }

        // Everything volatile disappears.
        for c in &mut self.cores {
            c.sb.clear();
            c.feb.clear();
            c.path.clear();
            c.l1.invalidate_all();
            c.stall_until = 0;
            c.wait_for_commit = None;
            c.wait_outstanding = false;
            c.outstanding = 0;
            c.bdry_progress.iter_mut().for_each(|f| *f = false);
        }
        self.l2.invalidate_all();
        self.dram.invalidate_all();
        self.region_broadcast_at.clear();

        // The architectural memory now *is* PM.
        self.vmem = self.pm.snapshot();

        // Fresh ordering epoch: allocated-but-lost region IDs die here.
        self.tracker = RegionTracker::new(self.cfg.mem.num_mcs, self.cfg.mem.noc_latency);

        // Each thread resumes from its checkpointed recovery point with
        // registers reloaded (and pruned ones reconstructed, §IV-A).
        for tid in 0..self.threads.len() {
            let mut interp = Interp::resume_from_checkpoint(&self.vmem, tid);
            let enc = interp.point().encode();
            let mut regs = [0u64; NUM_REGS];
            for r in Reg::all() {
                regs[r.index()] = interp.reg(r);
            }
            self.recipes.apply(enc, &mut regs);
            for r in Reg::all() {
                interp.set_reg(r, regs[r.index()]);
            }
            let th = &mut self.threads[tid];
            th.interp = interp;
            th.halted = false;
            th.spin_until = 0;
            th.region_insts = 0;
            th.region_stores = 0;
            th.region_open_since = self.now;
            th.cur_region = None;
            report.resume_points.push(th.interp.point());
        }
        CrashCapture {
            at_cycle,
            commit_frontier,
            last_allocated,
            survivable,
            used_survivable,
            pm_before,
            per_mc,
            report,
        }
    }
}
