//! # lightwsp-sim — cycle-level multicore simulation of LightWSP and
//! its baselines
//!
//! This crate glues the compiler output ([`lightwsp_compiler`]) to the
//! memory-system substrate ([`lightwsp_mem`]) and executes whole
//! workloads under six persistence schemes (§V-A):
//!
//! | Scheme | Binary | Persist path | Ordering | DRAM cache |
//! |---|---|---|---|---|
//! | `Baseline` | original | — | — | yes |
//! | `LightWsp` | instrumented | 8 B | WPQ gating + LRPO | yes |
//! | `PspIdeal` | original | — (free persistence) | — | **no** |
//! | `Capri` | instrumented | 64 B (8× pressure) | stop-and-wait | yes |
//! | `Ppa` | original | 8 B | eager + boundary stall | yes |
//! | `Cwsp` | instrumented | 8 B | MC speculation (+undo delay) | yes |
//!
//! Beyond timing, the simulator is *functionally* precise for the gated
//! schemes: persistent memory receives exactly the WPQ-flushed values,
//! so [`Machine::inject_power_failure`] plus the §IV-F recovery protocol
//! can be validated end-to-end — [`consistency`] compares the final PM
//! state of fail-and-recover runs against failure-free golden runs,
//! which is the paper's central crash-consistency claim, and [`crash`]
//! audits the recovery contract itself: a [`crash::CrashInjector`] cuts
//! power at derived or seeded points, captures the persistent image, and
//! asserts the named invariants of `RECOVERY.md` against the resolution.

#![warn(missing_docs)]

pub mod config;
pub mod consistency;
pub mod crash;
pub mod machine;
pub mod stats;
pub mod trace;

pub use config::{ExecMode, GatingMutant, Scheme, SimConfig, StepMode, SweepMode};
pub use crash::{
    CrashAuditReport, CrashInjector, CrashPoint, CrashPointKind, CrashSweeper, InvariantViolation,
};
pub use machine::{Completion, CrashCapture, Machine, MachineSnapshot};
pub use stats::{SimStats, StallCause};

#[cfg(test)]
mod tests;
