//! Region-lifetime tracing: per-region timelines through the LRPO
//! pipeline (§III-B/§IV-B), for debugging and for the `lightwsp trace`
//! CLI.
//!
//! A region's life: first tagged store (ID sampled) → boundary retired
//! (broadcast issued) → boundary delivered to every WPQ → committed
//! (flush-ACKs complete). The gaps between those timestamps are exactly
//! the latencies LRPO hides from the core.

use lightwsp_ir::fxhash::FxHashMap;
use lightwsp_mem::RegionId;

/// One region's observed timeline (cycle stamps; `None` = not reached).
#[derive(Clone, Copy, Debug, Default)]
pub struct RegionTimeline {
    /// Issuing thread.
    pub thread: usize,
    /// First store tagged with the region (ID sampling point).
    pub sampled: Option<u64>,
    /// Boundary retired by the core (broadcast enters the store buffer).
    pub boundary_retired: Option<u64>,
    /// Boundary token accepted by every WPQ (bdry broadcast complete).
    pub delivered_all: Option<u64>,
    /// Region durably committed (flush-ACK exchange done).
    pub committed: Option<u64>,
    /// Store-like entries the region carried (incl. checkpoints + the
    /// boundary's PC store).
    pub stores: u32,
}

impl RegionTimeline {
    /// Cycles from boundary retirement to durable commit — the latency
    /// LRPO overlaps with subsequent execution.
    pub fn persist_latency(&self) -> Option<u64> {
        Some(self.committed?.saturating_sub(self.boundary_retired?))
    }
}

/// A bounded log of region timelines.
#[derive(Clone, Debug, Default)]
pub struct RegionTraceLog {
    enabled: bool,
    capacity: usize,
    map: FxHashMap<RegionId, RegionTimeline>,
}

impl RegionTraceLog {
    /// Creates a log capturing up to `capacity` regions (0 disables).
    pub fn new(capacity: usize) -> RegionTraceLog {
        RegionTraceLog {
            enabled: capacity > 0,
            capacity,
            map: FxHashMap::default(),
        }
    }

    /// True if tracing is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn entry(&mut self, region: RegionId) -> Option<&mut RegionTimeline> {
        if !self.enabled {
            return None;
        }
        if !self.map.contains_key(&region) && self.map.len() >= self.capacity {
            return None;
        }
        Some(self.map.entry(region).or_default())
    }

    /// Records the ID-sampling point.
    pub fn note_sampled(&mut self, region: RegionId, thread: usize, now: u64) {
        if let Some(t) = self.entry(region) {
            t.thread = thread;
            t.sampled.get_or_insert(now);
        }
    }

    /// Records a tagged store.
    pub fn note_store(&mut self, region: RegionId) {
        if let Some(t) = self.entry(region) {
            t.stores += 1;
        }
    }

    /// Records boundary retirement.
    pub fn note_boundary(&mut self, region: RegionId, thread: usize, now: u64) {
        if let Some(t) = self.entry(region) {
            t.thread = thread;
            t.boundary_retired.get_or_insert(now);
        }
    }

    /// Records full boundary delivery (all WPQs).
    pub fn note_delivered(&mut self, region: RegionId, now: u64) {
        if let Some(t) = self.entry(region) {
            t.delivered_all.get_or_insert(now);
        }
    }

    /// Records durable commit.
    pub fn note_committed(&mut self, region: RegionId, now: u64) {
        if let Some(t) = self.entry(region) {
            t.committed.get_or_insert(now);
        }
    }

    /// Timelines in region-ID order.
    pub fn timelines(&self) -> Vec<(RegionId, RegionTimeline)> {
        let mut v: Vec<(RegionId, RegionTimeline)> =
            self.map.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_unstable_by_key(|(k, _)| *k);
        v
    }

    /// Percentile of persist latency over completed regions (p in 0..=100).
    pub fn persist_latency_percentile(&self, p: u32) -> Option<u64> {
        let mut lats: Vec<u64> = self
            .map
            .values()
            .filter_map(RegionTimeline::persist_latency)
            .collect();
        if lats.is_empty() {
            return None;
        }
        lats.sort_unstable();
        let idx = ((p.min(100) as usize) * (lats.len() - 1)) / 100;
        Some(lats[idx])
    }

    /// Renders the first `n` timelines plus latency percentiles.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::from(
            "region   thread  sampled  bdry-ret  delivered  committed  stores  persist-lat\n",
        );
        for (region, t) in self.timelines().into_iter().take(n) {
            let f = |x: Option<u64>| x.map_or("-".into(), |v| v.to_string());
            out.push_str(&format!(
                "{:<9}{:<8}{:<9}{:<10}{:<11}{:<11}{:<8}{}\n",
                region,
                t.thread,
                f(t.sampled),
                f(t.boundary_retired),
                f(t.delivered_all),
                f(t.committed),
                t.stores,
                f(t.persist_latency()),
            ));
        }
        for p in [50u32, 90, 99] {
            if let Some(v) = self.persist_latency_percentile(p) {
                out.push_str(&format!("p{p} persist latency: {v} cycles\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = RegionTraceLog::new(0);
        log.note_boundary(1, 0, 10);
        assert!(!log.enabled());
        assert!(log.timelines().is_empty());
    }

    #[test]
    fn capacity_bounds_tracked_regions() {
        let mut log = RegionTraceLog::new(2);
        for r in 1..=5u64 {
            log.note_boundary(r, 0, r * 10);
        }
        assert_eq!(log.timelines().len(), 2);
    }

    #[test]
    fn lifecycle_and_percentiles() {
        let mut log = RegionTraceLog::new(8);
        for r in 1..=4u64 {
            log.note_sampled(r, 0, r * 100);
            log.note_store(r);
            log.note_store(r);
            log.note_boundary(r, 0, r * 100 + 50);
            log.note_delivered(r, r * 100 + 90);
            log.note_committed(r, r * 100 + 50 + 10 * r);
        }
        let tl = log.timelines();
        assert_eq!(tl.len(), 4);
        assert_eq!(tl[0].1.stores, 2);
        assert_eq!(tl[0].1.persist_latency(), Some(10));
        assert_eq!(log.persist_latency_percentile(0), Some(10));
        assert_eq!(log.persist_latency_percentile(100), Some(40));
        let text = log.render(10);
        assert!(text.contains("p50 persist latency"));
    }

    #[test]
    fn first_timestamp_wins() {
        let mut log = RegionTraceLog::new(2);
        log.note_boundary(1, 0, 10);
        log.note_boundary(1, 0, 99);
        assert_eq!(log.timelines()[0].1.boundary_retired, Some(10));
    }
}
