//! Simulation configuration: the persistence scheme under test plus the
//! core-side parameters of Table I.

use lightwsp_mem::cache::VictimPolicy;
use lightwsp_mem::controller::FlushMode;
use lightwsp_mem::MemConfig;

/// The persistence scheme being simulated (§V-A/V-B evaluates LightWSP
/// against all of these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Intel Optane memory mode with the original binary: DRAM cache,
    /// **no** persistence or crash consistency. The normalisation
    /// baseline of every figure.
    Baseline,
    /// This paper: compiler regions + WPQ redo buffering + lazy
    /// region-level persist ordering.
    LightWsp,
    /// An idealised partial-system-persistence scheme (BBB-like):
    /// persistence is free, but DRAM cannot be used as a cache, so every
    /// L2 miss pays full PM latency (Fig. 9).
    PspIdeal,
    /// Capri (HPDC'22): separate persist path at 64-byte cacheline
    /// granularity (8× bandwidth pressure) and stop-and-wait region
    /// ordering across multiple MCs.
    Capri,
    /// PPA (MICRO'23): store-integrity hardware, eager in-region
    /// writeback, pipeline stall at each (PRF-bounded) region boundary
    /// until all stores persist.
    Ppa,
    /// cWSP (ISCA'24): idempotent regions + memory-controller
    /// speculation; no ordering stalls, but every PM write pays an
    /// undo-logging delay.
    Cwsp,
}

impl Scheme {
    /// True if the scheme runs the LightWSP-compiler-instrumented binary
    /// (region boundaries + live-out checkpoints).
    pub fn is_instrumented(self) -> bool {
        matches!(self, Scheme::LightWsp | Scheme::Capri | Scheme::Cwsp)
    }

    /// True if stores are duplicated onto the persist path.
    pub fn uses_persist_path(self) -> bool {
        matches!(
            self,
            Scheme::LightWsp | Scheme::Capri | Scheme::Ppa | Scheme::Cwsp
        )
    }

    /// True if the DRAM cache sits in front of PM (all but ideal PSP).
    pub fn uses_dram_cache(self) -> bool {
        !matches!(self, Scheme::PspIdeal)
    }

    /// WPQ release discipline.
    pub fn flush_mode(self) -> FlushMode {
        match self {
            Scheme::Ppa | Scheme::Cwsp => FlushMode::Immediate,
            _ => FlushMode::Gated,
        }
    }

    /// Persist-path bandwidth units per store (Capri flushes whole
    /// 64-byte lines: 8× an 8-byte store).
    pub fn persist_weight(self) -> u64 {
        if self == Scheme::Capri {
            8
        } else {
            1
        }
    }

    /// True if the core must stall at a region boundary until the region
    /// commits (Capri's stop-and-wait).
    pub fn waits_at_boundary(self) -> bool {
        self == Scheme::Capri
    }

    /// Display name used by the evaluation harness.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::LightWsp => "LightWSP",
            Scheme::PspIdeal => "PSP-Ideal",
            Scheme::Capri => "Capri",
            Scheme::Ppa => "PPA",
            Scheme::Cwsp => "cWSP",
        }
    }
}

/// How [`crate::Machine`] advances simulated time.
///
/// Both modes execute the *same* per-cycle semantics and produce
/// bit-identical [`crate::SimStats`], PM contents, and crash-audit
/// resolutions; they differ only in how idle cycles are traversed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum StepMode {
    /// Event-driven skip-ahead (the default): each timed component
    /// exposes a `next_event(now)` horizon, the machine jumps straight
    /// to the earliest one, and the skipped interval's per-cycle
    /// accounting (stall counters, WPQ occupancy samples) is applied in
    /// closed form. Several times faster on stall-dominated workloads.
    #[default]
    SkipAhead,
    /// Tick every cycle through `step_cycle`. Kept forever as the
    /// executable specification the skip-ahead mode is checked against
    /// (see `tests/step_mode_parity.rs`).
    Reference,
}

impl StepMode {
    /// Parses the `LIGHTWSP_STEP_MODE` environment value
    /// (`skip`/`skip_ahead` or `ref`/`reference`, case-insensitive).
    /// Returns `None` for anything else.
    pub fn from_env_str(s: &str) -> Option<StepMode> {
        match s.to_ascii_lowercase().as_str() {
            "skip" | "skip_ahead" | "skipahead" => Some(StepMode::SkipAhead),
            "ref" | "reference" => Some(StepMode::Reference),
            _ => None,
        }
    }

    /// Display name used by the evaluation harness.
    pub fn name(self) -> &'static str {
        match self {
            StepMode::SkipAhead => "skip_ahead",
            StepMode::Reference => "reference",
        }
    }
}

/// How crash-sweep drivers (`crate::crash`, the model harness, the
/// bench bins) traverse a batch of crash points.
///
/// Both modes audit the *same* machine states and produce bit-identical
/// [`crate::crash::CrashAuditReport`]s, failure resolutions, and PM
/// images (see `tests/sweep_mode_parity.rs`); they differ only in how
/// the pre-crash state at each point's cycle is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SweepMode {
    /// Fork-point sweep (the default): sort the points by cycle, advance
    /// ONE mainline machine monotonically, and fork a cheap COW snapshot
    /// at each point for injection/audit/resume — `O(H + P·fork +
    /// P·resume)` simulated cycles for `P` points over horizon `H`.
    #[default]
    Fork,
    /// Rebuild a fresh machine and re-simulate from cycle 0 for every
    /// point — `O(P·H)`. Kept forever as the executable specification
    /// the fork mode is differentially gated against, exactly like
    /// [`StepMode::Reference`] gates skip-ahead.
    Rerun,
}

impl SweepMode {
    /// Parses the `LIGHTWSP_SWEEP_MODE` environment value (`fork` or
    /// `rerun`, case-insensitive). Returns `None` for anything else.
    pub fn from_env_str(s: &str) -> Option<SweepMode> {
        match s.to_ascii_lowercase().as_str() {
            "fork" => Some(SweepMode::Fork),
            "rerun" | "re-run" | "fresh" => Some(SweepMode::Rerun),
            _ => None,
        }
    }

    /// The sweep mode selected by `LIGHTWSP_SWEEP_MODE`, defaulting to
    /// [`SweepMode::Fork`] when unset or unparseable.
    pub fn from_env() -> SweepMode {
        std::env::var("LIGHTWSP_SWEEP_MODE")
            .ok()
            .and_then(|s| SweepMode::from_env_str(&s))
            .unwrap_or_default()
    }

    /// Display name used by the evaluation harness.
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Fork => "fork",
            SweepMode::Rerun => "rerun",
        }
    }
}

/// Which functional execution engine drives [`crate::Machine`]'s cores.
///
/// Both engines execute the *same* per-instruction semantics and
/// produce bit-identical `DynEvent` streams, [`crate::SimStats`], PM
/// contents, and crash-audit resolutions (see
/// `tests/exec_mode_parity.rs`); they differ only in dispatch cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// The pre-decoded micro-op engine (the default): each basic block
    /// is flattened at machine construction into a `Vec<MicroOp>` with
    /// operands resolved, branch targets pre-linked as flat block
    /// indices, and adjacent instructions fused; a tight inner loop
    /// batches ALU-class work between timed events, and the hottest
    /// pure-ALU blocks are compiled into native closure chains.
    #[default]
    Decoded,
    /// Tree-walk one `Inst` at a time through the original interpreter.
    /// Kept forever as the executable specification the decoded engine
    /// is differentially gated against, exactly like
    /// [`StepMode::Reference`] gates skip-ahead.
    Reference,
}

impl ExecMode {
    /// Parses the `LIGHTWSP_EXEC_MODE` environment value
    /// (`decoded`/`dec` or `ref`/`reference`, case-insensitive).
    /// Returns `None` for anything else.
    pub fn from_env_str(s: &str) -> Option<ExecMode> {
        match s.to_ascii_lowercase().as_str() {
            "decoded" | "dec" | "uop" => Some(ExecMode::Decoded),
            "ref" | "reference" | "tree" => Some(ExecMode::Reference),
            _ => None,
        }
    }

    /// The exec mode selected by `LIGHTWSP_EXEC_MODE`, defaulting to
    /// [`ExecMode::Decoded`] when unset or unparseable.
    pub fn from_env() -> ExecMode {
        std::env::var("LIGHTWSP_EXEC_MODE")
            .ok()
            .and_then(|s| ExecMode::from_env_str(&s))
            .unwrap_or_default()
    }

    /// Display name used by the evaluation harness.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Decoded => "decoded",
            ExecMode::Reference => "reference",
        }
    }
}

/// A deliberately broken §IV-F gating rule, **test-only**: the crash
/// auditor (`crate::crash`) must flag a run under any of these mutants,
/// proving its invariants have teeth. Never set one in a real
/// experiment — results under a mutant model a buggy controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatingMutant {
    /// Power-failure resolution flushes *every* WPQ entry to PM,
    /// ignoring boundary ACKs — unpersisted-region stores corrupt PM.
    FlushUnacked,
    /// A region counts as survivable once its boundary reached *any*
    /// single MC; the contract requires all of them (otherwise one MC
    /// flushes a region another MC discards).
    AnyMcBoundary,
    /// A region counts as survivable once its boundary reached MC 0, as
    /// if the broadcast to one controller implied delivery to all —
    /// plausible in a design that piggybacks the ACK on the first
    /// fan-out hop. Under multi-MC skew the remaining controllers may
    /// not have the token yet, so their entries for the region are
    /// wrongly flushed or the region is resumed past.
    FirstMcBoundary,
}

/// Full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Memory-system parameters (Table I).
    pub mem: MemConfig,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Number of cores (Table I: 8; single-threaded workloads use 1).
    pub num_cores: usize,
    /// Retire width (Table I: 4).
    pub width: u32,
    /// L1 victim-selection policy for buffer snooping (Fig. 13).
    pub victim_policy: VictimPolicy,
    /// Divisor applied to load-miss stalls to approximate the
    /// memory-level parallelism of the 224-entry-ROB OoO core.
    pub miss_overlap_div: u64,
    /// Cycles after which an open region is force-ended so an idle or
    /// compute-only thread never blocks the global flush frontier (the
    /// hardware analogue of the paper's context-switch region-ID
    /// virtualisation, §IV-C).
    pub region_timeout: u64,
    /// Spin-lock retry backoff in cycles (each retry is a fresh
    /// synchronisation point, ending the spinner's open region).
    pub spin_retry_interval: u64,
    /// PPA: stores per hardware-delineated region (PRF-pressure bound).
    pub ppa_region_stores: u64,
    /// cWSP: extra PM-write channel occupancy for the undo-log copy.
    pub cwsp_extra_occupancy: u64,
    /// Preemption quantum: a core rotates to its next runnable thread
    /// at the first safe point (closed region) after this many cycles.
    pub timeslice: u64,
    /// Hard cycle cap (guards against simulation livelock).
    pub max_cycles: u64,
    /// Address ranges pre-filled into the DRAM cache at start, emulating
    /// the warm state the paper's 10-billion-instruction fast-forward
    /// leaves behind (§V-A).
    pub warm_dram: Vec<(u64, u64)>,
    /// Ablation: disable lazy region-level persist ordering and stall the
    /// core at every boundary until the region commits — the "naive use
    /// of sfence at each region boundary" the paper argues against
    /// (§III-B).
    pub disable_lrpo: bool,
    /// Number of region timelines to trace (0 disables tracing).
    pub trace_regions: usize,
    /// Test-only deliberate recovery bug (see [`GatingMutant`]); `None`
    /// in every real run.
    pub gating_mutant: Option<GatingMutant>,
    /// How the machine advances time (results are bit-identical either
    /// way; see [`StepMode`]).
    pub step_mode: StepMode,
    /// Which functional engine executes instructions (results are
    /// bit-identical either way; see [`ExecMode`]).
    pub exec_mode: ExecMode,
}

impl SimConfig {
    /// The paper's default single-socket configuration for `scheme`.
    pub fn new(scheme: Scheme) -> SimConfig {
        SimConfig {
            mem: MemConfig::table1(),
            scheme,
            num_cores: 1,
            width: 4,
            victim_policy: VictimPolicy::Full,
            miss_overlap_div: 2,
            region_timeout: 4000,
            spin_retry_interval: 16,
            ppa_region_stores: 12,
            cwsp_extra_occupancy: 2,
            timeslice: 2_000,
            max_cycles: 40_000_000,
            warm_dram: Vec::new(),
            disable_lrpo: false,
            trace_regions: 0,
            gating_mutant: None,
            step_mode: StepMode::default(),
            exec_mode: ExecMode::default(),
        }
    }

    /// Same configuration with `n` cores (multi-threaded workloads).
    pub fn with_cores(mut self, n: usize) -> SimConfig {
        assert!(n > 0, "need at least one core");
        self.num_cores = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties() {
        assert!(Scheme::LightWsp.is_instrumented());
        assert!(!Scheme::Ppa.is_instrumented(), "PPA is pure hardware");
        assert!(!Scheme::Baseline.uses_persist_path());
        assert!(!Scheme::PspIdeal.uses_dram_cache());
        assert_eq!(Scheme::Capri.persist_weight(), 8);
        assert_eq!(Scheme::LightWsp.persist_weight(), 1);
        assert!(Scheme::Capri.waits_at_boundary());
        assert!(!Scheme::LightWsp.waits_at_boundary(), "LRPO never waits");
        assert_eq!(Scheme::Cwsp.flush_mode(), FlushMode::Immediate);
        assert_eq!(Scheme::LightWsp.flush_mode(), FlushMode::Gated);
    }

    #[test]
    fn default_config() {
        let c = SimConfig::new(Scheme::LightWsp);
        assert_eq!(c.width, 4);
        assert_eq!(c.num_cores, 1);
        assert_eq!(c.mem.wpq_entries, 64);
    }
}
