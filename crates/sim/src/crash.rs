//! Crash injection and recovery auditing.
//!
//! LightWSP's central claim (§III-A) is that *any* power-failure point
//! is safe: WPQ entries of unpersisted regions are discarded, persisted
//! regions flush on battery, and each core resumes from its last
//! persisted region boundary. The [`consistency`](crate::consistency)
//! oracle checks the end-to-end consequence of that claim (final
//! durable state equals the failure-free run); this module checks the
//! *contract itself*, step by step, at systematically chosen crash
//! points.
//!
//! A [`CrashInjector`] cuts power at an arbitrary cycle — or at points
//! derived from a traced run of the same workload: mid-region, at the
//! boundary broadcast, inside the MC-skew window while a boundary has
//! reached only some WPQs, between the bdry-ACK and flush-ACK
//! exchanges, and mid-WPQ-drain. At each point it captures the
//! machine's persistent image (PM plus the battery-backed WPQ contents,
//! via [`Machine::inject_power_failure_audited`]) and asserts the named
//! invariants of `RECOVERY.md`:
//!
//! | invariant | meaning |
//! |---|---|
//! | `survivable-prefix` | survivable regions are one contiguous run starting at the commit frontier |
//! | `gate-flush` | no store of an unpersisted region is written to PM by the resolution |
//! | `gate-discard` | no store of a persisted region is discarded |
//! | `resolution-exact` | PM after resolution equals PM at the cut plus exactly the recorded flushes and undo rollbacks |
//! | `resume-from-checkpoint` | every thread resumes at the PC its PM checkpoint slot holds |
//! | `resume-completes` | the recovered machine runs to completion |
//! | `resume-state-equivalence` | the recovered run's final durable state is byte-identical to the failure-free golden run |
//!
//! The first five are *structural*: they validate the resolution
//! against the tracker's ground truth, so a deliberately broken gating
//! rule ([`GatingMutant`](crate::config::GatingMutant)) is caught even
//! when re-execution happens to converge to the right final state.

use crate::config::{SimConfig, SweepMode};
use crate::consistency::{golden_run, ConsistencyError};
use crate::machine::{Completion, CrashCapture, Machine};
use crate::trace::RegionTimeline;
use lightwsp_compiler::Compiled;
use lightwsp_ir::{layout, Memory};
use lightwsp_mem::RegionId;

/// Which mechanism window a crash point probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPointKind {
    /// A seeded pseudo-random cycle (uniform over the run).
    Seeded,
    /// Mid-region: between a region's first tagged store and its
    /// boundary — the region is open, its stores gated.
    MidRegion,
    /// The cycle right after a boundary retires (broadcast in flight
    /// through store buffer, front-end buffer, and persist path).
    BoundaryBroadcast,
    /// The NUMA skew window: the boundary token has entered some WPQs
    /// but not yet all of them — the region must still be discarded
    /// everywhere.
    McSkew,
    /// Between the completed bdry-ACK exchange and the flush-ACK: the
    /// region is survivable but not yet durably committed.
    BetweenAcks,
    /// While the MCs are bulk-flushing the region's entries to PM.
    MidWpqDrain,
}

impl CrashPointKind {
    /// All kinds, in display order.
    pub const ALL: [CrashPointKind; 6] = [
        CrashPointKind::Seeded,
        CrashPointKind::MidRegion,
        CrashPointKind::BoundaryBroadcast,
        CrashPointKind::McSkew,
        CrashPointKind::BetweenAcks,
        CrashPointKind::MidWpqDrain,
    ];

    /// Stable machine-readable name (used in `BENCH_crash.json`).
    pub fn name(self) -> &'static str {
        match self {
            CrashPointKind::Seeded => "seeded",
            CrashPointKind::MidRegion => "mid-region",
            CrashPointKind::BoundaryBroadcast => "boundary-broadcast",
            CrashPointKind::McSkew => "mc-skew",
            CrashPointKind::BetweenAcks => "between-acks",
            CrashPointKind::MidWpqDrain => "mid-wpq-drain",
        }
    }

    fn idx(self) -> usize {
        CrashPointKind::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// One power-cut point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// The cycle at which power is cut.
    pub cycle: u64,
    /// The mechanism window the point was derived for.
    pub kind: CrashPointKind,
}

/// A violated recovery invariant at one crash point.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// The invariant's name as documented in `RECOVERY.md`.
    pub invariant: &'static str,
    /// The crash point that exposed it.
    pub point: CrashPoint,
    /// Human-readable specifics (addresses, regions, values).
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] at cycle {} ({}): {}",
            self.invariant,
            self.point.cycle,
            self.point.kind.name(),
            self.detail
        )
    }
}

/// Aggregate result of auditing a set of crash points.
#[derive(Clone, Debug, Default)]
pub struct CrashAuditReport {
    /// Points requested.
    pub points: usize,
    /// Points that actually interrupted the run (the rest landed after
    /// the workload finished and drained).
    pub audited: usize,
    /// Points past the end of the run (skipped).
    pub beyond_end: usize,
    /// Audited points per [`CrashPointKind`], indexed as
    /// [`CrashPointKind::ALL`].
    pub audited_by_kind: [usize; 6],
    /// Every invariant violation found (empty = the contract held).
    pub violations: Vec<InvariantViolation>,
    /// WPQ entries battery-flushed across all audited failures.
    pub entries_flushed: u64,
    /// WPQ entries discarded across all audited failures.
    pub entries_discarded: u64,
    /// Undo-log rollbacks applied across all audited failures.
    pub undo_rolled_back: u64,
    /// Cycles of the failure-free golden run.
    pub golden_cycles: u64,
}

impl CrashAuditReport {
    /// Folds another report into this one (used when per-point audits
    /// ran in parallel; `golden_cycles` must agree or be unset).
    pub fn merge(&mut self, other: &CrashAuditReport) {
        self.points += other.points;
        self.audited += other.audited;
        self.beyond_end += other.beyond_end;
        for (a, b) in self.audited_by_kind.iter_mut().zip(other.audited_by_kind) {
            *a += b;
        }
        self.violations.extend(other.violations.iter().cloned());
        self.entries_flushed += other.entries_flushed;
        self.entries_discarded += other.entries_discarded;
        self.undo_rolled_back += other.undo_rolled_back;
        if self.golden_cycles == 0 {
            self.golden_cycles = other.golden_cycles;
        }
    }
}

/// Systematic crash-point sweep over one compiled workload.
///
/// Construction builds one pristine cycle-0 [`Machine`] template; a
/// "fresh machine" thereafter is a cheap COW clone of it, never a
/// re-initialisation. How the pre-crash state at each point is reached
/// is governed by the [`SweepMode`] (default: `LIGHTWSP_SWEEP_MODE`,
/// falling back to [`SweepMode::Fork`]):
///
/// - **fork** — a [`CrashSweeper`] advances ONE mainline machine
///   monotonically through the points in sorted order and forks a
///   snapshot at each, so a sweep of `P` points over horizon `H` costs
///   `O(H + P·fork + P·resume)` simulated cycles;
/// - **rerun** — every point re-simulates from cycle 0 (`O(P·H)`), the
///   executable specification fork mode is differentially checked
///   against (`tests/sweep_mode_parity.rs`).
///
/// Points are independent in either mode — callers with a thread pool
/// fan out *sorted contiguous chunks* ([`CrashInjector::audit_chunk`])
/// and [`CrashAuditReport::merge`] the results.
pub struct CrashInjector<'a> {
    compiled: &'a Compiled,
    cfg: SimConfig,
    threads: usize,
    sweep: SweepMode,
    /// Pristine cycle-0 machine; cloned (cheaply, via COW pages) for
    /// every golden/traced/audit run instead of re-running
    /// `Machine::new` and re-cloning the config per point.
    base: Machine,
}

/// SplitMix64 step (dependency-free seeded point generation; the
/// stream only needs to be deterministic, not cryptographic).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evenly samples up to `cap` values from a sorted, deduped list (keeps
/// the spread instead of clustering at the front).
fn sample_even(mut v: Vec<u64>, cap: usize) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    if v.len() <= cap || cap == 0 {
        return v;
    }
    if cap == 1 {
        return vec![v[v.len() / 2]];
    }
    (0..cap).map(|i| v[i * (v.len() - 1) / (cap - 1)]).collect()
}

impl<'a> CrashInjector<'a> {
    /// Creates an injector for `compiled` under `cfg` with `threads`
    /// software threads.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.scheme` does not use the persist path — without
    /// it there is no persistence domain to audit.
    pub fn new(compiled: &'a Compiled, cfg: SimConfig, threads: usize) -> CrashInjector<'a> {
        assert!(
            cfg.scheme.uses_persist_path(),
            "crash auditing needs a persist-path scheme"
        );
        let base = Machine::new(
            compiled.program.clone(),
            compiled.recipes.clone(),
            cfg.clone(),
            threads,
        );
        CrashInjector {
            compiled,
            cfg,
            threads,
            sweep: SweepMode::from_env(),
            base,
        }
    }

    /// Overrides the sweep mode (the constructor reads
    /// `LIGHTWSP_SWEEP_MODE`). Bench bins time both modes explicitly
    /// through this instead of mutating the environment.
    pub fn with_sweep_mode(mut self, sweep: SweepMode) -> CrashInjector<'a> {
        self.sweep = sweep;
        self
    }

    /// The active sweep mode.
    pub fn sweep_mode(&self) -> SweepMode {
        self.sweep
    }

    /// A fresh cycle-0 machine: a COW clone of the construction-time
    /// template (no per-call config clone or cache re-initialisation).
    fn fresh(&self) -> Machine {
        self.base.fork()
    }

    fn machine(&self, cfg: SimConfig) -> Machine {
        Machine::new(
            self.compiled.program.clone(),
            self.compiled.recipes.clone(),
            cfg,
            self.threads,
        )
    }

    /// Runs the workload once with region tracing enabled and returns
    /// every region's timeline in global region-ID order plus the
    /// run's total cycles. This is the per-run protocol witness: the
    /// timelines' thread fields, read off in region-ID order, are
    /// exactly the bdry-ACK/flush-ID commit order the machine realises
    /// (the model crate's `ProtocolOrder`). The run is deterministic,
    /// so one trace is valid for every crash point of the same config.
    pub fn traced_timelines(&self) -> (Vec<(RegionId, RegionTimeline)>, u64) {
        let mut cfg = self.cfg.clone();
        cfg.trace_regions = 8192;
        let mut m = self.machine(cfg);
        m.run();
        (m.region_trace().timelines(), m.now())
    }

    /// Derives crash points from a traced run of the workload: for each
    /// observed region timeline, one point per applicable
    /// [`CrashPointKind`] window, evenly sampled down to `cap_per_kind`
    /// points per kind. Also returns the traced run's total cycles (the
    /// horizon for [`CrashInjector::seeded_points`]).
    pub fn derived_points(&self, cap_per_kind: usize) -> (Vec<CrashPoint>, u64) {
        let (timelines, horizon) = self.traced_timelines();
        (self.derived_points_from(&timelines, cap_per_kind), horizon)
    }

    /// [`CrashInjector::derived_points`] over an already-captured
    /// trace, so callers that also need the protocol order pay for one
    /// traced run instead of two.
    pub fn derived_points_from(
        &self,
        timelines: &[(RegionId, RegionTimeline)],
        cap_per_kind: usize,
    ) -> Vec<CrashPoint> {
        let noc = self.cfg.mem.noc_latency;
        let mut by_kind: [Vec<u64>; 6] = Default::default();
        for (_region, t) in timelines {
            if let (Some(s), Some(b)) = (t.sampled, t.boundary_retired) {
                by_kind[CrashPointKind::MidRegion.idx()].push(s + (b - s) / 2);
            }
            if let Some(b) = t.boundary_retired {
                by_kind[CrashPointKind::BoundaryBroadcast.idx()].push(b + 1);
            }
            if let Some(d) = t.delivered_all {
                // One cycle before full delivery: with >1 MC and WPQ
                // back-pressure this lands inside the fan-out window.
                by_kind[CrashPointKind::McSkew.idx()].push(d.saturating_sub(1));
            }
            if let (Some(d), Some(c)) = (t.delivered_all, t.committed) {
                let acked = d + noc;
                by_kind[CrashPointKind::BetweenAcks.idx()]
                    .push(acked + (c.saturating_sub(acked)) / 2);
                by_kind[CrashPointKind::MidWpqDrain.idx()]
                    .push((acked + 1).min(c.saturating_sub(1)));
            }
        }
        let mut points = Vec::new();
        for kind in CrashPointKind::ALL {
            if kind == CrashPointKind::Seeded {
                continue;
            }
            for cycle in sample_even(std::mem::take(&mut by_kind[kind.idx()]), cap_per_kind) {
                if cycle > 0 {
                    points.push(CrashPoint { cycle, kind });
                }
            }
        }
        points
    }

    /// `n` seeded pseudo-random crash cycles uniform over
    /// `[1, horizon)`, deterministic per `seed`.
    pub fn seeded_points(&self, seed: u64, n: usize, horizon: u64) -> Vec<CrashPoint> {
        let mut state = seed;
        let span = horizon.max(2) - 1;
        (0..n)
            .map(|_| CrashPoint {
                cycle: 1 + splitmix64(&mut state) % span,
                kind: CrashPointKind::Seeded,
            })
            .collect()
    }

    /// Canonicalises a point batch for sweeping: sorted by
    /// `(cycle, kind)` and deduplicated. Duplicate `(cycle, kind)`
    /// pairs audit the *same* machine state twice (point selection can
    /// emit them — e.g. seeded collisions or overlapping mechanism
    /// windows), and the fork sweep requires non-decreasing cycles.
    /// Both sweep modes visit exactly this sequence, which pins their
    /// reports to be comparable element-for-element.
    pub fn prepare_points(points: &[CrashPoint]) -> Vec<CrashPoint> {
        let mut v = points.to_vec();
        v.sort_unstable_by_key(|p| (p.cycle, p.kind.idx()));
        v.dedup();
        v
    }

    /// Starts a sweep over a sorted point sequence (see
    /// [`CrashInjector::prepare_points`]) in the injector's
    /// [`SweepMode`]. Each sweeper owns at most one mainline machine,
    /// so parallel callers create one sweeper per contiguous chunk.
    pub fn sweeper(&self) -> CrashSweeper<'_, 'a> {
        CrashSweeper {
            injector: self,
            mainline: (self.sweep == SweepMode::Fork).then(|| self.fresh()),
            finished: false,
            last_cycle: 0,
        }
    }

    /// Audits every point: golden run once, then sweep the sorted,
    /// deduplicated points — cut power, check the structural invariants
    /// against the capture, resume to completion, and compare the final
    /// durable state.
    ///
    /// # Errors
    ///
    /// Returns a [`ConsistencyError`] only if the golden run itself
    /// fails (cycle cap or drain violation); per-point problems are
    /// reported as violations, not errors.
    pub fn audit(&self, points: &[CrashPoint]) -> Result<CrashAuditReport, ConsistencyError> {
        let (golden, golden_cycles) = golden_run(self.compiled, &self.cfg, self.threads)?;
        let mut report = CrashAuditReport {
            golden_cycles,
            ..CrashAuditReport::default()
        };
        report.merge(&self.audit_chunk(&golden, &Self::prepare_points(points)));
        Ok(report)
    }

    /// Audits one sorted contiguous chunk of a prepared point sequence
    /// with a dedicated sweeper (one mainline machine per chunk). The
    /// parallel drivers split [`CrashInjector::prepare_points`] output
    /// into per-worker chunks and merge the returned reports in chunk
    /// order, which reproduces the serial sweep bit-for-bit.
    pub fn audit_chunk(&self, golden: &Memory, points: &[CrashPoint]) -> CrashAuditReport {
        let mut sweeper = self.sweeper();
        let mut report = CrashAuditReport::default();
        for &p in points {
            report.merge(&sweeper.audit_point(golden, p));
        }
        report
    }

    /// Audits a single crash point against a precomputed golden image
    /// (from [`golden_run`]) and returns a one-point report.
    ///
    /// A one-point sweep: fork and rerun mode are indistinguishable
    /// here. Kept for callers that fan out points individually;
    /// batch callers should prefer [`CrashInjector::audit_chunk`],
    /// which amortises the mainline advance across the whole chunk.
    pub fn audit_point(&self, golden: &Memory, p: CrashPoint) -> CrashAuditReport {
        self.audit_chunk(golden, &[p])
    }

    /// Cuts power at `p` and returns the audit capture together with
    /// the post-resolution durable image, without resuming. Returns
    /// `None` when the run finishes before `p.cycle` (nothing to cut).
    ///
    /// One-shot variant of [`CrashSweeper::capture_at`] — batch callers
    /// (the model harness) should drive a sweeper over sorted points
    /// instead of paying a run-from-zero per point.
    pub fn capture_at(&self, p: CrashPoint) -> Option<(CrashCapture, Memory)> {
        self.sweeper().capture_at(p)
    }
}

/// One in-progress sweep over a non-decreasing crash-point sequence.
///
/// In [`SweepMode::Fork`] the sweeper owns the *mainline* machine: it
/// advances monotonically to each point's cycle (never re-simulating
/// the prefix) and hands out a COW fork of itself for the destructive
/// part (power cut, resolution, resume). In [`SweepMode::Rerun`] there
/// is no mainline and every point replays a fresh machine from cycle 0.
///
/// The two modes reach bit-identical pre-crash states because
/// `run_until` is exact-landing and stopping at intermediate targets is
/// observationally identical to one continuous run (the same property
/// `tests/step_mode_parity.rs` locks in for skip-ahead); the parity
/// suite `tests/sweep_mode_parity.rs` enforces it end-to-end.
pub struct CrashSweeper<'i, 'a> {
    injector: &'i CrashInjector<'a>,
    /// The monotonically-advancing machine (fork mode only).
    mainline: Option<Machine>,
    /// Fork mode: the workload completed before some earlier point, so
    /// every later point is beyond the end too.
    finished: bool,
    /// Fork mode: last requested cycle, to enforce monotonicity.
    last_cycle: u64,
}

impl CrashSweeper<'_, '_> {
    /// The machine state at `p.cycle`, or `None` when the workload
    /// finishes (and drains) before that cycle.
    ///
    /// # Panics
    ///
    /// Panics in fork mode if `p` goes backwards — feed the sweeper
    /// [`CrashInjector::prepare_points`] output.
    fn machine_at(&mut self, p: CrashPoint) -> Option<Machine> {
        match &mut self.mainline {
            Some(mainline) => {
                assert!(
                    p.cycle >= self.last_cycle,
                    "fork sweep requires non-decreasing point cycles \
                     ({} after {}); sort with CrashInjector::prepare_points",
                    p.cycle,
                    self.last_cycle,
                );
                self.last_cycle = p.cycle;
                if self.finished {
                    return None;
                }
                if mainline.run_until(p.cycle) {
                    self.finished = true;
                    return None;
                }
                Some(mainline.fork())
            }
            None => {
                let mut m = self.injector.fresh();
                (!m.run_until(p.cycle)).then_some(m)
            }
        }
    }

    /// Cuts power at `p` on a fork (or a fresh rerun) and returns the
    /// audit capture plus the post-resolution *machine*, ready either
    /// for inspection (`pm_contents`) or for resuming the recovered
    /// run. `None` when the run finishes before `p.cycle`.
    ///
    /// This is the primitive the data-structure audit driver
    /// (`lightwsp-core`'s `dsaudit`) builds on: it checks
    /// structure-specific invariants against the durable image and
    /// resumes only a sampled subset of points, neither of which
    /// [`CrashSweeper::audit_point`]'s fixed check suite covers.
    pub fn cut_at(&mut self, p: CrashPoint) -> Option<(CrashCapture, Machine)> {
        let mut m = self.machine_at(p)?;
        let cap = m.inject_power_failure_audited();
        Some((cap, m))
    }

    /// Cuts power at `p` on a fork (or a fresh rerun) and returns the
    /// audit capture plus the post-resolution durable image, without
    /// resuming. `None` when the run finishes before `p.cycle`.
    pub fn capture_at(&mut self, p: CrashPoint) -> Option<(CrashCapture, Memory)> {
        // COW pages make the image clone a shallow O(pages-table)
        // snapshot, not a copy of the PM footprint.
        self.cut_at(p)
            .map(|(cap, m)| (cap, m.pm_contents().clone()))
    }

    /// Audits a single crash point against a precomputed golden image
    /// and returns a one-point report: cut power, check the structural
    /// invariants, resume to completion, compare final durable state.
    pub fn audit_point(&mut self, golden: &Memory, p: CrashPoint) -> CrashAuditReport {
        let mut report = CrashAuditReport {
            points: 1,
            ..CrashAuditReport::default()
        };
        let Some(mut m) = self.machine_at(p) else {
            report.beyond_end += 1;
            return report;
        };
        report.audited += 1;
        report.audited_by_kind[p.kind.idx()] += 1;
        let cap = m.inject_power_failure_audited();
        report.entries_flushed += cap.report.entries_flushed;
        report.entries_discarded += cap.report.entries_discarded;
        report.undo_rolled_back += cap.report.undo_rolled_back;
        check_capture(&cap, m.pm_contents(), p, &mut report.violations);

        // Resume and require convergence to the golden durable state.
        // The recovered run gets a fresh budget: `run_until` may have
        // stopped exactly at `max_cycles` (a crash point at the cap is
        // legitimate), and resuming under the original cap would report
        // a cap hit after zero post-crash cycles.
        let max_cycles = self.injector.cfg.max_cycles;
        m.set_max_cycles(p.cycle.saturating_add(max_cycles));
        if m.run() != Completion::Finished {
            report.violations.push(InvariantViolation {
                invariant: "resume-completes",
                point: p,
                detail: format!(
                    "recovered run exhausted a fresh {max_cycles}-cycle budget at {}",
                    m.now()
                ),
            });
            return report;
        }
        // Exclude checkpoint/PC slots: recovery metadata whose final
        // contents depend on where forced region closes fired, which
        // legitimately differs once a crash perturbs timing.
        if let Some((addr, got, want)) = m
            .pm_contents()
            .first_difference_where(golden, |a| !layout::is_checkpoint_addr(a))
        {
            report.violations.push(InvariantViolation {
                invariant: "resume-state-equivalence",
                point: p,
                detail: format!("PM diverges at {addr:#x}: got {got:#x}, golden {want:#x}"),
            });
        }
        report
    }
}

/// Checks the structural invariants of one [`CrashCapture`] against the
/// post-resolution durable image `pm_after`, appending any violations.
///
/// Exposed so tests can audit hand-built captures; normal use goes
/// through [`CrashInjector::audit`].
pub fn check_capture(
    cap: &CrashCapture,
    pm_after: &Memory,
    point: CrashPoint,
    out: &mut Vec<InvariantViolation>,
) {
    let mut fail = |invariant: &'static str, detail: String| {
        out.push(InvariantViolation {
            invariant,
            point,
            detail,
        });
    };

    // survivable-prefix: one contiguous run starting at the frontier.
    let contiguous = cap
        .survivable
        .iter()
        .enumerate()
        .all(|(i, &r)| r == cap.commit_frontier + i as u64);
    if !contiguous {
        fail(
            "survivable-prefix",
            format!(
                "survivable {:?} is not contiguous from frontier {}",
                cap.survivable, cap.commit_frontier
            ),
        );
    }

    // gate-flush / gate-discard: each entry's fate matches the tracker's
    // ground-truth survivable set (not the possibly-mutated one the
    // resolution used — that is exactly how a broken gate gets caught).
    for (mc, res) in cap.per_mc.iter().enumerate() {
        for e in &res.flushed {
            if !cap.survivable.contains(&e.region) {
                fail(
                    "gate-flush",
                    format!(
                        "MC{mc} flushed {:#x} of unpersisted region {} to PM",
                        e.addr, e.region
                    ),
                );
            }
        }
        for e in &res.discarded {
            if cap.survivable.contains(&e.region) {
                fail(
                    "gate-discard",
                    format!(
                        "MC{mc} discarded {:#x} of persisted region {}",
                        e.addr, e.region
                    ),
                );
            }
        }
    }

    // resolution-exact: replaying the recorded flushes and rollbacks on
    // the pre-cut image must reproduce the post-resolution image — no
    // unrecorded write reached PM, every recorded one did.
    let mut expected = cap.pm_before.clone();
    for res in &cap.per_mc {
        for e in &res.flushed {
            expected.write_word(e.addr, e.val);
        }
        for &(_region, addr, old) in &res.rolled_back {
            expected.write_word(addr, old);
        }
    }
    if let Some((addr, want, got)) = expected.first_difference(pm_after) {
        fail(
            "resolution-exact",
            format!("PM at {addr:#x} is {got:#x}, replayed resolution gives {want:#x}"),
        );
    }

    // resume-from-checkpoint: each thread's resume point is what its PM
    // checkpoint slot holds.
    for (tid, pt) in cap.report.resume_points.iter().enumerate() {
        let slot = pm_after.read_word(layout::pc_slot(tid));
        if pt.encode() != slot {
            fail(
                "resume-from-checkpoint",
                format!(
                    "thread {tid} resumes at {:#x} but its PM slot holds {slot:#x}",
                    pt.encode()
                ),
            );
        }
    }
}
