//! Crash-consistency oracle.
//!
//! LightWSP's central claim (§III-A) is that *no matter when power is
//! cut off, PM is never corrupted by the stores of the interrupted
//! region*, so resuming from the latest persisted boundary reproduces
//! the failure-free execution. This module validates the claim
//! end-to-end on the simulator:
//!
//! 1. run the instrumented workload to completion with no failure — at
//!    that point every region has committed, so the durable PM state
//!    must equal the architectural memory (the *drain* property);
//! 2. run it again, injecting power failures at the requested cycles
//!    and recovering via the §IV-F protocol;
//! 3. the final PM state of the fail-and-recover run must be
//!    byte-identical to the golden run's — excluding the checkpoint/PC
//!    slots, which are recovery metadata with timing-dependent contents
//!    (forced region closes dump the live register file wherever a
//!    timeout or spin retry happened to fire).
//!
//! Byte-identity is a meaningful oracle for single-threaded workloads
//! and for multi-threaded workloads whose cross-thread effects commute
//! (disjoint writes, commutative atomics, lock-protected commutative
//! updates) — which is what the workload generators produce.

use crate::config::SimConfig;
use crate::machine::{Completion, Machine};
use lightwsp_compiler::Compiled;
use lightwsp_ir::{layout, Memory};
use std::fmt;

/// A crash-consistency violation (or a run that failed to complete).
#[derive(Clone, Debug)]
pub struct ConsistencyError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash-consistency violation: {}", self.message)
    }
}

impl std::error::Error for ConsistencyError {}

/// Outcome of a successful crash-consistency check.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// Power failures injected.
    pub failures: u64,
    /// Cycles of the golden run.
    pub golden_cycles: u64,
    /// Cycles of the fail-and-recover run (including re-execution).
    pub recovery_cycles: u64,
    /// Words of PM compared.
    pub words_compared: usize,
}

/// Runs the failure-free golden execution and returns its final durable
/// memory.
///
/// # Errors
///
/// Fails if the run does not complete within the configured cycle cap,
/// or if the drain property (PM == architectural memory at completion)
/// is violated.
pub fn golden_run(
    compiled: &Compiled,
    cfg: &SimConfig,
    threads: usize,
) -> Result<(Memory, u64), ConsistencyError> {
    let mut m = Machine::new(
        compiled.program.clone(),
        compiled.recipes.clone(),
        cfg.clone(),
        threads,
    );
    if m.run() != Completion::Finished {
        return Err(ConsistencyError {
            message: format!("golden run hit the cycle cap at {}", m.now()),
        });
    }
    let pm = m.pm_contents();
    let vmem = m.volatile_contents();
    if let Some((addr, p, v)) = pm.first_difference(vmem) {
        return Err(ConsistencyError {
            message: format!(
                "drain property violated at {addr:#x}: PM={p:#x} arch={v:#x} \
                 (a committed store never reached PM or vice versa)"
            ),
        });
    }
    Ok((pm.clone(), m.now()))
}

/// Runs the workload with power failures at the given cycles, recovers
/// after each, and checks the final PM against the golden run.
///
/// # Errors
///
/// Returns a [`ConsistencyError`] naming the first differing word, or
/// describing an incomplete run.
pub fn check_crash_consistency(
    compiled: &Compiled,
    cfg: &SimConfig,
    threads: usize,
    failure_cycles: &[u64],
) -> Result<ConsistencyReport, ConsistencyError> {
    let (golden, golden_cycles) = golden_run(compiled, cfg, threads)?;

    let mut m = Machine::new(
        compiled.program.clone(),
        compiled.recipes.clone(),
        cfg.clone(),
        threads,
    );
    for &at in failure_cycles {
        if m.run_until(at) {
            break; // already finished before this failure point
        }
        m.inject_power_failure();
    }
    if m.run() != Completion::Finished {
        return Err(ConsistencyError {
            message: format!("recovery run hit the cycle cap at {}", m.now()),
        });
    }

    let pm = m.pm_contents();
    // Checkpoint/PC slots are recovery metadata, not program state:
    // forced region closes dump the live register file at whatever
    // point a timeout or spin retry fired, so their final contents are
    // timing-dependent and legitimately differ between the golden and
    // the fail-and-recover run.
    if let Some((addr, got, want)) =
        pm.first_difference_where(&golden, |a| !layout::is_checkpoint_addr(a))
    {
        return Err(ConsistencyError {
            message: format!(
                "PM diverges at {addr:#x} after {} failure(s): got {got:#x}, \
                 golden {want:#x}",
                m.stats().failures
            ),
        });
    }
    Ok(ConsistencyReport {
        failures: m.stats().failures,
        golden_cycles,
        recovery_cycles: m.now(),
        words_compared: golden.len(),
    })
}
