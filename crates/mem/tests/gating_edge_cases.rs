//! WPQ gating edge cases at the exact §IV-F hand-off points: power cut
//! between one MC receiving a boundary and the others (NUMA skew),
//! during the bulk battery flush, and between the per-MC flush-done
//! reports. Each test drives the controllers + tracker directly so the
//! crash lands on a precisely known protocol state.

use lightwsp_mem::controller::MemController;
use lightwsp_mem::persist_path::{PersistEntry, PersistKind};
use lightwsp_mem::pm::PersistentMemory;
use lightwsp_mem::{MemConfig, RegionId, RegionTracker};

fn data(addr: u64, region: RegionId) -> PersistEntry {
    PersistEntry {
        addr,
        val: addr ^ 0xD00D,
        region,
        kind: PersistKind::Data,
        core: 0,
    }
}

fn bdry(region: RegionId) -> PersistEntry {
    PersistEntry {
        addr: 0x1000_0100,
        val: region,
        region,
        kind: PersistKind::Boundary,
        core: 0,
    }
}

fn setup() -> (MemConfig, RegionTracker, MemController, MemController) {
    let cfg = MemConfig::table1();
    let tracker = RegionTracker::new(2, cfg.noc_latency);
    let mc0 = MemController::new(0, &cfg);
    let mc1 = MemController::new(1, &cfg);
    (cfg, tracker, mc0, mc1)
}

/// Crash exactly between the boundary's arrival at MC0 and MC1: the
/// region is not survivable (its boundary never reached every WPQ), so
/// *both* MCs must discard its entries — including MC0, which *did* see
/// the boundary. A single-MC view is exactly the `AnyMcBoundary` bug.
#[test]
fn boundary_skew_discards_on_every_mc() {
    let (_cfg, mut tracker, mut mc0, mut mc1) = setup();
    let r = tracker.alloc_region();
    assert!(mc0.try_insert(&data(0x100, r), true, 0, &mut tracker));
    assert!(mc0.try_insert(&data(0x180, r), true, 0, &mut tracker));
    assert!(mc1.try_insert(&data(0x208, r), true, 0, &mut tracker));
    // Boundary reaches MC0 only; power fails before it reaches MC1.
    assert!(mc0.try_insert(&bdry(r), true, 5, &mut tracker));
    assert!(tracker.boundary_anywhere(r));
    assert!(!tracker.boundary_everywhere(r));

    let survivable = tracker.survivable_regions();
    assert!(survivable.is_empty(), "skewed region must not survive");

    let mut pm = PersistentMemory::new();
    let res0 = mc0.on_power_failure(&survivable, &mut pm);
    let res1 = mc1.on_power_failure(&survivable, &mut pm);
    assert!(res0.flushed.is_empty() && res1.flushed.is_empty());
    assert_eq!(res0.discarded.len(), 3, "MC0 drops data + its boundary");
    assert_eq!(res1.discarded.len(), 1);
    for addr in [0x100, 0x180, 0x208] {
        assert_eq!(pm.peek_word(addr), 0, "discarded store reached PM");
    }
}

/// Crash while the region is survivable but nothing flushed yet: the
/// battery completes the whole bulk flush on both MCs, and a younger
/// region that is still open is discarded in the same resolution — the
/// flush gate opens region by region, never entry by entry.
#[test]
fn bulk_flush_is_completed_atomically_per_region() {
    let (_cfg, mut tracker, mut mc0, mut mc1) = setup();
    let r1 = tracker.alloc_region();
    let r2 = tracker.alloc_region();
    assert!(mc0.try_insert(&data(0x100, r1), true, 0, &mut tracker));
    assert!(mc1.try_insert(&data(0x208, r1), true, 0, &mut tracker));
    assert!(mc0.try_insert(&bdry(r1), true, 3, &mut tracker));
    assert!(mc1.try_insert(&bdry(r1), true, 7, &mut tracker));
    // r2 is still open: stores in flight, boundary not yet retired.
    assert!(mc0.try_insert(&data(0x300, r2), true, 8, &mut tracker));
    assert!(mc1.try_insert(&data(0x308, r2), true, 8, &mut tracker));

    assert_eq!(tracker.survivable_regions(), vec![r1]);
    let survivable = tracker.survivable_regions();
    let mut pm = PersistentMemory::new();
    let res0 = mc0.on_power_failure(&survivable, &mut pm);
    let res1 = mc1.on_power_failure(&survivable, &mut pm);

    // Every r1 entry persisted, every r2 entry discarded, on both MCs.
    assert!(res0.flushed.iter().all(|e| e.region == r1));
    assert!(res1.flushed.iter().all(|e| e.region == r1));
    assert!(res0.discarded.iter().all(|e| e.region == r2));
    assert!(res1.discarded.iter().all(|e| e.region == r2));
    assert_eq!(pm.peek_word(0x100), 0x100 ^ 0xD00D);
    assert_eq!(pm.peek_word(0x208), 0x208 ^ 0xD00D);
    assert_eq!(pm.peek_word(0x300), 0);
    assert_eq!(pm.peek_word(0x308), 0);
}

/// Crash between MC0's flush-done report and MC1's: MC0 already drained
/// the region and advanced its flush ID, MC1 still holds entries. The
/// region stays survivable (boundary info is retained until commit), so
/// MC1's remainder battery-flushes and PM ends up with the complete
/// region — the flush-ID advance is atomic per region per MC, and a
/// half-reported region is never half-persisted.
#[test]
fn crash_between_flush_done_reports_completes_the_region() {
    let (_cfg, mut tracker, mut mc0, mut mc1) = setup();
    let r = tracker.alloc_region();
    assert!(mc0.try_insert(&data(0x100, r), true, 0, &mut tracker));
    assert!(mc1.try_insert(&data(0x208, r), true, 0, &mut tracker));
    assert!(mc1.try_insert(&data(0x288, r), true, 0, &mut tracker));
    assert!(mc0.try_insert(&bdry(r), true, 2, &mut tracker));
    assert!(mc1.try_insert(&bdry(r), true, 4, &mut tracker));

    // Let MC0 flush normally until it reports done; MC1 never ticks
    // (its channels are "busy" from the crash's point of view).
    let mut pm = PersistentMemory::new();
    let mut flushed = Vec::new();
    let mut now = tracker.bdry_acked_at(r).unwrap();
    while !tracker.mc_flush_reported(r, 0) {
        mc0.tick(now, &mut tracker, &mut pm, &mut flushed);
        tracker.tick(now);
        now += 1;
        assert!(now < 10_000, "MC0 never finished its flush");
    }
    assert_eq!(tracker.flush_pos(0), r + 1, "MC0 advanced past the region");
    assert_eq!(tracker.flush_pos(1), r, "MC1 still mid-region");
    assert!(!tracker.mc_flush_reported(r, 1));

    // Power cut here. The region must survive and MC1 must complete it.
    let survivable = tracker.survivable_regions();
    assert_eq!(survivable, vec![r]);
    let res0 = mc0.on_power_failure(&survivable, &mut pm);
    let res1 = mc1.on_power_failure(&survivable, &mut pm);
    assert!(res0.discarded.is_empty() && res1.discarded.is_empty());
    assert_eq!(
        res1.flushed.iter().filter(|e| !e.is_boundary).count(),
        2,
        "MC1's remaining stores battery-flush"
    );
    assert_eq!(pm.peek_word(0x100), 0x100 ^ 0xD00D);
    assert_eq!(pm.peek_word(0x208), 0x208 ^ 0xD00D);
    assert_eq!(pm.peek_word(0x288), 0x288 ^ 0xD00D);
}
