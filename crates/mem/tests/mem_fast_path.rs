//! Differential proptests for the memory-path fast paths: the SoA
//! [`SetAssocCache`] (MRU way memo, stamp-word LRU, argmin victim
//! selection, [`LineFilter`] probe-then-verify snooping) must be
//! access-for-access equivalent to the array-of-structs
//! [`SetAssocCacheRef`] specification (full way scans, linear buffer
//! snoops) on random streams under every [`VictimPolicy`] — same
//! [`AccessResult`] per access, same hit/miss/snoop/conflict counters,
//! same resident lines. The streams mutate the snooped buffer as they
//! go, so the filter's incremental maintenance is exercised alongside
//! the cache itself.

use lightwsp_mem::cache::{AccessResult, SetAssocCache, VictimPolicy};
use lightwsp_mem::cache_ref::SetAssocCacheRef;
use lightwsp_mem::line_filter::LineFilter;
use proptest::prelude::*;
use std::collections::VecDeque;

/// One step of a stream: a cache access plus optional churn of the
/// snooped buffer (modelling persist-path pushes and drains).
#[derive(Clone, Debug)]
struct Step {
    addr: u64,
    write: bool,
    buf_push: Option<u64>,
    buf_pop: bool,
}

fn steps(addr_bits: u32) -> impl Strategy<Value = Vec<Step>> {
    let step = (
        0u64..(1 << addr_bits),
        any::<bool>(),
        any::<bool>(),
        0u64..(1 << addr_bits),
        any::<bool>(),
    )
        .prop_map(|(addr, write, push, push_addr, buf_pop)| Step {
            addr,
            write,
            buf_push: push.then_some(push_addr),
            buf_pop,
        });
    prop::collection::vec(step, 1..300)
}

/// Drives `stream` through both models under `policy`, asserting
/// per-access and aggregate equivalence. `use_try_hit` additionally
/// routes fast-path accesses through the [`SetAssocCache::try_hit`] /
/// `access` split the machine-level load fast path uses, proving a
/// missing `try_hit` changes no state.
fn run_differential(
    stream: &[Step],
    policy: VictimPolicy,
    sets: usize,
    ways: usize,
    line: u64,
    use_try_hit: bool,
) -> Result<(), TestCaseError> {
    let mut fast = SetAssocCache::new(sets, ways, line);
    let mut reference = SetAssocCacheRef::new(sets, ways, line);
    let mut filter = LineFilter::new(line);
    let mut buf: VecDeque<u64> = VecDeque::new();

    for step in stream {
        if let Some(a) = step.buf_push {
            buf.push_back(a);
            filter.insert(a);
        }
        if step.buf_pop {
            if let Some(a) = buf.pop_front() {
                filter.remove(a);
            }
        }

        let got = if use_try_hit && fast.try_hit(step.addr, step.write) {
            AccessResult {
                hit: true,
                evicted: None,
                conflict_delayed: false,
            }
        } else {
            fast.access(step.addr, step.write, policy, |la| {
                filter.maybe_contains_line(la) && buf.iter().any(|&x| x / line == la / line)
            })
        };
        let want = reference.access(step.addr, step.write, policy, |la| {
            buf.iter().any(|&x| x / line == la / line)
        });
        prop_assert_eq!(
            got,
            want,
            "divergence at addr {:#x} under {}",
            step.addr,
            policy.name()
        );
    }

    prop_assert_eq!(fast.hit_miss(), reference.hit_miss());
    prop_assert_eq!(fast.snoop_stats(), reference.snoop_stats());
    for step in stream {
        prop_assert_eq!(
            fast.probe(step.addr),
            reference.probe(step.addr),
            "residency divergence at {:#x}",
            step.addr
        );
    }
    Ok(())
}

proptest! {
    /// Fast path == specification on random streams, all four victim
    /// policies, power-of-two geometry (the shipped configs).
    #[test]
    fn fast_path_matches_reference_pow2(
        stream in steps(12),
        sets_log2 in 1u32..5,
        ways in 1usize..8,
    ) {
        for policy in VictimPolicy::all() {
            run_differential(&stream, policy, 1 << sets_log2, ways, 64, false)?;
        }
    }

    /// Same, with non-power-of-two set counts and line sizes so the
    /// division fallbacks of the address split and the filter are
    /// proven equivalent too.
    #[test]
    fn fast_path_matches_reference_non_pow2(
        stream in steps(12),
        sets in 3usize..12,
        ways in 1usize..5,
    ) {
        for policy in VictimPolicy::all() {
            run_differential(&stream, policy, sets, ways, 48, false)?;
        }
    }

    /// The machine-level split — `try_hit` first, general `access` only
    /// on a miss — is equivalent to calling `access` directly, which is
    /// `try_hit`'s "a miss changes no state at all" contract.
    #[test]
    fn try_hit_then_access_matches_reference(
        stream in steps(12),
        sets_log2 in 1u32..5,
        ways in 1usize..8,
    ) {
        for policy in VictimPolicy::all() {
            run_differential(&stream, policy, 1 << sets_log2, ways, 64, true)?;
        }
    }
}
