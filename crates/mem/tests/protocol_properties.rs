//! Property-based tests of the ordering protocol and WPQ gating: for
//! random multi-core schedules, the memory system must uphold the epoch
//! invariants LightWSP's crash consistency rests on (§III-A, §IV-B):
//!
//! * **per-MC epoch order**: entries flush to PM in non-decreasing
//!   region order at every MC (except the §IV-D undo-logged fallback,
//!   which these schedules never trigger);
//! * **commit order**: regions commit in strictly increasing global ID
//!   order, and only after their boundary reached every MC;
//! * **drain**: once every region's boundary is delivered and enough
//!   cycles pass, every WPQ empties and every region commits.

use lightwsp_mem::controller::MemController;
use lightwsp_mem::persist_path::{PersistEntry, PersistKind};
use lightwsp_mem::pm::PersistentMemory;
use lightwsp_mem::{MemConfig, RegionTracker};
use proptest::prelude::*;

/// One virtual core's scripted work: regions of `stores_per_region`
/// stores each, to pseudo-random addresses.
#[derive(Clone, Debug)]
struct CoreScript {
    regions: u32,
    stores_per_region: u32,
    addr_seed: u64,
}

fn core_script() -> impl Strategy<Value = CoreScript> {
    (1u32..6, 1u32..12, 0u64..u64::MAX).prop_map(|(regions, stores_per_region, addr_seed)| {
        CoreScript {
            regions,
            stores_per_region,
            addr_seed,
        }
    })
}

/// Drives the MCs + tracker with interleaved per-core FIFO streams and
/// checks the invariants.
fn run_schedule(scripts: Vec<CoreScript>, interleave_seed: u64) -> Result<(), TestCaseError> {
    let cfg = MemConfig::table1();
    let mut tracker = RegionTracker::new(cfg.num_mcs, cfg.noc_latency);
    let mut mcs: Vec<MemController> = (0..cfg.num_mcs)
        .map(|i| MemController::new(i, &cfg))
        .collect();
    let mut pm = PersistentMemory::new();

    // Build each core's in-order stream: per region, stores then the
    // boundary token. Region IDs are sampled lazily per store batch to
    // mirror the machine.
    struct Stream {
        items: Vec<PersistEntry>,
        next: usize,
        bdry_progress: Vec<bool>,
    }
    let mut streams: Vec<Stream> = Vec::new();
    for (core, sc) in scripts.iter().enumerate() {
        streams.push(Stream {
            items: Vec::new(),
            next: 0,
            bdry_progress: vec![false; cfg.num_mcs],
        });
        let mut x = sc.addr_seed | 1;
        for _ in 0..sc.regions {
            let region = tracker.alloc_region();
            let s = &mut streams[core];
            for _ in 0..sc.stores_per_region {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = 0x4000_0000 + (x >> 20) % 0x10000 * 8;
                s.items.push(PersistEntry {
                    addr,
                    val: x,
                    region,
                    kind: PersistKind::Data,
                    core,
                });
            }
            s.items.push(PersistEntry {
                addr: 0x1000_0100 + core as u64 * 0x200,
                val: region,
                region,
                kind: PersistKind::Boundary,
                core,
            });
        }
    }

    let mut rng = interleave_seed | 1;
    let mut flushed: Vec<lightwsp_mem::wpq::WpqEntry> = Vec::new();
    let mut last_flushed_region = vec![0u64; cfg.num_mcs];
    let mut last_commit = 0u64;

    for now in 1..200_000u64 {
        // MC work first.
        flushed.clear();
        for mc in &mut mcs {
            let before = flushed.len();
            mc.tick(now, &mut tracker, &mut pm, &mut flushed);
            // Per-MC epoch order: this MC's flushes are non-decreasing.
            for e in &flushed[before..] {
                prop_assert!(
                    e.region >= last_flushed_region[mc.id()],
                    "MC{} flushed region {} after {}",
                    mc.id(),
                    e.region,
                    last_flushed_region[mc.id()]
                );
                last_flushed_region[mc.id()] = e.region;
            }
        }
        if let Some(k) = tracker.tick(now) {
            prop_assert!(
                k > last_commit,
                "commit order violated: {k} after {last_commit}"
            );
            prop_assert!(
                tracker
                    .survivable_regions()
                    .first()
                    .copied()
                    .unwrap_or(k + 1)
                    > k,
                "committed region still listed as pending"
            );
            last_commit = k;
            for mc in &mut mcs {
                mc.on_region_committed(k);
            }
        }

        // Randomly advance one stream by one delivery (per-core FIFO).
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pick = (rng >> 33) as usize % streams.len();
        let s = &mut streams[pick];
        if s.next < s.items.len() {
            let e = s.items[s.next];
            match e.kind {
                PersistKind::Data => {
                    let mc = cfg.mc_of(e.addr);
                    if mcs[mc].try_insert(&e, true, now, &mut tracker) {
                        s.next += 1;
                    }
                }
                PersistKind::Boundary => {
                    let home = cfg.mc_of(e.addr);
                    let mut all = true;
                    for (m, mc) in mcs.iter_mut().enumerate() {
                        if s.bdry_progress[m] {
                            continue;
                        }
                        if mc.try_insert(&e, m == home, now, &mut tracker) {
                            s.bdry_progress[m] = true;
                        } else {
                            all = false;
                        }
                    }
                    if all {
                        s.bdry_progress.iter_mut().for_each(|f| *f = false);
                        s.next += 1;
                    }
                }
            }
        }

        if streams.iter().all(|s| s.next == s.items.len())
            && mcs.iter().all(|mc| mc.wpq().is_empty())
            && tracker.commit_frontier() > tracker.last_allocated()
        {
            // Drained: every allocated region committed.
            prop_assert_eq!(tracker.committed(), tracker.last_allocated());
            return Ok(());
        }
    }
    prop_assert!(false, "schedule failed to drain");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn epoch_order_and_drain_hold_for_random_schedules(
        scripts in prop::collection::vec(core_script(), 1..5),
        seed in 0u64..u64::MAX,
    ) {
        run_schedule(scripts, seed)?;
    }
}
