//! Property tests for the WPQ's O(1) per-region count index.
//!
//! The event-driven stepper trusts `count_region`/`has_region` to
//! answer from the `region_counts` map without walking the queue; a
//! stale index would silently corrupt flush scheduling and the
//! skip-ahead event scan. These properties drive the queue through
//! random mutator sequences and recount from the raw entry list
//! ([`Wpq::entries`]) after every step.

use lightwsp_mem::wpq::{Wpq, WpqEntry};
use proptest::prelude::*;

/// A randomly chosen queue mutation.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Insert an entry of the given region (skipped when full).
    Insert { region: u64, boundary: bool },
    /// `take_one_of_region(region)`.
    TakeOneOfRegion { region: u64 },
    /// `take_one_oldest()`.
    TakeOneOldest,
    /// `take_region(region, max)`.
    TakeRegion { region: u64, max: usize },
    /// `take_oldest(max)`.
    TakeOldest { max: usize },
    /// `drain_all()`.
    DrainAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Region IDs drawn from a tiny pool so mutators actually collide.
    prop_oneof![
        (1u64..6, any::<bool>()).prop_map(|(region, boundary)| Op::Insert { region, boundary }),
        (1u64..6).prop_map(|region| Op::TakeOneOfRegion { region }),
        Just(Op::TakeOneOldest),
        (1u64..6, 0usize..5).prop_map(|(region, max)| Op::TakeRegion { region, max }),
        (0usize..5).prop_map(|max| Op::TakeOldest { max }),
        Just(Op::DrainAll),
    ]
}

/// Recounts per-region occupancy from the raw entry list.
fn recount(q: &Wpq, region: u64) -> usize {
    q.entries().iter().filter(|e| e.region == region).count()
}

fn entry(addr: u64, region: u64, boundary: bool) -> WpqEntry {
    WpqEntry {
        addr,
        val: addr ^ 0x5555,
        region,
        is_boundary: boundary,
        home: addr.is_multiple_of(16),
        core: (addr % 4) as usize,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// After every mutation, the O(1) index agrees with a full recount
    /// for every region (present or not), and the removal paths return
    /// exactly what the index said was available.
    #[test]
    fn count_index_matches_recount(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut q = Wpq::new(16);
        let mut next_addr = 0u64;
        for op in ops {
            match op {
                Op::Insert { region, boundary } => {
                    if q.has_room() {
                        q.insert(entry(next_addr, region, boundary));
                        next_addr += 8;
                    }
                }
                Op::TakeOneOfRegion { region } => {
                    let had = q.count_region(region);
                    let got = q.take_one_of_region(region);
                    prop_assert_eq!(got.is_some(), had > 0);
                    if let Some(e) = got {
                        prop_assert_eq!(e.region, region);
                    }
                }
                Op::TakeOneOldest => {
                    let was_empty = q.is_empty();
                    prop_assert_eq!(q.take_one_oldest().is_none(), was_empty);
                }
                Op::TakeRegion { region, max } => {
                    let had = q.count_region(region);
                    let got = q.take_region(region, max);
                    prop_assert_eq!(got.len(), had.min(max));
                    prop_assert!(got.iter().all(|e| e.region == region));
                }
                Op::TakeOldest { max } => {
                    let had = q.len();
                    let got = q.take_oldest(max);
                    prop_assert_eq!(got.len(), had.min(max));
                }
                Op::DrainAll => {
                    let had = q.len();
                    prop_assert_eq!(q.drain_all().len(), had);
                    prop_assert!(q.is_empty());
                }
            }
            // The index and the raw list must agree for every region in
            // the pool — including absent ones (has_region false).
            for region in 0..8u64 {
                let actual = recount(&q, region);
                prop_assert_eq!(
                    q.count_region(region), actual,
                    "index diverged for region {} after {:?}", region, op
                );
                prop_assert_eq!(q.has_region(region), actual > 0);
            }
            prop_assert!(q.len() <= q.capacity());
        }
    }
}
