//! Property-based cache tests: the set-associative model must agree
//! with a straightforward reference LRU implementation on hit/miss
//! behaviour, and the direct-mapped model with a reference map.

use lightwsp_mem::cache::{DirectMappedCache, SetAssocCache, VictimPolicy};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU cache: per set, a recency-ordered list of tags.
struct RefLru {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line: u64,
}

impl RefLru {
    fn new(sets: usize, ways: usize, line: u64) -> RefLru {
        RefLru {
            sets: vec![VecDeque::new(); sets],
            ways,
            line,
        }
    }

    /// Returns true on hit.
    fn access(&mut self, addr: u64) -> bool {
        let l = addr / self.line;
        let set = (l % self.sets.len() as u64) as usize;
        let tag = l / self.sets.len() as u64;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(tag);
            false
        }
    }
}

proptest! {
    /// With snooping disabled (no conflicts), the model's hit/miss trace
    /// matches the reference LRU exactly.
    #[test]
    fn set_assoc_matches_reference_lru(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..400),
        sets_log2 in 1u32..5,
        ways in 1usize..8,
    ) {
        let sets = 1usize << sets_log2;
        let mut model = SetAssocCache::new(sets, ways, 64);
        let mut reference = RefLru::new(sets, ways, 64);
        for &a in &addrs {
            let r = model.access(a, false, VictimPolicy::StaleLoad, |_| false);
            let want = reference.access(a);
            prop_assert_eq!(r.hit, want, "divergence at addr {:#x}", a);
        }
        let (h, m) = model.hit_miss();
        prop_assert_eq!((h + m) as usize, addrs.len());
    }

    /// Dirty data is never silently lost: every line written is either
    /// still present or was reported evicted as dirty.
    #[test]
    fn dirty_lines_are_tracked(
        writes in prop::collection::vec(0u64..(1 << 13), 1..200),
    ) {
        let mut model = SetAssocCache::new(4, 2, 64);
        let mut dirty_out = std::collections::BTreeSet::new();
        let mut written = std::collections::BTreeSet::new();
        for &a in &writes {
            let line = a & !63;
            written.insert(line);
            let r = model.access(a, true, VictimPolicy::StaleLoad, |_| false);
            if let Some((ev, true)) = r.evicted {
                dirty_out.insert(ev);
            }
        }
        for &line in &written {
            prop_assert!(
                model.probe(line) || dirty_out.contains(&line),
                "dirty line {:#x} vanished",
                line
            );
        }
    }

    /// The direct-mapped cache hits iff the reference map says so.
    #[test]
    fn direct_mapped_matches_reference(
        addrs in prop::collection::vec(0u64..(1 << 16), 1..300),
        capacity_lines in 1u64..64,
    ) {
        let mut model = DirectMappedCache::new(capacity_lines * 64, 64);
        let mut reference: Vec<Option<u64>> = vec![None; capacity_lines as usize];
        for &a in &addrs {
            let line = a / 64;
            let set = (line % capacity_lines) as usize;
            let (hit, _) = model.access(a, false);
            prop_assert_eq!(hit, reference[set] == Some(line), "addr {:#x}", a);
            reference[set] = Some(line);
        }
    }
}
