//! Cache models: set-associative (L1D, L2) and sparse direct-mapped
//! (the off-chip DRAM cache of Intel Optane's memory mode).
//!
//! These caches track tags, dirtiness and LRU state for *timing and
//! miss-rate* purposes; data values flow through the functional
//! interpreter. The L1 exposes the pluggable victim selection that
//! buffer snooping needs (§IV-G, Fig. 13): when the LRU victim's line
//! still has data in the core's front-end buffer (a *buffer conflict*),
//! LightWSP evicts a conflict-free line instead — scanning all ways
//! (full), half the ways (half), or none (zero: wait for the buffer
//! entry to drain). The `stale-load` configuration disables snooping
//! entirely and is used to quantify the stale-load problem of Fig. 6.
//!
//! The set-associative model is the memory path's hottest structure —
//! every simulated load and store of every scheme passes through it —
//! so it is laid out for the access loop rather than for readability
//! of one line's state:
//!
//! * **SoA split**: tags live in one dense array and all remaining
//!   per-line state in a second — a *stamp word* packing the LRU stamp
//!   and the dirty bit as `(last_use << 1) | dirty`, with `0` meaning
//!   invalid (a valid line always has `last_use ≥ 1`: the tick
//!   increments before every fill and touch). A way scan walks a
//!   contiguous `u64` tag run instead of striding 24-byte structs, the
//!   hit probe is two loads, and a crash-sweep fork memcpys ~⅓ less
//!   per cache. LRU victim ordering sorts the stamp words directly:
//!   `last_use` occupies the high bits and is unique within a set (one
//!   line touched per tick), so the order matches the reference model's
//!   sort by `last_use` exactly;
//! * **shift/mask address split**: every shipped geometry (sets, line
//!   size) is a power of two, so set/tag extraction is two shifts and
//!   a mask instead of two 64-bit divisions per access (a division
//!   fallback covers exotic configs);
//! * **MRU way memo**: the cache remembers the last (set, way) it hit
//!   or filled; back-to-back accesses to the same line — the common
//!   case in dense compute — revalidate the memo (tag compare + valid
//!   bit) and skip the way scan entirely. The memo is advisory: it is
//!   checked against live state on every use, so no operation needs to
//!   invalidate it for correctness;
//! * [`SetAssocCache::try_hit`] — the hit path alone, exposed so the
//!   machine can answer "L1 hit, nothing else happens" without
//!   constructing the snoop closure the general [`SetAssocCache::access`]
//!   wants. On a miss it touches *nothing* (no tick, no counters) and
//!   the caller falls back to `access`, which performs the single
//!   canonical tick increment — preserving the exact per-access tick
//!   sequence, and with it LRU order, bit-for-bit.
//!
//! The original array-of-structs implementation is retained as
//! [`crate::cache_ref::SetAssocCacheRef`], the executable specification
//! the differential proptests and the `mem_path` microbench run this
//! model against.

use lightwsp_ir::fxhash::FxHashMap;

/// Victim-selection policy on a buffer conflict (§V-F3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum VictimPolicy {
    /// Scan every way for a conflict-free victim (paper default).
    #[default]
    Full,
    /// Scan half the ways.
    Half,
    /// Never redirect: wait for the conflicting buffer entry to drain.
    Zero,
    /// No snooping at all — exposes the stale-load problem.
    StaleLoad,
}

impl VictimPolicy {
    /// Display name used by the evaluation harness.
    pub fn name(self) -> &'static str {
        match self {
            VictimPolicy::Full => "full-victim",
            VictimPolicy::Half => "half-victim",
            VictimPolicy::Zero => "zero-victim",
            VictimPolicy::StaleLoad => "stale-load",
        }
    }

    /// All four policies, in declaration order (test matrices).
    pub fn all() -> [VictimPolicy; 4] {
        [
            VictimPolicy::Full,
            VictimPolicy::Half,
            VictimPolicy::Zero,
            VictimPolicy::StaleLoad,
        ]
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// True on hit.
    pub hit: bool,
    /// A line that had to be evicted to make room (line base address and
    /// dirtiness).
    pub evicted: Option<(u64, bool)>,
    /// True if the eviction was delayed by an unresolvable buffer
    /// conflict (zero-victim policy, or every candidate conflicting).
    pub conflict_delayed: bool,
}

/// A set-associative write-back, write-allocate cache (SoA fast-path
/// layout; see the module docs for the design and the parity story).
///
/// All state lives in two flat dense arrays: a clone (a crash-sweep
/// machine fork copies every cache) is two contiguous memcpys rather
/// than one allocation per set.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// `set * ways + way` → tag.
    tags: Vec<u64>,
    /// `set * ways + way` → stamp word `(last_use << 1) | dirty`;
    /// `0` = invalid. `last_use` cannot reach `2^63`: it is bounded by
    /// the tick, which increments once per access.
    meta: Vec<u64>,
    num_sets: usize,
    ways: usize,
    line_bytes: u64,
    /// Shift/mask address split (all shipped geometries are powers of
    /// two); `pow2 == false` falls back to division.
    line_shift: u32,
    set_shift: u32,
    set_mask: u64,
    pow2: bool,
    /// MRU way memo: last set hit or filled (`u32::MAX` = none) and the
    /// way within it. Advisory — revalidated against tags/valid on use.
    mru_set: u32,
    mru_way: u32,
    tick: u64,
    hits: u64,
    misses: u64,
    snoops: u64,
    conflicts: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` lines of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `ways > 16` (the victim
    /// scan's stack buffer).
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> SetAssocCache {
        assert!(
            sets > 0 && ways > 0 && line_bytes > 0,
            "cache dimensions must be positive"
        );
        assert!(ways <= 16, "victim scan supports at most 16 ways");
        let lines = sets * ways;
        let pow2 = line_bytes.is_power_of_two() && sets.is_power_of_two();
        SetAssocCache {
            tags: vec![0; lines],
            meta: vec![0; lines],
            num_sets: sets,
            ways,
            line_bytes,
            line_shift: if pow2 { line_bytes.trailing_zeros() } else { 0 },
            set_shift: if pow2 { sets.trailing_zeros() } else { 0 },
            set_mask: (sets as u64).wrapping_sub(1),
            pow2,
            mru_set: u32::MAX,
            mru_way: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            snoops: 0,
            conflicts: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        if self.pow2 {
            let line = addr >> self.line_shift;
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            let line = addr / self.line_bytes;
            (
                (line % self.num_sets as u64) as usize,
                line / self.num_sets as u64,
            )
        }
    }

    /// Line base address from set/tag.
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.num_sets as u64 + set as u64) * self.line_bytes
    }

    /// Books a hit on the line at flat index `idx`: the tick increment,
    /// LRU touch, dirty update, and hit count of the reference
    /// semantics — one read-modify-write of the stamp word.
    #[inline]
    fn book_hit(&mut self, idx: usize, is_write: bool) {
        self.tick += 1;
        self.meta[idx] = (self.tick << 1) | (self.meta[idx] & 1) | is_write as u64;
        self.hits += 1;
    }

    /// The hit fast path: if `addr` is resident, performs the complete
    /// hit bookkeeping (tick, LRU, dirty, hit counter) and returns
    /// true. On a miss it changes **no state at all** — callers follow
    /// up with [`SetAssocCache::access`], whose single tick increment
    /// then reproduces the reference per-access tick sequence exactly.
    #[inline]
    pub fn try_hit(&mut self, addr: u64, is_write: bool) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        // MRU way memo: back-to-back same-line accesses skip the scan.
        if set as u32 == self.mru_set {
            let idx = base + self.mru_way as usize;
            if self.tags[idx] == tag && self.meta[idx] != 0 {
                self.book_hit(idx, is_write);
                return true;
            }
        }
        // Dense tag scan, one bounds check for the whole set. A stale
        // tag can equal `tag` with its line invalid (after a power
        // failure), so a match still checks the stamp word — and keeps
        // scanning on a stale match rather than declaring a miss.
        let tags = &self.tags[base..base + self.ways];
        for (way, &t) in tags.iter().enumerate() {
            if t == tag && self.meta[base + way] != 0 {
                self.mru_set = set as u32;
                self.mru_way = way as u32;
                self.book_hit(base + way, is_write);
                return true;
            }
        }
        false
    }

    /// Accesses `addr`; on a miss the line is allocated, evicting a
    /// victim chosen by `policy`. `conflicts_with_buffer` reports whether
    /// a candidate victim line conflicts with a front-end-buffer entry
    /// (pass `|_| false` for caches that do not snoop).
    pub fn access(
        &mut self,
        addr: u64,
        is_write: bool,
        policy: VictimPolicy,
        conflicts_with_buffer: impl FnMut(u64) -> bool,
    ) -> AccessResult {
        if self.try_hit(addr, is_write) {
            return AccessResult {
                hit: true,
                evicted: None,
                conflict_delayed: false,
            };
        }
        self.miss_fill(addr, is_write, policy, conflicts_with_buffer)
    }

    /// The miss path: allocate, choosing a victim under `policy`.
    fn miss_fill(
        &mut self,
        addr: u64,
        is_write: bool,
        policy: VictimPolicy,
        mut conflicts_with_buffer: impl FnMut(u64) -> bool,
    ) -> AccessResult {
        self.tick += 1;
        self.misses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let ways = self.ways;
        let tick = self.tick;

        // Invalid way, if any (first in way order).
        for way in 0..ways {
            let idx = base + way;
            if self.meta[idx] == 0 {
                self.fill(idx, tag, is_write, tick);
                self.mru_set = set as u32;
                self.mru_way = way as u32;
                return AccessResult {
                    hit: false,
                    evicted: None,
                    conflict_delayed: false,
                };
            }
        }

        // LRU victim: the smallest stamp word is the least recently
        // used (`last_use` occupies the high bits and is unique within
        // a set, so stamp order is recency order). The full LRU order
        // is only materialized on the rare conflict continuation below.
        let mut min_way = 0usize;
        let mut min_meta = self.meta[base];
        for w in 1..ways {
            let m = self.meta[base + w];
            if m < min_meta {
                min_meta = m;
                min_way = w;
            }
        }

        let scan = match policy {
            VictimPolicy::Full => ways,
            VictimPolicy::Half => ways.div_ceil(2),
            VictimPolicy::Zero | VictimPolicy::StaleLoad => 1,
        };
        let mut chosen = min_way;
        let mut delayed = false;
        if policy != VictimPolicy::StaleLoad {
            // First candidate = the LRU way itself; no sort needed.
            // Only dirty victims can conflict (clean lines carry no
            // pending store data).
            let mut first_conflicts = false;
            if min_meta & 1 != 0 {
                self.snoops += 1;
                let la = self.line_addr(set, self.tags[base + min_way]);
                if conflicts_with_buffer(la) {
                    self.conflicts += 1;
                    first_conflicts = true;
                }
            }
            if first_conflicts {
                // Rare: resume the candidate scan in LRU order past the
                // conflicting LRU way (ways ≤ 16: stack insertion sort).
                let mut order = [0usize; 16];
                for (i, slot) in order.iter_mut().enumerate().take(ways) {
                    *slot = i;
                }
                let order = &mut order[..ways];
                order.sort_unstable_by_key(|&w| self.meta[base + w]);
                debug_assert_eq!(order[0], min_way, "stamp order vs argmin");
                let mut found = None;
                for &cand in order.iter().take(scan).skip(1) {
                    let idx = base + cand;
                    if self.meta[idx] & 1 != 0 {
                        self.snoops += 1;
                        let la = self.line_addr(set, self.tags[idx]);
                        if conflicts_with_buffer(la) {
                            self.conflicts += 1;
                            continue;
                        }
                    }
                    found = Some(cand);
                    break;
                }
                match found {
                    Some(c) => chosen = c,
                    None => {
                        // Every scanned candidate conflicts: the
                        // eviction is delayed until the buffer drains.
                        delayed = true;
                        chosen = min_way;
                    }
                }
            }
        }

        let vidx = base + chosen;
        let evicted = Some((
            self.line_addr(set, self.tags[vidx]),
            self.meta[vidx] & 1 != 0,
        ));
        self.fill(vidx, tag, is_write, tick);
        self.mru_set = set as u32;
        self.mru_way = chosen as u32;
        AccessResult {
            hit: false,
            evicted,
            conflict_delayed: delayed,
        }
    }

    /// Installs `tag` at flat index `idx` (replaces the whole line, as
    /// the reference model's struct overwrite does).
    #[inline]
    fn fill(&mut self, idx: usize, tag: u64, is_write: bool, tick: u64) {
        self.tags[idx] = tag;
        self.meta[idx] = (tick << 1) | is_write as u64;
    }

    /// True if the line containing `addr` is present.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.meta[base + w] != 0 && self.tags[base + w] == tag)
    }

    /// Invalidates every line (power failure: caches are volatile).
    pub fn invalidate_all(&mut self) {
        self.meta.fill(0);
        self.mru_set = u32::MAX;
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(snoops, conflicts)` counters for Table II.
    pub fn snoop_stats(&self) -> (u64, u64) {
        (self.snoops, self.conflicts)
    }

    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A sparse direct-mapped cache (the 4 GB DRAM LLC): only touched sets
/// occupy host memory. [`DirectMappedCache::invalidate_all`] retains
/// the table's capacity, so a machine that survives a power failure
/// (and a crash-sweep fork, whose clone sizes the table from its
/// occupancy) re-faults lines without re-growing the table.
#[derive(Clone, Debug)]
pub struct DirectMappedCache {
    lines: FxHashMap<u64, (u64, bool)>, // set → (tag, dirty)
    num_sets: u64,
    line_bytes: u64,
    /// Shift/mask split (capacity and line size are powers of two in
    /// every shipped config); `pow2 == false` falls back to division.
    line_shift: u32,
    set_mask: u64,
    pow2: bool,
    hits: u64,
    misses: u64,
}

impl DirectMappedCache {
    /// Creates a direct-mapped cache of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one line.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> DirectMappedCache {
        assert!(capacity_bytes >= line_bytes, "capacity below one line");
        let num_sets = capacity_bytes / line_bytes;
        let pow2 = line_bytes.is_power_of_two() && num_sets.is_power_of_two();
        DirectMappedCache {
            lines: FxHashMap::default(),
            num_sets,
            line_bytes,
            line_shift: if pow2 { line_bytes.trailing_zeros() } else { 0 },
            set_mask: num_sets.wrapping_sub(1),
            pow2,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn split(&self, addr: u64) -> (u64, u64) {
        if self.pow2 {
            let line = addr >> self.line_shift;
            (line & self.set_mask, line >> self.set_mask.count_ones())
        } else {
            let line = addr / self.line_bytes;
            (line % self.num_sets, line / self.num_sets)
        }
    }

    /// Pre-sizes the sparse tag table for `lines` resident lines, so
    /// fork-sweep forks and warm-started runs stop paying incremental
    /// rehash-and-grow on first touch.
    pub fn reserve_lines(&mut self, lines: u64) {
        let cap = lines.min(self.num_sets) as usize;
        self.lines.reserve(cap.saturating_sub(self.lines.len()));
    }

    /// Accesses `addr`; returns `(hit, evicted_dirty_line_addr)`.
    pub fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let (set, tag) = self.split(addr);
        match self.lines.get_mut(&set) {
            Some((t, dirty)) if *t == tag => {
                *dirty |= is_write;
                self.hits += 1;
                (true, None)
            }
            Some(entry) => {
                self.misses += 1;
                let evicted_dirty = entry
                    .1
                    .then(|| (entry.0 * self.num_sets + set) * self.line_bytes);
                *entry = (tag, is_write);
                (false, evicted_dirty)
            }
            None => {
                self.misses += 1;
                self.lines.insert(set, (tag, is_write));
                (false, None)
            }
        }
    }

    /// Pre-fills every line of `[start, end)` as present and clean —
    /// the state a long fast-forward would leave behind (the paper warms
    /// caches over 10⁹ instructions before measuring, §V-A). Reserves
    /// table capacity for the whole range up front.
    pub fn prefill_range(&mut self, start: u64, end: u64) {
        let mut line = start / self.line_bytes;
        let last = end.div_ceil(self.line_bytes);
        self.reserve_lines(last.saturating_sub(line));
        while line < last {
            let set = line % self.num_sets;
            let tag = line / self.num_sets;
            self.lines.insert(set, (tag, false));
            line += 1;
        }
    }

    /// Invalidates everything (power failure). Retains capacity: the
    /// post-failure refill re-faults into an already-sized table.
    pub fn invalidate_all(&mut self) {
        self.lines.clear();
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_conflict(_: u64) -> bool {
        false
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2, 64);
        let r = c.access(0x100, false, VictimPolicy::Full, no_conflict);
        assert!(!r.hit);
        let r = c.access(0x108, false, VictimPolicy::Full, no_conflict);
        assert!(r.hit, "same line");
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: A, B, touch A, insert C → B evicted.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // A
        c.access(0x040, false, VictimPolicy::Full, no_conflict); // B
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // touch A
        let r = c.access(0x080, false, VictimPolicy::Full, no_conflict); // C
        assert_eq!(r.evicted, Some((0x040, false)));
        assert!(c.probe(0x000) && c.probe(0x080) && !c.probe(0x040));
    }

    #[test]
    fn dirty_bit_tracked_through_eviction() {
        let mut c = SetAssocCache::new(1, 1, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x040, false, VictimPolicy::Full, no_conflict);
        assert_eq!(r.evicted, Some((0x000, true)), "dirty line evicted");
    }

    #[test]
    fn full_policy_skips_conflicting_victim() {
        // 1 set, 2 ways, both dirty; LRU victim conflicts → other chosen.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x080, false, VictimPolicy::Full, |la| la == 0x000);
        assert_eq!(
            r.evicted,
            Some((0x040, true)),
            "conflict-free victim chosen"
        );
        assert!(!r.conflict_delayed);
        let (snoops, conflicts) = c.snoop_stats();
        assert_eq!((snoops, conflicts), (2, 1));
    }

    #[test]
    fn zero_policy_delays_on_conflict() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x080, false, VictimPolicy::Zero, |la| la == 0x000);
        assert!(r.conflict_delayed, "zero-victim waits for the buffer");
        assert_eq!(r.evicted, Some((0x000, true)));
    }

    #[test]
    fn all_candidates_conflicting_delays_even_full() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x080, false, VictimPolicy::Full, |_| true);
        assert!(r.conflict_delayed);
    }

    #[test]
    fn stale_load_policy_never_snoops() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let before = c.snoop_stats().0;
        let r = c.access(0x080, false, VictimPolicy::StaleLoad, |_| true);
        assert!(!r.conflict_delayed);
        assert!(r.evicted.is_some());
        assert_eq!(c.snoop_stats().0, before, "no snoop performed");
    }

    #[test]
    fn clean_victims_not_snooped() {
        let mut c = SetAssocCache::new(1, 1, 64);
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // clean
        c.access(0x040, false, VictimPolicy::Full, |_| true);
        assert_eq!(
            c.snoop_stats(),
            (0, 0),
            "clean line carries no pending store"
        );
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = SetAssocCache::new(2, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.invalidate_all();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn try_hit_is_stateless_on_miss() {
        let mut c = SetAssocCache::new(4, 2, 64);
        assert!(!c.try_hit(0x100, false));
        assert_eq!(c.hit_miss(), (0, 0), "a failed try_hit books nothing");
        // The follow-up access performs the one canonical miss.
        let r = c.access(0x100, false, VictimPolicy::Full, no_conflict);
        assert!(!r.hit);
        assert_eq!(c.hit_miss(), (0, 1));
        // And now the fast path hits, with full hit bookkeeping.
        assert!(c.try_hit(0x108, true));
        assert_eq!(c.hit_miss(), (1, 1));
        // The write through try_hit dirtied the line.
        let r = c.access(0x140, false, VictimPolicy::Full, no_conflict);
        assert!(!r.hit && r.evicted.is_none(), "fills the other way");
        let mut c2 = SetAssocCache::new(1, 1, 64);
        assert!(c2
            .access(0x000, false, VictimPolicy::Full, no_conflict)
            .evicted
            .is_none());
        assert!(c2.try_hit(0x000, true), "write hit via fast path");
        let r = c2.access(0x040, false, VictimPolicy::StaleLoad, no_conflict);
        assert_eq!(r.evicted, Some((0x000, true)), "dirty bit set by try_hit");
    }

    #[test]
    fn mru_memo_survives_eviction_of_other_sets() {
        // Same-line streak, interleaved with traffic to another set:
        // the memo is revalidated on every use, so results stay exact.
        let mut c = SetAssocCache::new(2, 1, 64);
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // set 0
        c.access(0x040, false, VictimPolicy::Full, no_conflict); // set 1
        assert!(c.try_hit(0x000, false), "memo miss, scan hit");
        assert!(c.try_hit(0x008, false), "memo hit");
        // Evict set 0's line; the stale memo must not report a hit.
        c.access(0x080, false, VictimPolicy::Full, no_conflict);
        assert!(!c.try_hit(0x000, false), "evicted line not hit via memo");
    }

    #[test]
    fn non_pow2_geometry_uses_division_fallback() {
        let mut c = SetAssocCache::new(3, 2, 48);
        let r = c.access(100, false, VictimPolicy::Full, no_conflict);
        assert!(!r.hit);
        assert!(c.probe(100) && c.probe(96), "same 48-byte line");
        assert!(!c.probe(144));
        assert!(c.try_hit(101, false));
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut d = DirectMappedCache::new(128, 64); // 2 sets
        assert_eq!(d.access(0x000, true), (false, None));
        assert_eq!(d.access(0x000, false), (true, None));
        // 0x100 maps to set 0 as well (2 sets × 64 B = 128 B period).
        let (hit, evicted) = d.access(0x100, false);
        assert!(!hit);
        assert_eq!(evicted, Some(0x000), "dirty line reported");
        // Re-access the original: miss again, but the 0x100 line was
        // clean so nothing is reported.
        let (hit, evicted) = d.access(0x000, false);
        assert!(!hit);
        assert_eq!(evicted, None);
    }

    #[test]
    fn direct_mapped_sparse_capacity() {
        let d = DirectMappedCache::new(4 << 30, 64);
        assert_eq!(d.hit_miss(), (0, 0));
        // Construction of a 4 GB cache is O(1) memory — this test passing
        // quickly is itself the assertion.
    }

    #[test]
    fn direct_mapped_reserve_caps_at_num_sets() {
        let mut d = DirectMappedCache::new(256, 64); // 4 sets
        d.reserve_lines(1 << 40); // absurd request clamps to 4
        assert_eq!(d.access(0, true), (false, None));
        assert_eq!(d.access(0, false), (true, None));
    }

    #[test]
    fn direct_mapped_non_pow2_line_size() {
        let mut d = DirectMappedCache::new(96, 48); // 2 sets of 48 B
        assert_eq!(d.access(0, true), (false, None));
        assert_eq!(d.access(47, false), (true, None), "same line");
        let (hit, evicted) = d.access(96, false); // set 0 again
        assert!(!hit);
        assert_eq!(evicted, Some(0));
    }
}
