//! Cache models: set-associative (L1D, L2) and sparse direct-mapped
//! (the off-chip DRAM cache of Intel Optane's memory mode).
//!
//! These caches track tags, dirtiness and LRU state for *timing and
//! miss-rate* purposes; data values flow through the functional
//! interpreter. The L1 exposes the pluggable victim selection that
//! buffer snooping needs (§IV-G, Fig. 13): when the LRU victim's line
//! still has data in the core's front-end buffer (a *buffer conflict*),
//! LightWSP evicts a conflict-free line instead — scanning all ways
//! (full), half the ways (half), or none (zero: wait for the buffer
//! entry to drain). The `stale-load` configuration disables snooping
//! entirely and is used to quantify the stale-load problem of Fig. 6.

use lightwsp_ir::fxhash::FxHashMap;

/// Victim-selection policy on a buffer conflict (§V-F3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum VictimPolicy {
    /// Scan every way for a conflict-free victim (paper default).
    #[default]
    Full,
    /// Scan half the ways.
    Half,
    /// Never redirect: wait for the conflicting buffer entry to drain.
    Zero,
    /// No snooping at all — exposes the stale-load problem.
    StaleLoad,
}

impl VictimPolicy {
    /// Display name used by the evaluation harness.
    pub fn name(self) -> &'static str {
        match self {
            VictimPolicy::Full => "full-victim",
            VictimPolicy::Half => "half-victim",
            VictimPolicy::Zero => "zero-victim",
            VictimPolicy::StaleLoad => "stale-load",
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// True on hit.
    pub hit: bool,
    /// A line that had to be evicted to make room (line base address and
    /// dirtiness).
    pub evicted: Option<(u64, bool)>,
    /// True if the eviction was delayed by an unresolvable buffer
    /// conflict (zero-victim policy, or every candidate conflicting).
    pub conflict_delayed: bool,
}

/// A set-associative write-back, write-allocate cache.
///
/// Lines live in one flat `set * ways + way` array: a clone (a crash-
/// sweep machine fork copies every cache) is a single contiguous
/// memcpy rather than one allocation per set.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    lines: Vec<Line>,
    num_sets: usize,
    ways: usize,
    line_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    snoops: u64,
    conflicts: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` lines of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> SetAssocCache {
        assert!(
            sets > 0 && ways > 0 && line_bytes > 0,
            "cache dimensions must be positive"
        );
        SetAssocCache {
            lines: vec![Line::default(); sets * ways],
            num_sets: sets,
            ways,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
            snoops: 0,
            conflicts: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        (
            (line % self.num_sets as u64) as usize,
            line / self.num_sets as u64,
        )
    }

    /// Line base address from set/tag.
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.num_sets as u64 + set as u64) * self.line_bytes
    }

    /// The ways of `set` as a slice of the flat line array.
    fn set_lines(&self, set: usize) -> &[Line] {
        &self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Mutable counterpart of [`Self::set_lines`].
    fn set_lines_mut(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Accesses `addr`; on a miss the line is allocated, evicting a
    /// victim chosen by `policy`. `conflicts_with_buffer` reports whether
    /// a candidate victim line conflicts with a front-end-buffer entry
    /// (pass `|_| false` for caches that do not snoop).
    pub fn access(
        &mut self,
        addr: u64,
        is_write: bool,
        policy: VictimPolicy,
        mut conflicts_with_buffer: impl FnMut(u64) -> bool,
    ) -> AccessResult {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.ways;
        let tick = self.tick;

        if let Some(line) = self
            .set_lines_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.last_use = tick;
            line.dirty |= is_write;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
                conflict_delayed: false,
            };
        }
        self.misses += 1;

        // Invalid way, if any.
        if let Some(idx) = self.set_lines(set).iter().position(|l| !l.valid) {
            self.set_lines_mut(set)[idx] = Line {
                tag,
                valid: true,
                dirty: is_write,
                last_use: tick,
            };
            return AccessResult {
                hit: false,
                evicted: None,
                conflict_delayed: false,
            };
        }

        // LRU-ordered victim candidates (ways ≤ 16: stack insertion sort).
        let mut order = [0usize; 16];
        debug_assert!(ways <= 16);
        for (i, slot) in order.iter_mut().enumerate().take(ways) {
            *slot = i;
        }
        let order = &mut order[..ways];
        order.sort_unstable_by_key(|&i| self.set_lines(set)[i].last_use);

        let scan = match policy {
            VictimPolicy::Full => ways,
            VictimPolicy::Half => ways.div_ceil(2),
            VictimPolicy::Zero | VictimPolicy::StaleLoad => 1,
        };
        let mut chosen = order[0];
        let mut delayed = false;
        if policy != VictimPolicy::StaleLoad {
            // Only dirty victims can conflict (clean lines carry no
            // pending store data).
            let mut found = None;
            for &cand in order.iter().take(scan) {
                let line = self.set_lines(set)[cand];
                let la = self.line_addr(set, line.tag);
                if line.dirty {
                    self.snoops += 1;
                    if conflicts_with_buffer(la) {
                        self.conflicts += 1;
                        continue;
                    }
                }
                found = Some(cand);
                break;
            }
            match found {
                Some(c) => chosen = c,
                None => {
                    // Every scanned candidate conflicts: the eviction is
                    // delayed until the buffer entry drains.
                    delayed = true;
                    chosen = order[0];
                }
            }
        }

        let victim = self.set_lines(set)[chosen];
        let evicted = Some((self.line_addr(set, victim.tag), victim.dirty));
        self.set_lines_mut(set)[chosen] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: tick,
        };
        AccessResult {
            hit: false,
            evicted,
            conflict_delayed: delayed,
        }
    }

    /// True if the line containing `addr` is present.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_lines(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line (power failure: caches are volatile).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(snoops, conflicts)` counters for Table II.
    pub fn snoop_stats(&self) -> (u64, u64) {
        (self.snoops, self.conflicts)
    }

    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A sparse direct-mapped cache (the 4 GB DRAM LLC): only touched sets
/// occupy host memory.
#[derive(Clone, Debug)]
pub struct DirectMappedCache {
    lines: FxHashMap<u64, (u64, bool)>, // set → (tag, dirty)
    num_sets: u64,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl DirectMappedCache {
    /// Creates a direct-mapped cache of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one line.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> DirectMappedCache {
        assert!(capacity_bytes >= line_bytes, "capacity below one line");
        DirectMappedCache {
            lines: FxHashMap::default(),
            num_sets: capacity_bytes / line_bytes,
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `(hit, evicted_dirty_line_addr)`.
    pub fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let line = addr / self.line_bytes;
        let set = line % self.num_sets;
        let tag = line / self.num_sets;
        match self.lines.get_mut(&set) {
            Some((t, dirty)) if *t == tag => {
                *dirty |= is_write;
                self.hits += 1;
                (true, None)
            }
            Some(entry) => {
                self.misses += 1;
                let evicted_dirty = entry
                    .1
                    .then(|| (entry.0 * self.num_sets + set) * self.line_bytes);
                *entry = (tag, is_write);
                (false, evicted_dirty)
            }
            None => {
                self.misses += 1;
                self.lines.insert(set, (tag, is_write));
                (false, None)
            }
        }
    }

    /// Pre-fills every line of `[start, end)` as present and clean —
    /// the state a long fast-forward would leave behind (the paper warms
    /// caches over 10⁹ instructions before measuring, §V-A).
    pub fn prefill_range(&mut self, start: u64, end: u64) {
        let mut line = start / self.line_bytes;
        let last = end.div_ceil(self.line_bytes);
        while line < last {
            let set = line % self.num_sets;
            let tag = line / self.num_sets;
            self.lines.insert(set, (tag, false));
            line += 1;
        }
    }

    /// Invalidates everything (power failure).
    pub fn invalidate_all(&mut self) {
        self.lines.clear();
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_conflict(_: u64) -> bool {
        false
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2, 64);
        let r = c.access(0x100, false, VictimPolicy::Full, no_conflict);
        assert!(!r.hit);
        let r = c.access(0x108, false, VictimPolicy::Full, no_conflict);
        assert!(r.hit, "same line");
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: A, B, touch A, insert C → B evicted.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // A
        c.access(0x040, false, VictimPolicy::Full, no_conflict); // B
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // touch A
        let r = c.access(0x080, false, VictimPolicy::Full, no_conflict); // C
        assert_eq!(r.evicted, Some((0x040, false)));
        assert!(c.probe(0x000) && c.probe(0x080) && !c.probe(0x040));
    }

    #[test]
    fn dirty_bit_tracked_through_eviction() {
        let mut c = SetAssocCache::new(1, 1, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x040, false, VictimPolicy::Full, no_conflict);
        assert_eq!(r.evicted, Some((0x000, true)), "dirty line evicted");
    }

    #[test]
    fn full_policy_skips_conflicting_victim() {
        // 1 set, 2 ways, both dirty; LRU victim conflicts → other chosen.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x080, false, VictimPolicy::Full, |la| la == 0x000);
        assert_eq!(
            r.evicted,
            Some((0x040, true)),
            "conflict-free victim chosen"
        );
        assert!(!r.conflict_delayed);
        let (snoops, conflicts) = c.snoop_stats();
        assert_eq!((snoops, conflicts), (2, 1));
    }

    #[test]
    fn zero_policy_delays_on_conflict() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x080, false, VictimPolicy::Zero, |la| la == 0x000);
        assert!(r.conflict_delayed, "zero-victim waits for the buffer");
        assert_eq!(r.evicted, Some((0x000, true)));
    }

    #[test]
    fn all_candidates_conflicting_delays_even_full() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let r = c.access(0x080, false, VictimPolicy::Full, |_| true);
        assert!(r.conflict_delayed);
    }

    #[test]
    fn stale_load_policy_never_snoops() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.access(0x040, true, VictimPolicy::Full, no_conflict);
        let before = c.snoop_stats().0;
        let r = c.access(0x080, false, VictimPolicy::StaleLoad, |_| true);
        assert!(!r.conflict_delayed);
        assert!(r.evicted.is_some());
        assert_eq!(c.snoop_stats().0, before, "no snoop performed");
    }

    #[test]
    fn clean_victims_not_snooped() {
        let mut c = SetAssocCache::new(1, 1, 64);
        c.access(0x000, false, VictimPolicy::Full, no_conflict); // clean
        c.access(0x040, false, VictimPolicy::Full, |_| true);
        assert_eq!(
            c.snoop_stats(),
            (0, 0),
            "clean line carries no pending store"
        );
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = SetAssocCache::new(2, 2, 64);
        c.access(0x000, true, VictimPolicy::Full, no_conflict);
        c.invalidate_all();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut d = DirectMappedCache::new(128, 64); // 2 sets
        assert_eq!(d.access(0x000, true), (false, None));
        assert_eq!(d.access(0x000, false), (true, None));
        // 0x100 maps to set 0 as well (2 sets × 64 B = 128 B period).
        let (hit, evicted) = d.access(0x100, false);
        assert!(!hit);
        assert_eq!(evicted, Some(0x000), "dirty line reported");
        // Re-access the original: miss again, but the 0x100 line was
        // clean so nothing is reported.
        let (hit, evicted) = d.access(0x000, false);
        assert!(!hit);
        assert_eq!(evicted, None);
    }

    #[test]
    fn direct_mapped_sparse_capacity() {
        let d = DirectMappedCache::new(4 << 30, 64);
        assert_eq!(d.hit_miss(), (0, 0));
        // Construction of a 4 GB cache is O(1) memory — this test passing
        // quickly is itself the assertion.
    }
}
