//! Analytical CAM (content-addressable memory) search-latency model.
//!
//! The paper uses CACTI 7.0 at 22 nm to size the fully-associative
//! searches that buffer snooping (§IV-G) and WPQ load-miss handling
//! (§IV-H) require, reporting **0.99 ns ≈ 2 cycles** for 64 entries × 8
//! bytes. CACTI is not available here, so this module provides a small
//! analytical substitute with the same asymptotics (match-line delay
//! grows with entry count, tag comparison with tag width) calibrated to
//! reproduce CACTI's value at the paper's operating point.

/// Search latency of a CAM in nanoseconds.
///
/// Calibrated so that `(64, 8)` → 0.99 ns, matching §V-G2. The model is
/// `t = a + b·log2(entries) + c·tag_bytes`, a standard first-order
/// decomposition into sense/drive overhead, match-line fan-in, and
/// comparator depth.
pub fn search_latency_ns(entries: usize, entry_bytes: usize) -> f64 {
    assert!(
        entries > 0 && entry_bytes > 0,
        "CAM dimensions must be positive"
    );
    const A: f64 = 0.25; // fixed sense/drive overhead
    const B: f64 = 0.105; // per-doubling match-line cost
    const C: f64 = 0.0135; // per-tag-byte comparator cost
    A + B * (entries as f64).log2() + C * entry_bytes as f64
}

/// Search latency in 2 GHz core cycles, rounded up.
pub fn search_latency_cycles(entries: usize, entry_bytes: usize) -> u64 {
    (search_latency_ns(entries, entry_bytes) * 2.0).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_operating_point() {
        let ns = search_latency_ns(64, 8);
        assert!((ns - 0.99).abs() < 0.02, "expected ≈0.99 ns, got {ns}");
        assert_eq!(search_latency_cycles(64, 8), 2);
    }

    #[test]
    fn monotone_in_entries_and_width() {
        assert!(search_latency_ns(128, 8) > search_latency_ns(64, 8));
        assert!(search_latency_ns(64, 16) > search_latency_ns(64, 8));
    }

    #[test]
    fn larger_wpqs_still_cheap() {
        // Fig. 11 enlarges the WPQ to 256 entries; the search must stay
        // hidden under the L2 latency (44 cycles).
        assert!(search_latency_cycles(256, 8) < 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_entries_rejected() {
        let _ = search_latency_ns(0, 8);
    }
}
