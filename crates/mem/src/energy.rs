//! Residual-energy feasibility model for JIT-checkpointing WSP
//! (§II-C1).
//!
//! JIT-checkpoint approaches (Narayanan & Hodson's whole-system
//! persistence, LightPC) flush *all* volatile state to PM on the power
//! supply's residual energy. The paper's motivation quotes LightPC's
//! feasibility limits: a server-class PSU can persist **at most 64 cores
//! with 40 MB of cache**, a standard ATX PSU **at most 32 cores with
//! 16 KB** — and no PSU can cover a terabyte-class DRAM cache, which is
//! why LightWSP buffers redo state in the tiny battery-backed WPQ
//! instead.
//!
//! The model is first-order: flushing costs a per-byte energy (PM write
//! plus datapath) and a per-core quiesce/drain energy. The two constants
//! are calibrated so the LightPC feasibility points above sit exactly on
//! the boundary of their respective PSU budgets.

/// Energy to persist one byte of volatile state (PM write + datapath).
pub const FLUSH_NJ_PER_BYTE: f64 = 25.0;

/// Energy to quiesce and drain one core's pipeline/private state.
pub const QUIESCE_MJ_PER_CORE: f64 = 10.0;

/// A power supply with usable residual (hold-up) energy after failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerSupply {
    /// Marketing name.
    pub name: &'static str,
    /// Usable residual energy in joules.
    pub residual_joules: f64,
}

impl PowerSupply {
    /// Server-class PSU: calibrated so (64 cores, 40 MB) is just
    /// feasible, matching LightPC's reported limit.
    pub fn server() -> PowerSupply {
        PowerSupply {
            name: "server PSU",
            residual_joules: required_joules(64, 40 * 1024 * 1024),
        }
    }

    /// Standard ATX PSU: calibrated so (32 cores, 16 KB) is just
    /// feasible, matching LightPC's reported limit.
    pub fn atx() -> PowerSupply {
        PowerSupply {
            name: "ATX PSU",
            residual_joules: required_joules(32, 16 * 1024),
        }
    }

    /// True if this PSU can JIT-checkpoint the given volatile state.
    pub fn can_checkpoint(&self, cores: u64, volatile_bytes: u64) -> bool {
        required_joules(cores, volatile_bytes) <= self.residual_joules + 1e-9
    }
}

/// Energy needed to JIT-checkpoint `cores` cores plus `volatile_bytes`
/// of cache/DRAM state.
pub fn required_joules(cores: u64, volatile_bytes: u64) -> f64 {
    cores as f64 * QUIESCE_MJ_PER_CORE * 1e-3 + volatile_bytes as f64 * FLUSH_NJ_PER_BYTE * 1e-9
}

/// Energy the LightWSP battery must cover instead: the WPQ contents and
/// in-flight ACKs (§IV-B) — `wpq_bytes` per MC across `num_mcs` MCs.
pub fn lightwsp_battery_joules(num_mcs: u64, wpq_bytes: u64) -> f64 {
    // Same per-byte flush cost; no core quiesce needed (roll-back
    // recovery, not roll-forward).
    (num_mcs * wpq_bytes) as f64 * FLUSH_NJ_PER_BYTE * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightpc_feasibility_points_are_boundary() {
        let server = PowerSupply::server();
        assert!(server.can_checkpoint(64, 40 * 1024 * 1024));
        assert!(!server.can_checkpoint(65, 40 * 1024 * 1024));
        assert!(!server.can_checkpoint(64, 41 * 1024 * 1024));

        let atx = PowerSupply::atx();
        assert!(atx.can_checkpoint(32, 16 * 1024));
        assert!(!atx.can_checkpoint(33, 16 * 1024));
    }

    #[test]
    fn dram_cache_is_infeasible_for_any_psu() {
        // §II-C: "it is impossible to persist the huge DRAM of typical
        // servers with the residual energy of PSU."
        let server = PowerSupply::server();
        let four_gb = 4u64 << 30;
        assert!(!server.can_checkpoint(8, four_gb));
        assert!(
            required_joules(8, four_gb) > 50.0 * server.residual_joules,
            "a 4 GB DRAM cache needs orders of magnitude more energy"
        );
    }

    #[test]
    fn lightwsp_battery_is_tiny() {
        // Two 512 B WPQs: microjoule-class, vs joule-class PSU budgets.
        let j = lightwsp_battery_joules(2, 512);
        assert!(j < 1e-4, "{j}");
        assert!(j < PowerSupply::atx().residual_joules / 1_000.0);
    }

    #[test]
    fn required_energy_is_monotone() {
        assert!(required_joules(16, 1 << 20) < required_joules(32, 1 << 20));
        assert!(required_joules(16, 1 << 20) < required_joules(16, 1 << 21));
    }
}
