//! The front-end buffer (§III-A footnote 3): Intel's write-combining
//! buffer repurposed — with write combining disabled — as the staging
//! FIFO between the store buffer and the persist path.
//!
//! Its second job is **buffer snooping** (§IV-G): on a dirty L1
//! eviction, the cache CAM-searches this buffer (2 cycles, hidden under
//! the L2 access) for an entry to the same line; a hit is a *buffer
//! conflict* and redirects victim selection so a store always reaches
//! the MC before the cacheline eviction could, preventing stale loads.

use crate::line_filter::LineFilter;
use crate::persist_path::PersistEntry;
use std::collections::VecDeque;

/// The per-core front-end buffer.
#[derive(Clone, Debug)]
pub struct FrontBuffer {
    entries: VecDeque<PersistEntry>,
    capacity: usize,
    /// Incremental line-residency signature: rejects the eviction
    /// snoop's "any entry in line X?" with one table probe in the
    /// common no-occupant case (positives are confirmed by a scan).
    filter: LineFilter,
    pushes: u64,
    full_stalls: u64,
    searches: u64,
    search_hits: u64,
    max_occupancy: usize,
}

impl FrontBuffer {
    /// Creates a front-end buffer with `capacity` entries (aligned with
    /// the WPQ size, §IV-E) snooping at `line_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `line_bytes` is zero.
    pub fn new(capacity: usize, line_bytes: u64) -> FrontBuffer {
        assert!(capacity > 0, "front buffer capacity must be positive");
        FrontBuffer {
            entries: VecDeque::new(),
            capacity,
            filter: LineFilter::new(line_bytes),
            pushes: 0,
            full_stalls: 0,
            searches: 0,
            search_hits: 0,
            max_occupancy: 0,
        }
    }

    /// True if another entry fits.
    #[inline]
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Event horizon: like the store buffer, the front-end buffer is
    /// purely reactive — it can hand an entry to the persist path next
    /// cycle whenever it is non-empty (the path's bandwidth gate decides
    /// when that actually happens). `None` when empty.
    #[inline]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (!self.entries.is_empty()).then_some(now + 1)
    }

    /// Accepts an entry from the store buffer; `false` (counted as a
    /// stall) if full.
    pub fn push(&mut self, entry: PersistEntry) -> bool {
        if !self.has_room() {
            self.full_stalls += 1;
            return false;
        }
        self.pushes += 1;
        self.filter.insert(entry.addr);
        self.entries.push_back(entry);
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        true
    }

    /// The oldest entry, if any.
    pub fn front(&self) -> Option<&PersistEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry (to the persist path).
    pub fn pop(&mut self) -> Option<PersistEntry> {
        let popped = self.entries.pop_front();
        if let Some(e) = &popped {
            self.filter.remove(e.addr);
        }
        popped
    }

    /// CAM search: is any buffered entry within the line at `line_addr`?
    ///
    /// At the buffer's own line granularity the residency signature
    /// answers the common no-occupant case with one table probe; a
    /// signature positive (real or collision) is confirmed by the
    /// linear scan, and a different `line_bytes` always scans. The
    /// combined answer is exact, so the search counters are identical
    /// to an always-scan implementation.
    pub fn search_line(&mut self, line_addr: u64, line_bytes: u64) -> bool {
        self.searches += 1;
        let hit = if line_bytes == self.filter.line_bytes()
            && !self.filter.maybe_contains_line(line_addr)
        {
            false
        } else {
            self.entries
                .iter()
                .any(|e| e.addr / line_bytes == line_addr / line_bytes)
        };
        if hit {
            self.search_hits += 1;
        }
        hit
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards everything (power failure: the buffer is volatile).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.filter.clear();
    }

    /// `(pushes, full-stalls, searches, search-hits, max occupancy)`.
    pub fn stats(&self) -> (u64, u64, u64, u64, usize) {
        (
            self.pushes,
            self.full_stalls,
            self.searches,
            self.search_hits,
            self.max_occupancy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist_path::PersistKind;

    fn entry(addr: u64) -> PersistEntry {
        PersistEntry {
            addr,
            val: 0,
            region: 1,
            kind: PersistKind::Data,
            core: 0,
        }
    }

    #[test]
    fn fifo_and_capacity() {
        let mut fb = FrontBuffer::new(2, 64);
        assert!(fb.push(entry(0)));
        assert!(fb.push(entry(8)));
        assert!(!fb.push(entry(16)), "full");
        assert_eq!(fb.pop().unwrap().addr, 0);
        assert!(fb.push(entry(16)));
        let (pushes, stalls, ..) = fb.stats();
        assert_eq!((pushes, stalls), (3, 1));
    }

    #[test]
    fn cam_search_by_line() {
        let mut fb = FrontBuffer::new(8, 64);
        fb.push(entry(0x148));
        assert!(fb.search_line(0x140, 64));
        assert!(!fb.search_line(0x180, 64));
        let (_, _, searches, hits, _) = fb.stats();
        assert_eq!((searches, hits), (2, 1));
    }

    #[test]
    fn cam_search_foreign_granularity_scans() {
        let mut fb = FrontBuffer::new(8, 64);
        fb.push(entry(0x148));
        // 128-byte probe ≠ the buffer's 64-byte table: linear fallback.
        assert!(fb.search_line(0x100, 128));
        assert!(!fb.search_line(0x200, 128));
    }

    #[test]
    fn filter_tracks_pop_and_clear() {
        let mut fb = FrontBuffer::new(8, 64);
        fb.push(entry(0x140));
        fb.push(entry(0x148));
        fb.pop();
        assert!(fb.search_line(0x140, 64), "second occupant remains");
        fb.pop();
        assert!(!fb.search_line(0x140, 64));
        fb.push(entry(0x180));
        fb.clear();
        assert!(!fb.search_line(0x180, 64));
    }

    #[test]
    fn max_occupancy_tracked() {
        let mut fb = FrontBuffer::new(4, 64);
        fb.push(entry(0));
        fb.push(entry(8));
        fb.pop();
        fb.push(entry(16));
        assert_eq!(fb.stats().4, 2);
    }
}
