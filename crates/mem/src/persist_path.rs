//! The non-temporal persist path (§II-A, §III): a per-core FIFO channel
//! from the front-end buffer to the memory controllers, modelled as a
//! bandwidth gate (one 8-byte entry per `cycles_per_entry`, 4 GB/s by
//! default) followed by a fixed transit delay (20 ns worst case).
//!
//! Delivery is strictly in order; if the entry at the head targets a
//! full WPQ, everything behind it blocks (head-of-line blocking). This
//! per-lane FIFO order is what lets a boundary's arrival at an MC imply
//! that every earlier store of its region has arrived there too, which
//! the ordering protocol (§IV-B) relies on.
//!
//! The path is on-chip and volatile: entries still in flight are lost on
//! power failure (their region is necessarily unpersisted, because its
//! boundary travels behind them).

use crate::line_filter::LineFilter;
use crate::protocol::RegionId;
use std::collections::VecDeque;

/// What an entry on the persist path is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistKind {
    /// A data store (8 bytes).
    Data,
    /// A region boundary: the PC-checkpointing store, replicated into
    /// every MC's WPQ as the broadcast token (§IV-B).
    Boundary,
}

/// One 8-byte entry travelling toward the WPQs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PersistEntry {
    /// Byte address (8-byte aligned).
    pub addr: u64,
    /// The value being persisted.
    pub val: u64,
    /// The region this store belongs to (tagged as it leaves the store
    /// buffer, §IV-B).
    pub region: RegionId,
    /// Data or boundary.
    pub kind: PersistKind,
    /// Issuing core (diagnostics and per-core stats).
    pub core: usize,
}

/// The per-core persist path.
#[derive(Clone, Debug)]
pub struct PersistPath {
    in_flight: VecDeque<(u64, PersistEntry)>, // (arrival cycle, entry)
    next_issue: u64,
    latency: u64,
    cycles_per_entry: u64,
    /// Maximum entries in flight: the path is a wire/NoC lane with a
    /// small skid buffer, not a queue — when the head is blocked at a
    /// full WPQ, back-pressure must reach the front-end buffer.
    capacity: usize,
    /// Incremental line-residency signature over the in-flight entries:
    /// the eviction snoop's conflict check short-circuits on one table
    /// probe in the common no-occupant case.
    filter: LineFilter,
    issued: u64,
    hol_blocked_cycles: u64,
}

impl PersistPath {
    /// Creates a path with the given transit latency and bandwidth gate,
    /// snooped at `line_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_entry` or `line_bytes` is zero.
    pub fn new(latency: u64, cycles_per_entry: u64, line_bytes: u64) -> PersistPath {
        assert!(cycles_per_entry > 0, "bandwidth gate must be positive");
        // Transit window plus a small skid buffer.
        let capacity = (2 * latency / cycles_per_entry).max(16) as usize;
        PersistPath {
            in_flight: VecDeque::new(),
            next_issue: 0,
            latency,
            cycles_per_entry,
            capacity,
            filter: LineFilter::new(line_bytes),
            issued: 0,
            hol_blocked_cycles: 0,
        }
    }

    /// True if the bandwidth gate admits another entry at `now` and the
    /// transit window has room.
    #[inline]
    pub fn can_issue(&self, now: u64) -> bool {
        now >= self.next_issue && self.in_flight.len() < self.capacity
    }

    /// Issues an entry onto the path at `now`.
    ///
    /// # Panics
    ///
    /// Panics if called while [`PersistPath::can_issue`] is false.
    pub fn issue(&mut self, now: u64, entry: PersistEntry) {
        self.issue_weighted(now, entry, 1);
    }

    /// Issues an entry that occupies `weight` bandwidth units (Capri's
    /// 64-byte cacheline flushes cost 8× an 8-byte store, §II-C).
    ///
    /// # Panics
    ///
    /// Panics if called while [`PersistPath::can_issue`] is false, or if
    /// `weight` is zero.
    pub fn issue_weighted(&mut self, now: u64, entry: PersistEntry, weight: u64) {
        assert!(self.can_issue(now), "persist path bandwidth gate violated");
        assert!(weight > 0, "issue weight must be positive");
        self.next_issue = now + self.cycles_per_entry * weight;
        self.issued += 1;
        self.filter.insert(entry.addr);
        self.in_flight.push_back((now + self.latency, entry));
    }

    /// Event horizon: the cycle at which the head entry completes
    /// transit and becomes deliverable, if anything is in flight. A
    /// returned cycle `<= now` means the head has already arrived (it
    /// may be head-of-line blocked at a full WPQ — delivery must be
    /// retried every cycle, so the caller treats that as "active now").
    /// `None` means the path generates no event until new input arrives.
    #[inline]
    pub fn next_event(&self, _now: u64) -> Option<u64> {
        self.in_flight.front().map(|&(arrive, _)| arrive)
    }

    /// The cycle at which the bandwidth gate next admits an entry, or
    /// `None` while the transit window is at capacity (capacity frees
    /// only when the head pops — a [`PersistPath::next_event`] cycle).
    #[inline]
    pub fn issue_ready_at(&self) -> Option<u64> {
        (self.in_flight.len() < self.capacity).then_some(self.next_issue)
    }

    /// The head entry if it has completed transit by `now`.
    #[inline]
    pub fn head_arrived(&self, now: u64) -> Option<&PersistEntry> {
        match self.in_flight.front() {
            Some((arrive, e)) if *arrive <= now => Some(e),
            _ => None,
        }
    }

    /// Removes the head entry (after successful WPQ delivery).
    pub fn pop_head(&mut self) -> Option<PersistEntry> {
        let popped = self.in_flight.pop_front().map(|(_, e)| e);
        if let Some(e) = &popped {
            self.filter.remove(e.addr);
        }
        popped
    }

    /// Records one cycle of head-of-line blocking (full target WPQ).
    pub fn note_hol_block(&mut self) {
        self.hol_blocked_cycles += 1;
    }

    /// True if any in-flight entry falls in the cache line at
    /// `line_addr` (used together with the front-end buffer for the
    /// eviction-snoop conflict check, §IV-G).
    ///
    /// At the path's own line granularity the residency signature
    /// rejects the common no-occupant case with one probe; a signature
    /// positive is confirmed by the linear scan, and a different
    /// `line_bytes` always scans. The combined answer is exact.
    pub fn conflicts_with_line(&self, line_addr: u64, line_bytes: u64) -> bool {
        if line_bytes == self.filter.line_bytes() && !self.filter.maybe_contains_line(line_addr) {
            return false;
        }
        self.in_flight
            .iter()
            .any(|(_, e)| e.addr / line_bytes == line_addr / line_bytes)
    }

    /// Number of in-flight entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// True if nothing is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Discards all in-flight entries (power failure).
    pub fn clear(&mut self) {
        self.in_flight.clear();
        self.filter.clear();
    }

    /// `(entries issued, cycles blocked at head-of-line)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.issued, self.hol_blocked_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(addr: u64, region: RegionId) -> PersistEntry {
        PersistEntry {
            addr,
            val: 1,
            region,
            kind: PersistKind::Data,
            core: 0,
        }
    }

    #[test]
    fn bandwidth_gate_spacing() {
        let mut p = PersistPath::new(40, 4, 64);
        assert!(p.can_issue(0));
        p.issue(0, entry(0, 1));
        assert!(!p.can_issue(3));
        assert!(p.can_issue(4));
        p.issue(4, entry(8, 1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth gate")]
    fn issue_too_fast_panics() {
        let mut p = PersistPath::new(40, 4, 64);
        p.issue(0, entry(0, 1));
        p.issue(1, entry(8, 1));
    }

    #[test]
    fn transit_latency_respected() {
        let mut p = PersistPath::new(40, 4, 64);
        p.issue(0, entry(0, 1));
        assert!(p.head_arrived(39).is_none());
        assert!(p.head_arrived(40).is_some());
        assert_eq!(p.pop_head().unwrap().addr, 0);
        assert!(p.is_empty());
    }

    #[test]
    fn in_order_delivery() {
        let mut p = PersistPath::new(10, 1, 64);
        p.issue(0, entry(0, 1));
        p.issue(1, entry(8, 1));
        // Even at cycle 100 the head is the first-issued entry.
        assert_eq!(p.head_arrived(100).unwrap().addr, 0);
        p.pop_head();
        assert_eq!(p.head_arrived(100).unwrap().addr, 8);
    }

    #[test]
    fn conflict_check_by_line() {
        let mut p = PersistPath::new(10, 1, 64);
        p.issue(0, entry(0x148, 1));
        assert!(p.conflicts_with_line(0x140, 64));
        assert!(p.conflicts_with_line(0x100, 128));
        assert!(!p.conflicts_with_line(0x180, 64));
    }

    #[test]
    fn clear_models_power_failure() {
        let mut p = PersistPath::new(10, 1, 64);
        p.issue(0, entry(0, 1));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.stats().0, 1, "issue count is a statistic, not state");
    }
}
