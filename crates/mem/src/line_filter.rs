//! A line-granular residency signature over a queue of 8-byte persist
//! entries.
//!
//! The eviction-snoop path (§IV-G) asks "does this buffer hold any
//! entry within cache line X?" on every dirty L1 victim candidate.
//! Answering by scanning the queue costs a division per entry per
//! probe; maintaining an exact hash table costs two table updates per
//! queued store — pure overhead in compute-dense phases where stores
//! are frequent and snoops rare. The filter therefore keeps a flat
//! counting signature: a fixed array of per-bucket occupant counts,
//! updated with one index per push/pop. A zero bucket proves the line
//! absent (**no false negatives**); a non-zero bucket may be a
//! collision, so the caller confirms a positive with the linear scan
//! the signature short-circuits. The combined answer is exact, so the
//! snoop/conflict counters it feeds stay bit-identical to a scan.

/// Signature buckets. 512 buckets over queues of ≤ ~100 entries keep
/// the false-positive rate (and thus the verifying scans) low while the
/// table stays one cache line shy of 1 KiB.
const BUCKETS: usize = 512;

/// Incremental line-occupancy signature: how many queued entries hash
/// into each bucket.
#[derive(Clone, Debug)]
pub struct LineFilter {
    counts: Box<[u16; BUCKETS]>,
    line_bytes: u64,
    /// Shift for the power-of-two fast path (`line_bytes` is 64 in
    /// every shipped config); `u32::MAX` forces the division fallback.
    line_shift: u32,
}

impl LineFilter {
    /// Creates a filter tracking lines of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn new(line_bytes: u64) -> LineFilter {
        assert!(line_bytes > 0, "line size must be positive");
        LineFilter {
            counts: Box::new([0; BUCKETS]),
            line_bytes,
            line_shift: if line_bytes.is_power_of_two() {
                line_bytes.trailing_zeros()
            } else {
                u32::MAX
            },
        }
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        if self.line_shift != u32::MAX {
            addr >> self.line_shift
        } else {
            addr / self.line_bytes
        }
    }

    /// Fibonacci-multiplicative bucket of a line index.
    #[inline]
    fn bucket(&self, addr: u64) -> usize {
        (self.line_of(addr).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - BUCKETS.trailing_zeros()))
            as usize
    }

    /// The line granularity the filter was built with.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Records an entry at `addr` entering the tracked queue.
    #[inline]
    pub fn insert(&mut self, addr: u64) {
        let b = self.bucket(addr);
        self.counts[b] += 1;
    }

    /// Records the entry at `addr` leaving the tracked queue.
    #[inline]
    pub fn remove(&mut self, addr: u64) {
        let b = self.bucket(addr);
        debug_assert!(self.counts[b] > 0, "line filter out of sync with its queue");
        self.counts[b] -= 1;
    }

    /// True if a tracked entry **may** fall within the line containing
    /// `addr`; false proves none does. Callers confirm a positive with
    /// a scan of the underlying queue.
    #[inline]
    pub fn maybe_contains_line(&self, addr: u64) -> bool {
        self.counts[self.bucket(addr)] != 0
    }

    /// Forgets everything (the tracked queue was cleared).
    #[inline]
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_line() {
        let mut f = LineFilter::new(64);
        f.insert(0x148);
        f.insert(0x150); // same line
        assert!(f.maybe_contains_line(0x140), "no false negatives");
        f.remove(0x148);
        assert!(f.maybe_contains_line(0x140), "one occupant left");
        f.remove(0x150);
        assert!(
            !f.maybe_contains_line(0x140),
            "bucket drained exactly when its line empties"
        );
    }

    #[test]
    fn clear_forgets_all() {
        let mut f = LineFilter::new(64);
        f.insert(0);
        f.insert(64);
        f.clear();
        assert!(!f.maybe_contains_line(0) && !f.maybe_contains_line(64));
    }

    #[test]
    fn non_pow2_line_size_falls_back_to_division() {
        let mut f = LineFilter::new(48);
        f.insert(50);
        assert!(f.maybe_contains_line(48));
        f.remove(50);
        assert!(!f.maybe_contains_line(48));
    }

    /// The signature's one-sided guarantee: inserted lines always probe
    /// positive, and distinct lines rarely collide — pin a spread of
    /// absent lines staying negative under the shipped hash.
    #[test]
    fn absent_lines_probe_negative() {
        let mut f = LineFilter::new(64);
        for i in 0..48u64 {
            f.insert(i * 64 + 8);
        }
        let mut negatives = 0;
        for i in 1000..1128u64 {
            if !f.maybe_contains_line(i * 64) {
                negatives += 1;
            }
        }
        assert!(
            negatives > 100,
            "absent lines should mostly probe negative, got {negatives}/128"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of sync")]
    fn removing_absent_entry_panics() {
        let mut f = LineFilter::new(64);
        f.remove(0);
    }
}
