//! The lazy region-level persist-ordering protocol (§IV-B, §IV-C).
//!
//! Region IDs come from a single hardware-managed counter, atomically
//! incremented at every boundary; the sequence of IDs therefore embeds
//! the happens-before order that synchronisation establishes between
//! threads (Fig. 4). Each boundary is broadcast to every MC through the
//! persist path; MCs exchange **bdry-ACKs** (so each knows the boundary
//! reached all of them — and, by per-lane FIFO order, that every store
//! of the region reached its WPQ), flush the region's entries in region
//! order, exchange **flush-ACKs**, and advance the durable *commit*
//! frontier.
//!
//! [`RegionTracker`] is the timing model of this distributed protocol,
//! owned by the (single-threaded, deterministic) simulation — which is
//! equivalent to the real distributed state because the protocol is
//! symmetric and every transition is stamped with the explicit NoC
//! delay. Two frontiers are tracked:
//!
//! * **per-MC flush position** — MC `m` flushes region `k`'s entries
//!   once `k` is `m`'s next unflushed region and the bdry-ACK exchange
//!   for `k` completed (`max-delivery(k) + noc`). Flushing then
//!   proceeds at channel speed; an MC moves to `k+1` as soon as its own
//!   `k` entries are issued. ACKs of different regions pipeline on the
//!   NoC, so flush throughput is never bounded by ACK round-trips —
//!   this is what "LRPO naturally hides the latency of the ACK
//!   communication" (§IV-B) requires. Because MCs own disjoint
//!   addresses and each flushes in region order, PM write order still
//!   respects epoch order everywhere.
//! * **commit frontier** — region `k` is durably *committed* (recovery
//!   will resume after it) once every MC has flushed it and the
//!   flush-ACK exchange completes (`max-flush-done(k) + noc`). The
//!   commit frontier is what §IV-F's recovery consults and what clears
//!   the §IV-D undo logs; it trails the flush positions by the ACK
//!   latency without throttling them.
//!
//! On power failure, in-flight ACKs are delivered on battery power
//! (§IV-F step 1), so the recovery frontier is computed from the
//! boundary *deliveries* that had already reached the WPQs.

use lightwsp_ir::fxhash::FxHashMap;

/// A region (epoch) identifier from the global hardware counter.
///
/// The real hardware encodes a 16-bit ID in unused address bits (§IV-B);
/// the model uses a monotonically increasing 64-bit ID, which is
/// equivalent as long as no more than 2¹⁵ regions are simultaneously
/// in flight — trivially true with WPQ-bounded regions.
pub type RegionId = u64;

/// Per-region protocol state.
#[derive(Clone, Debug)]
struct RegionState {
    /// Cycle at which each MC's WPQ received the boundary token.
    delivered: Vec<Option<u64>>,
    /// Cycle at which each MC finished issuing the region's entries.
    flush_done: Vec<Option<u64>>,
}

/// The ordering-protocol timing model shared by all MCs.
#[derive(Clone, Debug)]
pub struct RegionTracker {
    num_mcs: usize,
    noc_latency: u64,
    next_region: RegionId,
    /// Per-MC next region to flush.
    flush_pos: Vec<RegionId>,
    /// Eagerly maintained bdry-ACK completion time of each MC's current
    /// flush-position region: always equal to
    /// `bdry_acked_at(flush_pos[mc])`, refreshed whenever either input
    /// changes. The flush gate (`flushable`) and the MC event horizon
    /// query this every active cycle — the cache answers them without
    /// hashing into the regions map.
    frontier_acked: Vec<Option<u64>>,
    /// Next region to durably commit.
    commit_frontier: RegionId,
    /// Scheduled commit: `(region, flush-ACK completion cycle)`.
    pending_commit: Option<(RegionId, u64)>,
    regions: FxHashMap<RegionId, RegionState>,
    committed: u64,
    /// Mutation counter: bumped by every state transition (allocation,
    /// boundary delivery, flush-done report, commit). Lets read-side
    /// consumers — notably [`crate::controller::MemController`]'s
    /// `next_event` memo — cache derived values keyed on the tracker
    /// generation and revalidate in O(1).
    version: u64,
}

impl RegionTracker {
    /// Creates a tracker for `num_mcs` controllers with one-way NoC
    /// latency `noc_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `num_mcs` is zero.
    pub fn new(num_mcs: usize, noc_latency: u64) -> RegionTracker {
        assert!(num_mcs > 0, "need at least one memory controller");
        RegionTracker {
            num_mcs,
            noc_latency,
            next_region: 1,
            flush_pos: vec![1; num_mcs],
            frontier_acked: vec![None; num_mcs],
            commit_frontier: 1,
            pending_commit: None,
            regions: FxHashMap::default(),
            committed: 0,
            version: 0,
        }
    }

    /// Current mutation generation. Any two calls returning the same
    /// value bracket an interval in which no tracker state changed, so
    /// any pure function of the tracker evaluates identically.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Atomically samples a fresh region ID (the `G.fetch_add` a thread
    /// performs at each boundary, §IV-B).
    pub fn alloc_region(&mut self) -> RegionId {
        let id = self.next_region;
        self.next_region += 1;
        self.version += 1;
        id
    }

    /// Highest region ID allocated so far (0 if none).
    pub fn last_allocated(&self) -> RegionId {
        self.next_region - 1
    }

    /// The next region MC `m` will flush (its flush ID, §IV-B).
    #[inline]
    pub fn flush_pos(&self, mc: usize) -> RegionId {
        self.flush_pos[mc]
    }

    /// The oldest region not yet durably committed.
    pub fn commit_frontier(&self) -> RegionId {
        self.commit_frontier
    }

    /// Backwards-compatible alias used by gating logic: the oldest
    /// region any MC still has to flush.
    #[inline]
    pub fn flush_frontier(&self) -> RegionId {
        self.flush_pos
            .iter()
            .copied()
            .min()
            .unwrap_or(self.commit_frontier)
    }

    /// Number of committed regions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    fn state_mut(&mut self, region: RegionId) -> &mut RegionState {
        let n = self.num_mcs;
        self.regions.entry(region).or_insert_with(|| RegionState {
            delivered: vec![None; n],
            flush_done: vec![None; n],
        })
    }

    /// Records that `mc`'s WPQ received the boundary token of `region`
    /// at cycle `now`.
    pub fn deliver_boundary(&mut self, region: RegionId, mc: usize, now: u64) {
        self.version += 1;
        let st = self.state_mut(region);
        if st.delivered[mc].is_none() {
            st.delivered[mc] = Some(now);
        }
        // The delivery may complete the bdry-ACK exchange of `region`;
        // refresh the cache of every MC currently parked at it.
        for m in 0..self.num_mcs {
            if self.flush_pos[m] == region {
                self.frontier_acked[m] = self.bdry_acked_at(region);
            }
        }
    }

    /// True once every MC has received the boundary of `region`.
    pub fn boundary_everywhere(&self, region: RegionId) -> bool {
        self.regions
            .get(&region)
            .is_some_and(|st| st.delivered.iter().all(Option::is_some))
    }

    /// True if at least one MC (not necessarily all) has received the
    /// boundary of `region`. The recovery contract requires *all* MCs —
    /// this weaker predicate exists only so the test-only
    /// `AnyMcBoundary` gating mutant can model the corresponding bug
    /// and prove the crash auditor catches it.
    pub fn boundary_anywhere(&self, region: RegionId) -> bool {
        self.regions
            .get(&region)
            .is_some_and(|st| st.delivered.iter().any(Option::is_some))
    }

    /// True if MC `mc` has received the boundary of `region`. Like
    /// [`RegionTracker::boundary_anywhere`], this weaker-than-contract
    /// predicate exists only for the test-only `FirstMcBoundary` gating
    /// mutant (survivability inferred from one designated controller).
    pub fn boundary_at_mc(&self, region: RegionId, mc: usize) -> bool {
        self.regions
            .get(&region)
            .is_some_and(|st| st.delivered.get(mc).is_some_and(Option::is_some))
    }

    /// Cycle at which the bdry-ACK exchange for `region` completes, if
    /// the boundary has reached every MC.
    pub fn bdry_acked_at(&self, region: RegionId) -> Option<u64> {
        let st = self.regions.get(&region)?;
        let mut max = 0u64;
        for d in &st.delivered {
            max = max.max((*d)?);
        }
        Some(max + self.noc_latency)
    }

    /// Cached [`RegionTracker::bdry_acked_at`] of MC `mc`'s current
    /// flush position — the one region whose ACK state gates that MC's
    /// next action, queried every active cycle.
    #[inline]
    pub fn frontier_acked(&self, mc: usize) -> Option<u64> {
        debug_assert_eq!(
            self.frontier_acked[mc],
            self.bdry_acked_at(self.flush_pos[mc]),
            "stale frontier-ACK cache for MC {mc}"
        );
        self.frontier_acked[mc]
    }

    /// True if MC `mc` may flush entries of `region` at cycle `now`.
    #[inline]
    pub fn flushable(&self, mc: usize, region: RegionId, now: u64) -> bool {
        region == self.flush_pos[mc] && self.frontier_acked(mc).is_some_and(|t| t <= now)
    }

    /// Records that `mc` finished issuing every entry of `region` at
    /// cycle `now`; the MC immediately moves to the next region, and the
    /// commit is scheduled once all MCs are done.
    pub fn note_flush_done(&mut self, region: RegionId, mc: usize, now: u64) {
        debug_assert_eq!(region, self.flush_pos[mc]);
        self.version += 1;
        self.flush_pos[mc] = region + 1;
        self.frontier_acked[mc] = self.bdry_acked_at(region + 1);
        let noc = self.noc_latency;
        let commit_frontier = self.commit_frontier;
        let st = self.state_mut(region);
        if st.flush_done[mc].is_none() {
            st.flush_done[mc] = Some(now);
        }
        if region == commit_frontier && st.flush_done.iter().all(Option::is_some) {
            let max = st
                .flush_done
                .iter()
                .map(|t| t.unwrap())
                .max()
                .unwrap_or(now);
            self.pending_commit = Some((region, max + noc));
        }
    }

    /// True if `mc` already reported its flush of `region` done.
    pub fn mc_flush_reported(&self, region: RegionId, mc: usize) -> bool {
        self.regions
            .get(&region)
            .is_some_and(|st| st.flush_done[mc].is_some())
    }

    /// Advances the commit frontier when a scheduled commit's flush-ACK
    /// exchange completes; immediately schedules the next commit if its
    /// flushes already finished. Call once per cycle. Returns the
    /// committed region, if any.
    pub fn tick(&mut self, now: u64) -> Option<RegionId> {
        if let Some((region, at)) = self.pending_commit {
            if at <= now {
                // A commit is a state transition; no-op ticks (the
                // common per-cycle case) leave the version untouched so
                // they never invalidate read-side memos.
                self.version += 1;
                self.pending_commit = None;
                self.regions.remove(&region);
                self.commit_frontier = region + 1;
                self.committed += 1;
                // The next region may already be fully flushed.
                let next = self.commit_frontier;
                if let Some(st) = self.regions.get(&next) {
                    if st.flush_done.iter().all(Option::is_some) {
                        let max = st.flush_done.iter().map(|t| t.unwrap()).max().unwrap();
                        self.pending_commit = Some((next, max + self.noc_latency));
                    }
                }
                return Some(region);
            }
        }
        None
    }

    /// Event horizon: the cycle at which the scheduled commit's
    /// flush-ACK exchange completes, if one is pending. All other
    /// tracker transitions (boundary deliveries, flush-done reports) are
    /// driven by MC activity and are therefore events of the MCs, not of
    /// the tracker itself. `None` when no commit is scheduled.
    #[inline]
    pub fn next_event(&self) -> Option<u64> {
        self.pending_commit.map(|(_, at)| at)
    }

    /// Power-failure resolution (§IV-F steps 1–2): in-flight ACKs are
    /// delivered on battery power, so every region — starting at the
    /// commit frontier — whose boundary already reached **all** WPQs can
    /// still be flushed and committed. Returns the list of such regions
    /// in order; the first region missing a boundary anywhere (and
    /// everything after it) is unpersisted.
    pub fn survivable_regions(&self) -> Vec<RegionId> {
        let mut out = Vec::new();
        let mut k = self.commit_frontier;
        while k < self.next_region {
            // Regions already flushed everywhere but not yet committed
            // are survivable even though their state may lack boundary
            // info only if... boundary info is retained until commit, so
            // the check below covers them.
            if !self.boundary_everywhere(k) {
                break;
            }
            out.push(k);
            k += 1;
        }
        out
    }

    /// Number of MCs.
    pub fn num_mcs(&self) -> usize {
        self.num_mcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_monotone() {
        let mut t = RegionTracker::new(2, 20);
        assert_eq!(t.alloc_region(), 1);
        assert_eq!(t.alloc_region(), 2);
        assert_eq!(t.last_allocated(), 2);
        assert_eq!(t.flush_pos(0), 1);
        assert_eq!(t.commit_frontier(), 1);
    }

    #[test]
    fn boundary_needs_all_mcs() {
        let mut t = RegionTracker::new(2, 20);
        t.alloc_region();
        t.deliver_boundary(1, 0, 100);
        assert!(!t.boundary_everywhere(1));
        assert_eq!(t.bdry_acked_at(1), None);
        t.deliver_boundary(1, 1, 130);
        assert!(t.boundary_everywhere(1));
        assert_eq!(t.bdry_acked_at(1), Some(150), "max delivery + noc");
    }

    #[test]
    fn flushable_gates_on_position_and_acks() {
        let mut t = RegionTracker::new(2, 20);
        t.alloc_region();
        t.alloc_region();
        t.deliver_boundary(2, 0, 10);
        t.deliver_boundary(2, 1, 10);
        // Region 2 acked but region 1 is MC0's flush position.
        assert!(!t.flushable(0, 2, 1000));
        t.deliver_boundary(1, 0, 50);
        t.deliver_boundary(1, 1, 60);
        assert!(!t.flushable(0, 1, 79), "acks still in flight");
        assert!(t.flushable(0, 1, 80));
    }

    #[test]
    fn per_mc_flush_positions_advance_independently() {
        let mut t = RegionTracker::new(2, 20);
        t.alloc_region();
        t.alloc_region();
        for r in [1, 2] {
            t.deliver_boundary(r, 0, 0);
            t.deliver_boundary(r, 1, 0);
        }
        // MC0 races ahead through both regions while MC1 lags.
        t.note_flush_done(1, 0, 100);
        assert_eq!(t.flush_pos(0), 2);
        assert!(t.flushable(0, 2, 100), "MC0 may flush region 2 already");
        assert_eq!(t.flush_pos(1), 1, "MC1 unaffected");
        t.note_flush_done(2, 0, 110);
        assert_eq!(t.flush_pos(0), 3);
        // Commit still waits for MC1.
        assert_eq!(t.tick(10_000), None);
        t.note_flush_done(1, 1, 200);
        assert_eq!(t.tick(219), None, "flush-ACK in flight");
        assert_eq!(t.tick(220), Some(1));
        assert_eq!(t.commit_frontier(), 2);
    }

    #[test]
    fn commit_chain_drains_back_to_back() {
        let mut t = RegionTracker::new(1, 20);
        for _ in 0..3 {
            t.alloc_region();
        }
        for r in [1, 2, 3] {
            t.deliver_boundary(r, 0, 0);
            t.note_flush_done(r, 0, 10 * r);
        }
        // Commits retire in order as their ACK times pass.
        assert_eq!(t.tick(30), Some(1));
        assert_eq!(t.tick(40), Some(2));
        assert_eq!(t.tick(50), Some(3));
        assert_eq!(t.committed(), 3);
    }

    #[test]
    fn survivable_regions_stop_at_missing_boundary() {
        let mut t = RegionTracker::new(2, 20);
        for _ in 0..4 {
            t.alloc_region();
        }
        for r in [1, 2] {
            t.deliver_boundary(r, 0, 10);
            t.deliver_boundary(r, 1, 10);
        }
        t.deliver_boundary(3, 0, 10);
        assert_eq!(t.survivable_regions(), vec![1, 2]);
    }

    #[test]
    fn duplicate_deliveries_keep_first_timestamp() {
        let mut t = RegionTracker::new(1, 20);
        t.alloc_region();
        t.deliver_boundary(1, 0, 10);
        t.deliver_boundary(1, 0, 500);
        assert_eq!(t.bdry_acked_at(1), Some(30));
    }

    #[test]
    fn flush_frontier_is_min_over_mcs() {
        let mut t = RegionTracker::new(2, 20);
        t.alloc_region();
        t.deliver_boundary(1, 0, 0);
        t.deliver_boundary(1, 1, 0);
        t.note_flush_done(1, 0, 50);
        assert_eq!(t.flush_pos(0), 2);
        assert_eq!(t.flush_frontier(), 1, "MC1 still on region 1");
    }
}
