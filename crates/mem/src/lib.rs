//! # lightwsp-mem — the memory-system substrate
//!
//! Cycle-level models of every memory-side component the LightWSP
//! hardware (§III, §IV of the paper) touches, built from scratch:
//!
//! * [`pm`] — persistent main memory: functional 8-byte-word contents
//!   plus a channel-occupancy timing model (read/write latencies from
//!   Table I) and the CXL device variants of Table III;
//! * [`cache`] — generic set-associative caches (L1D, L2) with LRU and
//!   the pluggable victim-selection used by buffer snooping (§IV-G), and
//!   a sparse direct-mapped model of the 4 GB off-chip DRAM cache. The
//!   set-associative model carries the memory-path fast paths (SoA
//!   layout, MRU way memo, shift/mask address split); [`cache_ref`]
//!   retains the original array-of-structs model as the executable
//!   specification the differential tests prove the fast path against;
//! * [`line_filter`] — the incremental line-residency signature that
//!   short-circuits the eviction snoop's buffer scans: a zero bucket
//!   proves absence in one probe, positives are confirmed by the scan;
//! * [`store_buffer`] / [`front_buffer`] — the per-core store buffer and
//!   the repurposed write-combining buffer ("front-end buffer") that
//!   feeds the persist path, CAM-searchable for eviction snooping;
//! * [`persist_path`] — the non-temporal FIFO persist path: per-core
//!   bandwidth gate plus transit delay, with head-of-line blocking into
//!   the WPQs (this is where back-pressure originates);
//! * [`wpq`] — the battery-backed write pending queue used as a redo
//!   buffer: region-tagged entries, flush-ID gating, CAM search for LLC
//!   load misses (§IV-H), deadlock detection and the undo-logged
//!   overflow fallback (§IV-D);
//! * [`controller`] — the integrated memory controller: address
//!   interleaving, flush scheduling onto PM channels, per-MC flush ID;
//! * [`protocol`] — the boundary-broadcast / bdry-ACK / flush-ACK
//!   ordering protocol between MCs (§IV-B) with explicit NoC timing and
//!   battery-covered in-flight delivery on power failure;
//! * [`cam`] — an analytical CAM search-latency model standing in for
//!   the paper's CACTI 7.0 runs (§V-G2);
//! * [`energy`] — the §II-C1 residual-energy feasibility model showing
//!   why JIT-checkpointing cannot cover a DRAM cache while LightWSP's
//!   WPQ battery is microjoule-class.
//!
//! All latencies are in **core cycles at 2 GHz** (1 ns = 2 cycles), so
//! Table I's 20 ns persist path is 40 cycles, PM reads 175 ns are 350
//! cycles, and so on. [`MemConfig::table1`] is the paper's default
//! system.

#![warn(missing_docs)]

pub mod cache;
pub mod cache_ref;
pub mod cam;
pub mod config;
pub mod controller;
pub mod energy;
pub mod front_buffer;
pub mod line_filter;
pub mod persist_path;
pub mod pm;
pub mod protocol;
pub mod store_buffer;
pub mod wpq;

pub use config::{CxlDevice, MemConfig};
pub use controller::{FailureResolution, MemController};
pub use protocol::{RegionId, RegionTracker};
