//! The integrated memory controller (iMC): WPQ gating, flush scheduling
//! onto PM channels, deadlock resolution (§IV-D), and the MC side of the
//! power-failure protocol (§IV-F).

use crate::config::MemConfig;
use crate::persist_path::{PersistEntry, PersistKind};
use crate::pm::PersistentMemory;
use crate::protocol::{RegionId, RegionTracker};
use crate::wpq::{Wpq, WpqEntry};

/// How the WPQ releases entries to PM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlushMode {
    /// LightWSP/Capri: entries quarantine until their region is the
    /// flush frontier and its boundary is acknowledged everywhere.
    #[default]
    Gated,
    /// PPA/cWSP: entries flush in FIFO order as soon as channels are
    /// free (replay- or speculation-based recovery needs no gating).
    Immediate,
}

/// Entry-by-entry account of one MC's §IV-F power-failure resolution,
/// consumed by the crash auditor (`lightwsp-sim`'s `crash` module) to
/// check the recovery contract (`RECOVERY.md`) against what the
/// hardware model actually did.
/// `PartialEq` compares every entry's fate exactly — the step-mode
/// parity suite uses it to prove crash resolutions are identical under
/// reference and skip-ahead stepping.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailureResolution {
    /// Survivable home entries written to PM on battery, in write order
    /// (region-sorted, so a same-address pair persists oldest-first).
    pub flushed: Vec<WpqEntry>,
    /// Survivable non-home replicas dropped without a PM write
    /// (boundary tokens are broadcast to every MC; only the home copy
    /// writes PM).
    pub replicas_dropped: u64,
    /// Entries of unsurvivable regions, discarded unwritten.
    pub discarded: Vec<WpqEntry>,
    /// Undo-log rollbacks applied, in application order (newest first):
    /// `(region, address, restored PM value)`.
    pub rolled_back: Vec<(RegionId, u64, u64)>,
}

/// One integrated memory controller.
#[derive(Clone, Debug)]
pub struct MemController {
    id: usize,
    wpq: Wpq,
    /// Per-channel busy-until cycle (issue occupancy model).
    channels: Vec<u64>,
    write_occupancy: u64,
    /// Extra per-write occupancy (cWSP's undo-logging copy, §II-C).
    extra_write_occupancy: u64,
    mode: FlushMode,
    /// Overflow fallback active (§IV-D): the WPQ filled up without the
    /// frontier's boundary; frontier stores flush undo-logged.
    overflow_mode: bool,
    /// First cycle at which the full-without-frontier-boundary condition
    /// was observed (a few-cycle filter against single-cycle transients;
    /// §IV-D's detection is otherwise immediate).
    deadlock_since: Option<u64>,
    /// Cycles the full condition must persist before the fallback fires.
    deadlock_grace: u64,
    /// Battery-backed undo log: `(region, addr, previous PM value)`.
    undo_log: Vec<(RegionId, u64, u64)>,
    /// WPQ slots reserved for flush-frontier entries, guaranteeing that
    /// the oldest uncommitted region can always make progress even when
    /// younger regions fill the queue (see the module docs).
    frontier_reserve: usize,
    flushed_entries: u64,
    overflow_events: u64,
    declined_in_overflow: u64,
    /// Memoized [`MemController::next_event`] result, keyed on the
    /// tracker generation it was computed against. Cleared by every
    /// mutation of this controller that can move the horizon; a tracker
    /// mutation invalidates it via the version key.
    ev_memo: Option<(u64, Option<u64>)>,
}

impl MemController {
    /// Creates controller `id` per `config`.
    pub fn new(id: usize, config: &MemConfig) -> MemController {
        MemController {
            id,
            wpq: Wpq::new(config.wpq_entries),
            channels: vec![0; config.channels_per_mc],
            write_occupancy: config.pm_write_occupancy,
            extra_write_occupancy: 0,
            mode: FlushMode::Gated,
            frontier_reserve: (config.wpq_entries / 16).clamp(1, 4),
            overflow_mode: false,
            deadlock_since: None,
            deadlock_grace: 4,
            undo_log: Vec::new(),
            flushed_entries: 0,
            overflow_events: 0,
            declined_in_overflow: 0,
            ev_memo: None,
        }
    }

    /// This controller's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Selects the flush mode (schemes without WPQ gating).
    pub fn set_mode(&mut self, mode: FlushMode) {
        self.mode = mode;
        self.ev_memo = None;
    }

    /// Adds per-write channel occupancy (cWSP's undo-log copy delay).
    pub fn set_extra_write_occupancy(&mut self, extra: u64) {
        self.extra_write_occupancy = extra;
        self.ev_memo = None;
    }

    /// Shared access to the WPQ (stats, searches).
    pub fn wpq(&self) -> &Wpq {
        &self.wpq
    }

    /// Mutable access to the WPQ (CAM search updates hit counters).
    ///
    /// Deliberately does **not** invalidate the `next_event` memo:
    /// every caller mutates counters only (occupancy samples, CAM
    /// search stats), which the event horizon does not read. Mutations
    /// that move entries go through [`MemController::try_insert`] /
    /// [`MemController::tick`] / [`MemController::on_power_failure`],
    /// which do invalidate. The debug revalidation in
    /// [`MemController::next_event`] enforces this contract under test.
    pub fn wpq_mut(&mut self) -> &mut Wpq {
        &mut self.wpq
    }

    /// Attempts to accept a persist-path delivery at cycle `now`.
    /// Returns `false` if the WPQ is full (head-of-line block) or the
    /// overflow fallback is declining this region's stores.
    ///
    /// Detects the §IV-D deadlock on a failed insert: if the queue is
    /// full and does not contain the boundary token for the flush
    /// frontier, the frontier's stores can never be released normally,
    /// so the controller enters the undo-logged overflow fallback.
    pub fn try_insert(
        &mut self,
        entry: &PersistEntry,
        home: bool,
        now: u64,
        tracker: &mut RegionTracker,
    ) -> bool {
        let frontier = tracker.flush_pos(self.id);
        if self.mode == FlushMode::Immediate {
            if !self.wpq.has_room() {
                return false;
            }
            // The horizon reads only queue emptiness: inserting into a
            // non-empty queue cannot move it.
            if self.wpq.is_empty() {
                self.ev_memo = None;
            }
            self.wpq.insert(WpqEntry::from_persist(entry, home));
            if entry.kind == PersistKind::Boundary {
                tracker.deliver_boundary(entry.region, self.id, now);
            }
            return true;
        }
        // Gated horizon inputs: frontier pendingness, the overflow flag,
        // and tracker state (covered by the version key). A rejected or
        // accepted insert of a younger region changes none of them; the
        // overflow transitions and frontier-region inserts below drop
        // the memo explicitly.
        if entry.region <= frontier {
            self.ev_memo = None;
        }
        if self.overflow_mode {
            // Only the currently persisting region's stores (and its
            // boundary, which ends the fallback) are accepted.
            if entry.region != frontier {
                self.declined_in_overflow += 1;
                return false;
            }
        }
        // Younger regions may not consume the frontier's reserved slots;
        // without the reservation a queue full of younger stores could
        // block the frontier's own stores forever (the path delivers in
        // FIFO order, so the frontier core's entries are never stuck
        // behind younger ones of the same core).
        let is_frontier = entry.region <= frontier;
        if !is_frontier && self.wpq.len() + self.frontier_reserve >= self.wpq.capacity() {
            return false;
        }
        if !self.wpq.has_room() {
            // §IV-D: "When a WPQ gets full, LightWSP checks if the bit is
            // 0 … thus detecting a deadlock" — detection is immediate;
            // a tiny grace period only filters single-cycle transients.
            if !self.wpq.has_boundary_for(frontier) && !self.overflow_mode {
                match self.deadlock_since {
                    None => self.deadlock_since = Some(now),
                    Some(t) if now.saturating_sub(t) >= self.deadlock_grace => {
                        self.overflow_mode = true;
                        self.overflow_events += 1;
                        self.deadlock_since = None;
                        self.ev_memo = None;
                    }
                    Some(_) => {}
                }
            }
            return false;
        }
        self.deadlock_since = None;
        self.wpq.insert(WpqEntry::from_persist(entry, home));
        if entry.kind == PersistKind::Boundary {
            tracker.deliver_boundary(entry.region, self.id, now);
            if self.overflow_mode && entry.region == frontier {
                // The awaited boundary arrived; fall back to normal
                // gated flushing.
                self.overflow_mode = false;
            }
        }
        true
    }

    /// True while the overflow fallback is active.
    pub fn in_overflow(&self) -> bool {
        self.overflow_mode
    }

    /// One cycle of flush work: issues frontier-region entries onto free
    /// channels (normal gated flush once bdry-ACKed, or undo-logged
    /// overflow flush), and reports flush completion to the tracker.
    /// Flushed entries are appended to `flushed` so the caller can track
    /// per-core outstanding persists.
    pub fn tick(
        &mut self,
        now: u64,
        tracker: &mut RegionTracker,
        pm: &mut PersistentMemory,
        flushed: &mut Vec<WpqEntry>,
    ) {
        self.ev_memo = None;
        self.wpq.sample_occupancy();

        if self.mode == FlushMode::Immediate {
            // Ungated FIFO drain at channel speed.
            while let Some(ch) = self.channels.iter().position(|&busy| busy <= now) {
                let Some(entry) = self.wpq.take_one_oldest() else {
                    break;
                };
                if entry.home {
                    pm.write_word(entry.addr, entry.val);
                }
                self.flushed_entries += 1;
                self.channels[ch] = now + self.write_occupancy + self.extra_write_occupancy;
                flushed.push(entry);
            }
            return;
        }

        let frontier = tracker.flush_pos(self.id);
        let normal = tracker.flushable(self.id, frontier, now);
        if !normal && !self.overflow_mode {
            return;
        }

        // Issue as many frontier entries as channels allow this cycle.
        while let Some(ch) = self.channels.iter().position(|&busy| busy <= now) {
            let Some(entry) = self.wpq.take_one_of_region(frontier) else {
                break;
            };
            if self.overflow_mode && !normal {
                // Undo-log the old value before overwriting (§IV-D).
                if entry.home && !entry.is_boundary {
                    let old = pm.peek_word(entry.addr);
                    self.undo_log.push((frontier, entry.addr, old));
                }
            }
            if entry.home {
                pm.write_word(entry.addr, entry.val);
            }
            self.flushed_entries += 1;
            self.channels[ch] = now + self.write_occupancy + self.extra_write_occupancy;
            flushed.push(entry);
        }

        // Normal completion: every frontier entry issued → report done.
        if normal
            && self.wpq.count_region(frontier) == 0
            && !tracker.mc_flush_reported(frontier, self.id)
        {
            tracker.note_flush_done(frontier, self.id, now);
        }
    }

    /// Event horizon: the earliest cycle at which [`MemController::tick`]
    /// would do observable work (flush an entry or report a flush done),
    /// given the current WPQ contents and the tracker's protocol state.
    /// A returned cycle `<= now` means the controller is active this
    /// very cycle. `None` means nothing happens until new input arrives
    /// (a persist-path delivery — itself an event of the delivering
    /// core's path). Occupancy sampling is *not* an event: the caller
    /// accounts skipped samples in closed form via
    /// [`crate::wpq::Wpq::sample_occupancy_n`].
    ///
    /// The result is a pure function of controller + tracker state
    /// (`now` is not read), so it is memoized keyed on
    /// [`RegionTracker::version`]; controller mutations clear the memo
    /// directly. In debug builds every memo hit is revalidated against
    /// a fresh computation, which the parity suites exercise across all
    /// schemes.
    #[inline]
    pub fn next_event(&mut self, tracker: &RegionTracker) -> Option<u64> {
        let v = tracker.version();
        if let Some((cached_v, cached)) = self.ev_memo {
            if cached_v == v {
                debug_assert_eq!(
                    cached,
                    self.compute_next_event(tracker),
                    "stale MC event memo"
                );
                return cached;
            }
        }
        let ev = self.compute_next_event(tracker);
        self.ev_memo = Some((v, ev));
        ev
    }

    fn compute_next_event(&self, tracker: &RegionTracker) -> Option<u64> {
        // Earliest free PM channel (0 if any channel is already idle).
        let ch_free = self.channels.iter().copied().min().unwrap_or(0);
        if self.mode == FlushMode::Immediate {
            // Ungated FIFO drain: work whenever the queue is non-empty
            // and a channel frees up.
            return (!self.wpq.is_empty()).then_some(ch_free);
        }
        let frontier = tracker.flush_pos(self.id);
        let pending = self.wpq.has_region(frontier);
        let acked = tracker.frontier_acked(self.id);
        let mut ev: Option<u64> = None;
        let mut consider = |t: u64| ev = Some(ev.map_or(t, |e| e.min(t)));
        if pending {
            if self.overflow_mode {
                // Overflow fallback flushes frontier entries without
                // waiting for the boundary ACK.
                consider(ch_free);
            }
            if let Some(a) = acked {
                consider(a.max(ch_free));
            }
        } else if let Some(a) = acked {
            // No frontier entries left to issue: the flush-done report
            // fires as soon as the region becomes flushable.
            if !tracker.mc_flush_reported(frontier, self.id) {
                consider(a);
            }
        }
        ev
    }

    /// Called when the tracker commits `region`: its undo-log entries
    /// are no longer needed (the region persisted completely).
    pub fn on_region_committed(&mut self, region: RegionId) {
        self.undo_log.retain(|(r, _, _)| *r != region);
        self.ev_memo = None;
    }

    /// Power-failure handling (§IV-F steps 3–6) for this MC:
    ///
    /// 1. flush every entry of the `survivable` regions (battery),
    /// 2. roll back undo-logged overflow writes of unsurvivable regions
    ///    (newest first),
    /// 3. discard everything else.
    ///
    /// Returns the full [`FailureResolution`] so callers (the recovery
    /// report and the crash auditor) can see every entry's fate.
    pub fn on_power_failure(
        &mut self,
        survivable: &[RegionId],
        pm: &mut PersistentMemory,
    ) -> FailureResolution {
        self.ev_memo = None;
        let mut entries = self.wpq.drain_all();
        // §IV-F steps 3–5 flush region by region in flush-ID order;
        // entries from different cores may sit in the queue out of
        // region order (NUMA arrival skew), and a same-address pair from
        // two regions must persist oldest-first.
        entries.sort_by_key(|e| e.region);
        let mut res = FailureResolution::default();
        for e in entries {
            if survivable.contains(&e.region) {
                if e.home {
                    pm.write_word(e.addr, e.val);
                    self.flushed_entries += 1;
                    res.flushed.push(e);
                } else {
                    res.replicas_dropped += 1;
                }
            } else {
                res.discarded.push(e);
            }
        }
        // Unsurvivable overflow writes are rolled back newest-first so
        // multiple writes to one address restore the oldest value.
        for &(region, addr, old) in self.undo_log.iter().rev() {
            if !survivable.contains(&region) {
                pm.write_word(addr, old);
                res.rolled_back.push((region, addr, old));
            }
        }
        self.undo_log.clear();
        self.overflow_mode = false;
        self.deadlock_since = None;
        res
    }

    /// `(entries flushed, overflow events, inserts declined in overflow)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.flushed_entries,
            self.overflow_events,
            self.declined_in_overflow,
        )
    }

    /// Current undo-log depth (diagnostics).
    pub fn undo_log_len(&self) -> usize {
        self.undo_log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        let mut c = MemConfig::table1();
        c.wpq_entries = 4;
        c
    }

    fn data(addr: u64, region: RegionId) -> PersistEntry {
        PersistEntry {
            addr,
            val: addr + 1,
            region,
            kind: PersistKind::Data,
            core: 0,
        }
    }

    fn bdry(region: RegionId) -> PersistEntry {
        PersistEntry {
            addr: 0x1000_0100,
            val: 0xbeef,
            region,
            kind: PersistKind::Boundary,
            core: 0,
        }
    }

    /// Single-MC end-to-end: insert stores + boundary, tick until the
    /// region commits, check PM contents.
    #[test]
    fn gated_flush_and_commit() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        let r = tracker.alloc_region();

        assert!(mc.try_insert(&data(0x40, r), true, 0, &mut tracker));
        assert!(mc.try_insert(&data(0x48, r), true, 1, &mut tracker));
        // Not flushable before the boundary arrives.
        mc.tick(2, &mut tracker, &mut pm, &mut Vec::new());
        assert_eq!(pm.peek_word(0x40), 0, "gated until boundary + acks");

        assert!(mc.try_insert(&bdry(r), true, 3, &mut tracker));
        let mut committed = None;
        for now in 4..200 {
            mc.tick(now, &mut tracker, &mut pm, &mut Vec::new());
            if let Some(k) = tracker.tick(now) {
                committed = Some((k, now));
                break;
            }
        }
        let (k, _) = committed.expect("region must commit");
        assert_eq!(k, r);
        assert_eq!(pm.peek_word(0x40), 0x41);
        assert_eq!(pm.peek_word(0x48), 0x49);
        assert_eq!(
            pm.peek_word(0x1000_0100),
            0xbeef,
            "boundary PC store persisted"
        );
        assert_eq!(tracker.flush_frontier(), r + 1);
    }

    #[test]
    fn younger_region_gated_until_older_commits() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        let r1 = tracker.alloc_region();
        let r2 = tracker.alloc_region();

        // r2 fully arrives (data + boundary) before r1's boundary.
        assert!(mc.try_insert(&data(0x80, r2), true, 0, &mut tracker));
        assert!(mc.try_insert(&bdry(r2), true, 1, &mut tracker));
        assert!(mc.try_insert(&data(0x40, r1), true, 2, &mut tracker));
        for now in 3..500 {
            mc.tick(now, &mut tracker, &mut pm, &mut Vec::new());
            tracker.tick(now);
        }
        assert_eq!(pm.peek_word(0x80), 0, "r2 must not persist before r1");
        assert_eq!(pm.peek_word(0x40), 0, "r1 boundary never arrived");
        assert_eq!(tracker.flush_frontier(), r1);
    }

    #[test]
    fn hol_block_when_full() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let r = tracker.alloc_region();
        for i in 0..4 {
            assert!(mc.try_insert(&data(i * 8 + 0x40, r), true, 0, &mut tracker));
        }
        assert!(!mc.try_insert(&data(0x100, r), true, 0, &mut tracker));
    }

    #[test]
    fn deadlock_detection_and_overflow_flush() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        pm.write_word(0x40, 7); // pre-existing value for the undo log
        let r = tracker.alloc_region();

        for i in 0..4 {
            assert!(mc.try_insert(&data(0x40 + i * 8, r), true, 0, &mut tracker));
        }
        // Full without the frontier's boundary arms the deadlock timer;
        // after the grace period (worst-case boundary transit) the next
        // rejected insert engages the overflow fallback.
        assert!(!mc.try_insert(&data(0x100, r), true, 0, &mut tracker));
        assert!(!mc.in_overflow(), "transient fullness is not a deadlock");
        assert!(!mc.try_insert(&data(0x100, r), true, 10_000, &mut tracker));
        assert!(mc.in_overflow());
        assert_eq!(mc.stats().1, 1, "one overflow event");

        // Overflow flush: frontier stores persist with undo logging.
        for now in 1..50 {
            mc.tick(now, &mut tracker, &mut pm, &mut Vec::new());
        }
        assert_eq!(pm.peek_word(0x40), 0x41, "overflow-flushed");
        assert!(mc.undo_log_len() > 0);

        // Other regions' stores are declined during overflow.
        assert!(!mc.try_insert(&data(0x200, r + 5), true, 50, &mut tracker));
        assert_eq!(mc.stats().2, 1);

        // The boundary finally arrives → overflow ends, region commits.
        assert!(mc.try_insert(&bdry(r), true, 51, &mut tracker));
        assert!(!mc.in_overflow());
        for now in 52..300 {
            mc.tick(now, &mut tracker, &mut pm, &mut Vec::new());
            if let Some(k) = tracker.tick(now) {
                mc.on_region_committed(k);
            }
        }
        assert_eq!(tracker.flush_frontier(), r + 1);
        assert_eq!(mc.undo_log_len(), 0, "undo log cleared at commit");
    }

    #[test]
    fn power_failure_rolls_back_overflow_writes() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        pm.write_word(0x40, 7);
        let r = tracker.alloc_region();
        for i in 0..4 {
            mc.try_insert(&data(0x40 + i * 8, r), true, 0, &mut tracker);
        }
        assert!(!mc.try_insert(&data(0x100, r), true, 0, &mut tracker)); // arm timer
        assert!(!mc.try_insert(&data(0x100, r), true, 10_000, &mut tracker)); // overflow
        for now in 1..50 {
            mc.tick(now, &mut tracker, &mut pm, &mut Vec::new());
        }
        assert_eq!(pm.peek_word(0x40), 0x41);
        // Power failure before the boundary: region unsurvivable.
        let survivable = tracker.survivable_regions();
        assert!(survivable.is_empty());
        mc.on_power_failure(&survivable, &mut pm);
        assert_eq!(pm.peek_word(0x40), 7, "old value restored from undo log");
    }

    #[test]
    fn power_failure_flushes_survivable_regions() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        let r = tracker.alloc_region();
        mc.try_insert(&data(0x40, r), true, 0, &mut tracker);
        mc.try_insert(&bdry(r), true, 0, &mut tracker);
        // Fail before any tick: boundary delivered → survivable.
        let survivable = tracker.survivable_regions();
        assert_eq!(survivable, vec![r]);
        mc.on_power_failure(&survivable, &mut pm);
        assert_eq!(pm.peek_word(0x40), 0x41);
        assert_eq!(pm.peek_word(0x1000_0100), 0xbeef);
        assert!(mc.wpq().is_empty());
    }
}

#[cfg(test)]
mod immediate_mode_tests {
    use super::*;

    fn cfg() -> MemConfig {
        let mut c = MemConfig::table1();
        c.wpq_entries = 8;
        c
    }

    fn data(addr: u64, region: RegionId) -> PersistEntry {
        PersistEntry {
            addr,
            val: addr + 1,
            region,
            kind: PersistKind::Data,
            core: 0,
        }
    }

    /// PPA/cWSP: ungated FIFO drain, no boundary required.
    #[test]
    fn immediate_mode_flushes_without_boundaries() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        mc.set_mode(FlushMode::Immediate);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        let r = tracker.alloc_region();
        for i in 0..4 {
            assert!(mc.try_insert(&data(0x40 + i * 8, r), true, 0, &mut tracker));
        }
        let mut flushed = Vec::new();
        for now in 1..100 {
            mc.tick(now, &mut tracker, &mut pm, &mut flushed);
        }
        assert_eq!(flushed.len(), 4, "all entries drained with no boundary");
        assert_eq!(pm.peek_word(0x40), 0x41);
        assert!(mc.wpq().is_empty());
    }

    /// cWSP's undo-log copy delay slows the drain (extra occupancy).
    #[test]
    fn extra_write_occupancy_slows_drain() {
        let run = |extra: u64| {
            let c = cfg();
            let mut mc = MemController::new(0, &c);
            mc.set_mode(FlushMode::Immediate);
            mc.set_extra_write_occupancy(extra);
            let mut tracker = RegionTracker::new(1, c.noc_latency);
            let mut pm = PersistentMemory::new();
            let r = tracker.alloc_region();
            for i in 0..8 {
                mc.try_insert(&data(0x40 + i * 8, r), true, 0, &mut tracker);
            }
            let mut flushed = Vec::new();
            let mut done_at = 0;
            for now in 1..10_000 {
                mc.tick(now, &mut tracker, &mut pm, &mut flushed);
                if flushed.len() == 8 {
                    done_at = now;
                    break;
                }
            }
            done_at
        };
        assert!(run(20) > run(0), "undo-log delay must slow the flush");
    }

    /// Immediate mode keeps FIFO order per queue.
    #[test]
    fn immediate_mode_is_fifo() {
        let c = cfg();
        let mut mc = MemController::new(0, &c);
        mc.set_mode(FlushMode::Immediate);
        let mut tracker = RegionTracker::new(1, c.noc_latency);
        let mut pm = PersistentMemory::new();
        for (i, r) in [(0u64, 5u64), (1, 3), (2, 9)] {
            assert!(mc.try_insert(&data(0x100 + i * 8, r), true, 0, &mut tracker));
        }
        let mut flushed = Vec::new();
        for now in 1..100 {
            mc.tick(now, &mut tracker, &mut pm, &mut flushed);
        }
        let regions: Vec<u64> = flushed.iter().map(|e| e.region).collect();
        assert_eq!(regions, vec![5, 3, 9], "insertion order, not region order");
    }
}
