//! Reference set-associative cache: the executable specification the
//! fast-path [`SetAssocCache`](crate::cache::SetAssocCache) is proven
//! against.
//!
//! This is the original array-of-structs implementation, retained
//! verbatim (the same pattern as `StepMode::Reference` and
//! `ExecMode::Reference`): a flat `Line` array, a linear way scan per
//! access, and two 64-bit divisions per address split. The
//! differential proptests (`crates/mem/tests/mem_fast_path.rs`) drive
//! random access streams through both models under every
//! [`VictimPolicy`] and assert access-for-access equality of results
//! and counters; the `mem_path` microbench times the two against each
//! other so the fast path's speedup is a measured number, not a claim.

use crate::cache::{AccessResult, VictimPolicy};

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// The specification cache model (array-of-structs, full way scans).
#[derive(Clone, Debug)]
pub struct SetAssocCacheRef {
    lines: Vec<Line>,
    num_sets: usize,
    ways: usize,
    line_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    snoops: u64,
    conflicts: u64,
}

impl SetAssocCacheRef {
    /// Creates a cache with `sets` sets of `ways` lines of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> SetAssocCacheRef {
        assert!(
            sets > 0 && ways > 0 && line_bytes > 0,
            "cache dimensions must be positive"
        );
        SetAssocCacheRef {
            lines: vec![Line::default(); sets * ways],
            num_sets: sets,
            ways,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
            snoops: 0,
            conflicts: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        (
            (line % self.num_sets as u64) as usize,
            line / self.num_sets as u64,
        )
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.num_sets as u64 + set as u64) * self.line_bytes
    }

    fn set_lines(&self, set: usize) -> &[Line] {
        &self.lines[set * self.ways..(set + 1) * self.ways]
    }

    fn set_lines_mut(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Accesses `addr`; the specification for
    /// [`SetAssocCache::access`](crate::cache::SetAssocCache::access).
    pub fn access(
        &mut self,
        addr: u64,
        is_write: bool,
        policy: VictimPolicy,
        mut conflicts_with_buffer: impl FnMut(u64) -> bool,
    ) -> AccessResult {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.ways;
        let tick = self.tick;

        if let Some(line) = self
            .set_lines_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.last_use = tick;
            line.dirty |= is_write;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
                conflict_delayed: false,
            };
        }
        self.misses += 1;

        // Invalid way, if any.
        if let Some(idx) = self.set_lines(set).iter().position(|l| !l.valid) {
            self.set_lines_mut(set)[idx] = Line {
                tag,
                valid: true,
                dirty: is_write,
                last_use: tick,
            };
            return AccessResult {
                hit: false,
                evicted: None,
                conflict_delayed: false,
            };
        }

        // LRU-ordered victim candidates (ways ≤ 16: stack insertion sort).
        let mut order = [0usize; 16];
        debug_assert!(ways <= 16);
        for (i, slot) in order.iter_mut().enumerate().take(ways) {
            *slot = i;
        }
        let order = &mut order[..ways];
        order.sort_unstable_by_key(|&i| self.set_lines(set)[i].last_use);

        let scan = match policy {
            VictimPolicy::Full => ways,
            VictimPolicy::Half => ways.div_ceil(2),
            VictimPolicy::Zero | VictimPolicy::StaleLoad => 1,
        };
        let mut chosen = order[0];
        let mut delayed = false;
        if policy != VictimPolicy::StaleLoad {
            // Only dirty victims can conflict (clean lines carry no
            // pending store data).
            let mut found = None;
            for &cand in order.iter().take(scan) {
                let line = self.set_lines(set)[cand];
                let la = self.line_addr(set, line.tag);
                if line.dirty {
                    self.snoops += 1;
                    if conflicts_with_buffer(la) {
                        self.conflicts += 1;
                        continue;
                    }
                }
                found = Some(cand);
                break;
            }
            match found {
                Some(c) => chosen = c,
                None => {
                    delayed = true;
                    chosen = order[0];
                }
            }
        }

        let victim = self.set_lines(set)[chosen];
        let evicted = Some((self.line_addr(set, victim.tag), victim.dirty));
        self.set_lines_mut(set)[chosen] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: tick,
        };
        AccessResult {
            hit: false,
            evicted,
            conflict_delayed: delayed,
        }
    }

    /// True if the line containing `addr` is present.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_lines(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line (power failure: caches are volatile).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(snoops, conflicts)` counters.
    pub fn snoop_stats(&self) -> (u64, u64) {
        (self.snoops, self.conflicts)
    }
}
