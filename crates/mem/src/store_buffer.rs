//! The per-core store buffer (SQ in Table I: 56 entries).
//!
//! Retired stores wait here before draining — one per cycle — into
//! *both* paths at once: the regular path (L1D write) and the persist
//! path (a copy pushed into the front-end buffer). When the front-end
//! buffer is full the store buffer cannot drain, and when the store
//! buffer is full the core stalls; this is the back-pressure chain
//! (§III-C) that the region-size threshold exists to keep empty.

use crate::persist_path::PersistEntry;
use std::collections::VecDeque;

/// A bounded FIFO of retired-but-unwritten stores.
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    entries: VecDeque<PersistEntry>,
    capacity: usize,
    pushes: u64,
    full_stalls: u64,
}

impl StoreBuffer {
    /// Creates a store buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> StoreBuffer {
        assert!(capacity > 0, "store buffer capacity must be positive");
        StoreBuffer {
            entries: VecDeque::new(),
            capacity,
            pushes: 0,
            full_stalls: 0,
        }
    }

    /// True if another store can be accepted this cycle.
    #[inline]
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Event horizon: the buffer is purely reactive (it drains one entry
    /// per cycle whenever downstream admits), so its only event is "can
    /// move next cycle" while non-empty. `None` when empty.
    #[inline]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (!self.entries.is_empty()).then_some(now + 1)
    }

    /// Accepts a retired store. Returns `false` (and counts a stall) if
    /// the buffer is full.
    pub fn push(&mut self, entry: PersistEntry) -> bool {
        if !self.has_room() {
            self.full_stalls += 1;
            return false;
        }
        self.pushes += 1;
        self.entries.push_back(entry);
        true
    }

    /// The oldest entry, if any.
    pub fn front(&self) -> Option<&PersistEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<PersistEntry> {
        self.entries.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards all contents (power failure: the store buffer is
    /// volatile).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `(pushes, rejected-because-full)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.pushes, self.full_stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist_path::PersistKind;

    fn entry(addr: u64) -> PersistEntry {
        PersistEntry {
            addr,
            val: 0,
            region: 1,
            kind: PersistKind::Data,
            core: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        assert!(sb.push(entry(8)));
        assert!(sb.push(entry(16)));
        assert_eq!(sb.pop().unwrap().addr, 8);
        assert_eq!(sb.pop().unwrap().addr, 16);
        assert!(sb.pop().is_none());
    }

    #[test]
    fn rejects_when_full_and_counts_stall() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.push(entry(0)));
        assert!(sb.push(entry(8)));
        assert!(!sb.has_room());
        assert!(!sb.push(entry(16)));
        assert_eq!(sb.stats(), (2, 1));
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut sb = StoreBuffer::new(2);
        sb.push(entry(0));
        sb.clear();
        assert!(sb.is_empty());
    }
}
