//! The write pending queue (WPQ) used as a battery-backed redo buffer
//! (§III-A).
//!
//! Entries are 8-byte stores tagged with their region ID. The queue
//! *gates* (quarantines) them: entries flush to PM only when their
//! region matches the MC's flush ID and the region's boundary has been
//! acknowledged by every MC. The WPQ (and writes already issued from
//! it) are inside the persistence domain — their contents survive power
//! failure; everything upstream (store buffer, front-end buffer,
//! persist path) is volatile.

use crate::persist_path::{PersistEntry, PersistKind};
use crate::protocol::RegionId;
use std::collections::VecDeque;

/// One quarantined store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WpqEntry {
    /// Byte address (8-byte aligned).
    pub addr: u64,
    /// The value to persist.
    pub val: u64,
    /// The owning region.
    pub region: RegionId,
    /// True for the region-boundary token (the PC-checkpointing store,
    /// replicated to every MC; only the home copy writes PM).
    pub is_boundary: bool,
    /// True if this MC owns the entry's address (writes PM on flush).
    pub home: bool,
    /// The core that issued the store (per-core outstanding tracking).
    pub core: usize,
}

impl WpqEntry {
    /// Builds a WPQ entry from a delivered persist-path entry.
    pub fn from_persist(e: &PersistEntry, home: bool) -> WpqEntry {
        WpqEntry {
            addr: e.addr,
            val: e.val,
            region: e.region,
            is_boundary: e.kind == PersistKind::Boundary,
            home,
            core: e.core,
        }
    }
}

/// The battery-backed write pending queue of one MC.
#[derive(Clone, Debug)]
pub struct Wpq {
    /// Arrival-ordered queue. A ring buffer, because flush scheduling
    /// removes from the *front* (oldest-first) once per flushed entry —
    /// a `Vec` would shift the whole tail each time.
    entries: VecDeque<WpqEntry>,
    /// Entries per region, kept in lockstep with `entries` so the
    /// event-scan hot path answers [`Wpq::has_region`] /
    /// [`Wpq::count_region`] without walking the queue. Sorted by
    /// region ID and kept as a flat vec: regions arrive in roughly
    /// ascending order and drain from the oldest, so inserts probe from
    /// the back and lookups for the flush frontier hit the front — one
    /// compare each in the common case, no hashing.
    region_counts: Vec<(RegionId, u32)>,
    capacity: usize,
    inserts: u64,
    cam_searches: u64,
    cam_hits: u64,
    max_occupancy: usize,
    occupancy_accum: u64,
    occupancy_samples: u64,
}

impl Wpq {
    /// Creates a WPQ with `capacity` 8-byte entries (Table I: 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Wpq {
        assert!(capacity > 0, "WPQ capacity must be positive");
        Wpq {
            entries: VecDeque::with_capacity(capacity),
            region_counts: Vec::new(),
            capacity,
            inserts: 0,
            cam_searches: 0,
            cam_hits: 0,
            max_occupancy: 0,
            occupancy_accum: 0,
            occupancy_samples: 0,
        }
    }

    /// True if another entry fits.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Inserts a delivered entry.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers must check
    /// [`Wpq::has_room`]; the persist path head-of-line blocks instead).
    pub fn insert(&mut self, entry: WpqEntry) {
        assert!(
            self.has_room(),
            "WPQ overflow must be handled by the caller"
        );
        self.inserts += 1;
        self.count(entry.region);
        self.entries.push_back(entry);
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
    }

    /// Adds one entry of `region` to the count index. New regions are
    /// the youngest almost always, so probe from the back.
    fn count(&mut self, region: RegionId) {
        let mut i = self.region_counts.len();
        while i > 0 {
            match self.region_counts[i - 1].0 {
                r if r == region => {
                    self.region_counts[i - 1].1 += 1;
                    return;
                }
                r if r < region => break,
                _ => i -= 1,
            }
        }
        self.region_counts.insert(i, (region, 1));
    }

    /// Removes one entry of `region` from the count index. Drained
    /// regions are the oldest almost always, so probe from the front.
    fn uncount(&mut self, region: RegionId) {
        let i = self
            .region_counts
            .iter()
            .position(|&(r, _)| r == region)
            .expect("count index out of sync");
        self.region_counts[i].1 -= 1;
        if self.region_counts[i].1 == 0 {
            self.region_counts.remove(i);
        }
    }

    /// CAM search for an LLC load miss (§IV-H): true if any entry falls
    /// within the cache line at `line_addr`.
    pub fn search_line(&mut self, line_addr: u64, line_bytes: u64) -> bool {
        self.cam_searches += 1;
        // One division to find the line base, then a range compare per
        // entry — not a division per entry.
        let lo = line_addr - line_addr % line_bytes;
        let hit = self
            .entries
            .iter()
            .any(|e| !e.is_boundary && e.addr.wrapping_sub(lo) < line_bytes);
        if hit {
            self.cam_hits += 1;
        }
        hit
    }

    /// Removes and returns the oldest entry of `region`, if any
    /// (allocation-free flush scheduling).
    pub fn take_one_of_region(&mut self, region: RegionId) -> Option<WpqEntry> {
        if !self.has_region(region) {
            return None;
        }
        let i = self.entries.iter().position(|e| e.region == region)?;
        self.uncount(region);
        // Gated flushing drains the frontier region, whose entries are
        // the oldest in the queue — `i == 0` is the common case and a
        // ring-buffer pop; interleaved younger regions pay the shift.
        if i == 0 {
            self.entries.pop_front()
        } else {
            self.entries.remove(i)
        }
    }

    /// Removes and returns the oldest entry regardless of region.
    pub fn take_one_oldest(&mut self) -> Option<WpqEntry> {
        let e = self.entries.pop_front()?;
        self.uncount(e.region);
        Some(e)
    }

    /// Removes and returns up to `max` entries of `region`, oldest
    /// first (flush scheduling).
    pub fn take_region(&mut self, region: RegionId, max: usize) -> Vec<WpqEntry> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.take_one_of_region(region) {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    /// Removes and returns up to `max` entries in FIFO order regardless
    /// of region (ungated flushing, used by the PPA and cWSP baseline
    /// models that do not gate the WPQ).
    pub fn take_oldest(&mut self, max: usize) -> Vec<WpqEntry> {
        let n = max.min(self.entries.len());
        let out: Vec<WpqEntry> = self.entries.drain(..n).collect();
        for e in &out {
            self.uncount(e.region);
        }
        out
    }

    /// Number of entries belonging to `region` (one compare in the
    /// common frontier query, via the sorted count index).
    #[inline]
    pub fn count_region(&self, region: RegionId) -> usize {
        // The index is sorted ascending and queries target the flush
        // frontier — the oldest region — so scan from the front.
        for &(r, n) in &self.region_counts {
            if r >= region {
                return if r == region { n as usize } else { 0 };
            }
        }
        0
    }

    /// True if any entry belongs to `region` (via the count index).
    #[inline]
    pub fn has_region(&self, region: RegionId) -> bool {
        self.count_region(region) != 0
    }

    /// The §IV-D deadlock-detection bit: does the queue hold the
    /// boundary token for `region`?
    pub fn has_boundary_for(&self, region: RegionId) -> bool {
        self.entries
            .iter()
            .any(|e| e.is_boundary && e.region == region)
    }

    /// Drains every entry (power-failure recovery examines and then
    /// discards them).
    pub fn drain_all(&mut self) -> Vec<WpqEntry> {
        self.region_counts.clear();
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Read-only view of the queued entries in arrival order. Exposed
    /// for property tests that cross-check the O(1) per-region count
    /// index against a full recount; operational code uses the indexed
    /// accessors above.
    pub fn entries(&self) -> &VecDeque<WpqEntry> {
        &self.entries
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples the occupancy (call once per cycle for averages).
    pub fn sample_occupancy(&mut self) {
        self.occupancy_accum += self.entries.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Records `cycles` consecutive occupancy samples at the current
    /// level in one step. Used by the event-driven stepper when it skips
    /// an interval during which the queue provably does not change:
    /// equivalent to calling [`Wpq::sample_occupancy`] once per cycle.
    pub fn sample_occupancy_n(&mut self, cycles: u64) {
        self.occupancy_accum += self.entries.len() as u64 * cycles;
        self.occupancy_samples += cycles;
    }

    /// `(inserts, CAM searches, CAM hits, max occupancy)`.
    pub fn stats(&self) -> (u64, u64, u64, usize) {
        (
            self.inserts,
            self.cam_searches,
            self.cam_hits,
            self.max_occupancy,
        )
    }

    /// Mean occupancy across sampled cycles.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_accum as f64 / self.occupancy_samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(addr: u64, region: RegionId) -> WpqEntry {
        WpqEntry {
            addr,
            val: addr + 1,
            region,
            is_boundary: false,
            home: true,
            core: 0,
        }
    }

    fn boundary(region: RegionId) -> WpqEntry {
        WpqEntry {
            addr: 0x1000_0100,
            val: 0,
            region,
            is_boundary: true,
            home: true,
            core: 0,
        }
    }

    #[test]
    fn capacity_enforced() {
        let mut q = Wpq::new(2);
        q.insert(data(0, 1));
        q.insert(data(8, 1));
        assert!(!q.has_room());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn insert_into_full_panics() {
        let mut q = Wpq::new(1);
        q.insert(data(0, 1));
        q.insert(data(8, 1));
    }

    #[test]
    fn take_region_is_selective_and_ordered() {
        let mut q = Wpq::new(8);
        q.insert(data(0, 1));
        q.insert(data(8, 2));
        q.insert(data(16, 1));
        let taken = q.take_region(1, 10);
        assert_eq!(
            taken.iter().map(|e| e.addr).collect::<Vec<_>>(),
            vec![0, 16]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.count_region(2), 1);
    }

    #[test]
    fn take_region_respects_max() {
        let mut q = Wpq::new(8);
        for i in 0..4 {
            q.insert(data(i * 8, 1));
        }
        let taken = q.take_region(1, 2);
        assert_eq!(taken.len(), 2);
        assert_eq!(q.count_region(1), 2);
    }

    #[test]
    fn cam_search_ignores_boundary_tokens() {
        let mut q = Wpq::new(8);
        q.insert(boundary(1));
        assert!(!q.search_line(0x1000_0100 & !63, 64));
        q.insert(data(0x200, 1));
        assert!(q.search_line(0x200, 64));
        let (_, searches, hits, _) = q.stats();
        assert_eq!((searches, hits), (2, 1));
    }

    #[test]
    fn deadlock_bit() {
        let mut q = Wpq::new(4);
        q.insert(data(0, 3));
        assert!(!q.has_boundary_for(3));
        q.insert(boundary(3));
        assert!(q.has_boundary_for(3));
        assert!(!q.has_boundary_for(4));
    }

    #[test]
    fn occupancy_tracking() {
        let mut q = Wpq::new(4);
        q.sample_occupancy();
        q.insert(data(0, 1));
        q.insert(data(8, 1));
        q.sample_occupancy();
        assert_eq!(q.stats().3, 2);
        assert!((q.mean_occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drain_all_empties() {
        let mut q = Wpq::new(4);
        q.insert(data(0, 1));
        q.insert(boundary(1));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}
