//! System configuration (Table I of the paper, plus the Table III CXL
//! variants and every sensitivity-study knob).
//!
//! All latencies are core cycles at 2 GHz (1 ns = 2 cycles).

/// Converts nanoseconds to 2 GHz core cycles.
pub const fn ns(n: u64) -> u64 {
    n * 2
}

/// A CXL-attached memory device (Table III); replaces the iMC-attached
/// PM timing when selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CxlDevice {
    /// Hard IP, DDR5-4800: 38.4 GB/s, 158 ns read / 120 ns write.
    CxlI,
    /// Hard IP, DDR4-2400: 19.2 GB/s, 223 ns read / 139 ns write.
    CxlII,
    /// Soft IP, DDR4-3200: 25.6 GB/s, 348 ns read / 241 ns write.
    CxlIII,
    /// Simulated CXL-attached Optane PMem: 6.6/2.3 GB/s, 245/160 ns
    /// (Optane latencies plus 70 ns CXL interconnect latency).
    CxlPmem,
}

impl CxlDevice {
    /// `(read_latency, write_latency)` in cycles.
    pub fn latencies(self) -> (u64, u64) {
        match self {
            CxlDevice::CxlI => (ns(158), ns(120)),
            CxlDevice::CxlII => (ns(223), ns(139)),
            CxlDevice::CxlIII => (ns(348), ns(241)),
            CxlDevice::CxlPmem => (ns(245), ns(160)),
        }
    }

    /// Cycles of channel occupancy per 8-byte write, derived from the
    /// device's write bandwidth (per channel, 2 channels/MC × 2 MCs).
    pub fn write_occupancy(self) -> u64 {
        // occupancy = 8 B / (per-channel write bandwidth) in cycles.
        // Total device write BW split over 4 channels.
        let total_gbps = match self {
            CxlDevice::CxlI => 38.4,
            CxlDevice::CxlII => 19.2,
            CxlDevice::CxlIII => 25.6,
            CxlDevice::CxlPmem => 2.3,
        };
        let per_channel: f64 = total_gbps / 4.0; // GB/s
                                                 // 8 bytes at `per_channel` GB/s → ns = 8 / per_channel; ×2 cycles.
        ((8.0 / per_channel) * 2.0).ceil() as u64
    }

    /// Display name used in the evaluation tables.
    pub fn name(self) -> &'static str {
        match self {
            CxlDevice::CxlI => "CXL-I",
            CxlDevice::CxlII => "CXL-II",
            CxlDevice::CxlIII => "CXL-III",
            CxlDevice::CxlPmem => "CXL-PMem",
        }
    }

    /// All four devices, in Table III order.
    pub fn all() -> [CxlDevice; 4] {
        [
            CxlDevice::CxlI,
            CxlDevice::CxlII,
            CxlDevice::CxlIII,
            CxlDevice::CxlPmem,
        ]
    }
}

/// Full memory-system configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct MemConfig {
    /// Number of integrated memory controllers (Table I: 2).
    pub num_mcs: usize,
    /// PM channels per MC (Table I: 2).
    pub channels_per_mc: usize,
    /// WPQ entries per MC, 8-byte granularity (Table I: 64 → 512 B).
    pub wpq_entries: usize,
    /// Front-end buffer entries per core (aligned with the WPQ size).
    pub front_buffer_entries: usize,
    /// Store-buffer entries per core (Table I SQ: 56).
    pub store_buffer_entries: usize,
    /// Persist-path transit latency (Table I: 20 ns worst case).
    pub persist_path_latency: u64,
    /// Persist-path cycles per 8-byte entry (bandwidth gate; 4 GB/s →
    /// one entry per 2 ns → 4 cycles).
    pub persist_path_cycles_per_entry: u64,
    /// PM read latency (Table I: 175 ns).
    pub pm_read_latency: u64,
    /// PM write latency (Table I: 90 ns).
    pub pm_write_latency: u64,
    /// Channel occupancy per 8-byte PM write (write-bandwidth model).
    pub pm_write_occupancy: u64,
    /// L1D hit latency (Table I: 4 cycles).
    pub l1_latency: u64,
    /// L2 hit latency (Table I: 44 cycles).
    pub l2_latency: u64,
    /// DRAM-cache hit latency (DDR4-2400 row access ≈ 50 ns).
    pub dram_cache_latency: u64,
    /// L1D size in bytes (Table I: 64 KB/core).
    pub l1_bytes: usize,
    /// L1D associativity (Table I: 8).
    pub l1_ways: usize,
    /// L2 size in bytes (Table I: 16 MB shared; the model keeps the full
    /// tag array sparse, so the paper value is affordable).
    pub l2_bytes: usize,
    /// L2 associativity (Table I: 16).
    pub l2_ways: usize,
    /// Direct-mapped DRAM-cache capacity in bytes (Table I: 4 GB; the
    /// tag store is sparse).
    pub dram_cache_bytes: u64,
    /// One-way NoC latency for boundary broadcasts and ACKs between MCs
    /// (QPI-class interconnect).
    pub noc_latency: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Shared-L2 port occupancy per access (cycles); all cores contend.
    pub l2_occupancy: u64,
    /// DRAM-cache bus occupancy per line access (DDR4-2400 ≈ 64 B per
    /// 3.3 ns ≈ 6 cycles).
    pub dram_occupancy: u64,
    /// PM read-channel occupancy per line fetch (Optane-class read
    /// bandwidth).
    pub pm_read_occupancy: u64,
    /// Selected CXL device, if the persist path terminates in a CXL
    /// memory instead of the iMC-attached PM (§V-F6).
    pub cxl: Option<CxlDevice>,
}

impl MemConfig {
    /// The paper's Table I system.
    pub fn table1() -> MemConfig {
        MemConfig {
            num_mcs: 2,
            channels_per_mc: 2,
            wpq_entries: 64,
            front_buffer_entries: 64,
            store_buffer_entries: 56,
            persist_path_latency: ns(20),
            persist_path_cycles_per_entry: 4,
            pm_read_latency: ns(175),
            pm_write_latency: ns(90),
            // WPQ→DIMM issue rate. The ADR persistence domain includes
            // the DIMM's internal buffers, so a flush is durable once it
            // leaves the WPQ at DDR-T bus speed (~8 GB/s/channel → 8 B
            // per 1 ns), not at Optane media speed; the 90 ns media
            // latency applies to the write's completion depth, not the
            // channel issue rate.
            pm_write_occupancy: 2,
            l1_latency: 4,
            l2_latency: 44,
            dram_cache_latency: ns(50),
            l1_bytes: 64 * 1024,
            l1_ways: 8,
            l2_bytes: 16 * 1024 * 1024,
            l2_ways: 16,
            dram_cache_bytes: 4 << 30,
            noc_latency: 10, // 5 ns MC↔MC ACK hop (on-package link)
            line_bytes: 64,
            l2_occupancy: 1,
            dram_occupancy: 6,
            pm_read_occupancy: 20,
            cxl: None,
        }
    }

    /// Table I with the persist-path bandwidth set in GB/s (Fig. 15
    /// sensitivity: 4, 2, 1).
    pub fn with_persist_bandwidth_gbps(mut self, gbps: u64) -> MemConfig {
        assert!(gbps > 0, "persist-path bandwidth must be positive");
        // 8 bytes per entry: entry time = 8/gbps ns = 16/gbps cycles.
        self.persist_path_cycles_per_entry = (16 / gbps).max(1);
        self
    }

    /// Table I with a different WPQ size (Fig. 11: 64/128/256). The
    /// front-end buffer tracks the WPQ size, as in §IV-E.
    pub fn with_wpq_entries(mut self, entries: usize) -> MemConfig {
        assert!(entries >= 8, "WPQ must have at least 8 entries");
        self.wpq_entries = entries;
        self.front_buffer_entries = entries;
        self
    }

    /// Table I with the PM replaced by a CXL device (Fig. 17).
    pub fn with_cxl(mut self, device: CxlDevice) -> MemConfig {
        let (r, w) = device.latencies();
        self.pm_read_latency = r;
        self.pm_write_latency = w;
        self.pm_write_occupancy = device.write_occupancy();
        self.cxl = Some(device);
        self
    }

    /// Effective PM read latency (CXL-aware).
    pub fn read_latency(&self) -> u64 {
        self.pm_read_latency
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / (self.line_bytes as usize * self.l1_ways)
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> usize {
        self.l2_bytes / (self.line_bytes as usize * self.l2_ways)
    }

    /// The memory controller that owns `addr` (line-interleaved).
    ///
    /// Shift/mask when line size and MC count are powers of two (every
    /// shipped config: 64-byte lines across 2 MCs), division otherwise.
    pub fn mc_of(&self, addr: u64) -> usize {
        let mcs = self.num_mcs as u64;
        if self.line_bytes.is_power_of_two() && mcs.is_power_of_two() {
            ((addr >> self.line_bytes.trailing_zeros()) & (mcs - 1)) as usize
        } else {
            ((addr / self.line_bytes) % mcs) as usize
        }
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = MemConfig::table1();
        assert_eq!(c.num_mcs, 2);
        assert_eq!(c.wpq_entries, 64);
        assert_eq!(c.persist_path_latency, 40, "20 ns at 2 GHz");
        assert_eq!(c.pm_read_latency, 350, "175 ns");
        assert_eq!(c.pm_write_latency, 180, "90 ns");
        assert_eq!(c.l1_latency, 4);
        assert_eq!(c.l2_latency, 44);
        assert_eq!(c.l1_sets(), 128);
        assert_eq!(c.l2_sets(), 16384);
    }

    #[test]
    fn persist_bandwidth_scaling() {
        let c4 = MemConfig::table1().with_persist_bandwidth_gbps(4);
        let c2 = MemConfig::table1().with_persist_bandwidth_gbps(2);
        let c1 = MemConfig::table1().with_persist_bandwidth_gbps(1);
        assert_eq!(c4.persist_path_cycles_per_entry, 4);
        assert_eq!(c2.persist_path_cycles_per_entry, 8);
        assert_eq!(c1.persist_path_cycles_per_entry, 16);
    }

    #[test]
    fn wpq_size_tracks_front_buffer() {
        let c = MemConfig::table1().with_wpq_entries(256);
        assert_eq!(c.wpq_entries, 256);
        assert_eq!(c.front_buffer_entries, 256);
    }

    #[test]
    fn cxl_devices_follow_table3() {
        let (r, w) = CxlDevice::CxlI.latencies();
        assert_eq!((r, w), (316, 240));
        let c = MemConfig::table1().with_cxl(CxlDevice::CxlPmem);
        assert_eq!(c.pm_read_latency, 490, "245 ns");
        assert_eq!(c.pm_write_latency, 320, "160 ns");
        assert!(
            c.pm_write_occupancy > MemConfig::table1().pm_write_occupancy / 2,
            "PMem-class write bandwidth stays low"
        );
        // Faster devices persist faster.
        assert!(CxlDevice::CxlI.write_occupancy() < CxlDevice::CxlPmem.write_occupancy());
    }

    #[test]
    fn mc_interleaving_covers_all_mcs() {
        let c = MemConfig::table1();
        assert_eq!(c.mc_of(0), 0);
        assert_eq!(c.mc_of(64), 1);
        assert_eq!(c.mc_of(128), 0);
        // Same line → same MC.
        assert_eq!(c.mc_of(8), c.mc_of(56));
    }
}
