//! Persistent main memory (PM).
//!
//! The functional contents of PM are the ground truth that power-failure
//! recovery resumes from: **only WPQ flushes write here** (LightWSP
//! silently drops dirty LLC evictions, §IV-G, because every store also
//! travels the persist path), so the contents are always a
//! region-consistent prefix of the execution.
//!
//! Timing (read/write latency, per-channel write occupancy) lives in
//! [`crate::controller`]; this module is the durable state plus access
//! counters.

use lightwsp_ir::Memory;

/// Persistent memory: durable word contents plus access statistics.
#[derive(Clone, Debug, Default)]
pub struct PersistentMemory {
    data: Memory,
    reads: u64,
    writes: u64,
}

impl PersistentMemory {
    /// Empty (all-zero) persistent memory.
    pub fn new() -> PersistentMemory {
        PersistentMemory::default()
    }

    /// PM seeded with an initial image (e.g. the machine's initial
    /// checkpoint of every thread, written at "install time").
    pub fn with_image(image: Memory) -> PersistentMemory {
        PersistentMemory {
            data: image,
            reads: 0,
            writes: 0,
        }
    }

    /// Durable read of the word containing `addr`.
    pub fn read_word(&mut self, addr: u64) -> u64 {
        self.reads += 1;
        self.data.read_word(addr)
    }

    /// Durable read without bumping counters (recovery/diagnostics).
    pub fn peek_word(&self, addr: u64) -> u64 {
        self.data.read_word(addr)
    }

    /// Durable write of the word containing `addr` (WPQ flush or undo
    /// rollback only).
    pub fn write_word(&mut self, addr: u64, val: u64) {
        self.writes += 1;
        self.data.write_word(addr, val);
    }

    /// The durable contents (for consistency checking and recovery).
    pub fn contents(&self) -> &Memory {
        &self.data
    }

    /// Clones the durable contents (what survives a power failure).
    pub fn snapshot(&self) -> Memory {
        self.data.clone()
    }

    /// Total durable reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total durable writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_and_counters() {
        let mut pm = PersistentMemory::new();
        assert_eq!(pm.read_word(0x100), 0);
        pm.write_word(0x100, 7);
        assert_eq!(pm.read_word(0x100), 7);
        assert_eq!(pm.reads(), 2);
        assert_eq!(pm.writes(), 1);
    }

    #[test]
    fn with_image_seeds_contents() {
        let mut img = Memory::new();
        img.write_word(0x8, 42);
        let pm = PersistentMemory::with_image(img);
        assert_eq!(pm.peek_word(0x8), 42);
        assert_eq!(pm.reads(), 0, "peek does not count");
    }

    #[test]
    fn snapshot_is_independent() {
        let mut pm = PersistentMemory::new();
        pm.write_word(0x10, 1);
        let snap = pm.snapshot();
        pm.write_word(0x10, 2);
        assert_eq!(snap.read_word(0x10), 1);
        assert_eq!(pm.peek_word(0x10), 2);
    }
}
