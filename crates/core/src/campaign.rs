//! Parallel experiment campaigns.
//!
//! A [`Campaign`] fans a list of [`Job`]s — (workload, scheme, options)
//! triples — across scoped worker threads. Workers pull jobs from a
//! shared atomic cursor (dynamic self-scheduling, so a slow simulation
//! never leaves other workers idle), and two guarded caches are shared
//! by all workers:
//!
//! * a **compiled-program cache** keyed by (workload, instruction
//!   budget, instrumented?, compiler config) — a sweep like Fig. 11
//!   compiles each workload once per compiler configuration and every
//!   machine then shares the same [`Arc`]'d program;
//! * a **baseline-cycles cache** keyed by (workload, thread count,
//!   simulator config) — every slowdown normalisation reuses one
//!   baseline run per configuration, exactly like the serial
//!   [`Experiment`](crate::Experiment) but shared across schemes *and*
//!   across figures when one campaign drives the whole evaluation.
//!
//! **Determinism:** each job is an independent deterministic
//! simulation, results are written back by job index, and the caches
//! only ever deduplicate work whose output is bit-identical to an
//! uncached computation. `run_many` therefore returns byte-identical
//! results for any worker count, including 1 — the regression test in
//! `tests/` pins this against the serial `Experiment` path.
//!
//! Worker count: `LIGHTWSP_THREADS` env var if set, else
//! `std::thread::available_parallelism()`.

use crate::experiment::{ExperimentOptions, RunResult};
use lightwsp_compiler::instrument;
use lightwsp_compiler::prune::RecoveryRecipes;
use lightwsp_ir::fxhash::{fx_hash, FxHashMap};
use lightwsp_ir::Program;
use lightwsp_sim::{Completion, Machine, Scheme};
use lightwsp_store::{digest_debug, ResultStore, StoreKey};
use lightwsp_workloads::WorkloadSpec;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One unit of work: simulate `spec` under `scheme` with `opts`.
#[derive(Clone, Debug)]
pub struct Job {
    /// Experiment configuration for this job (sweeps vary it per job).
    pub opts: ExperimentOptions,
    /// The workload to run.
    pub spec: WorkloadSpec,
    /// The scheme to simulate.
    pub scheme: Scheme,
}

impl Job {
    /// Convenience constructor (clones the options and spec).
    pub fn new(opts: &ExperimentOptions, spec: &WorkloadSpec, scheme: Scheme) -> Job {
        Job {
            opts: opts.clone(),
            spec: spec.clone(),
            scheme,
        }
    }
}

/// A compilation shared between machines via `Arc` (see
/// [`Machine::new`]'s `impl Into<Arc<_>>` parameters).
#[derive(Clone)]
struct SharedCompile {
    program: Arc<Program>,
    recipes: Arc<RecoveryRecipes>,
}

/// Per-key once-cell: the outer map hands out the slot under a short
/// lock; the actual compile/simulate happens under the slot's own lock,
/// so two workers missing on *different* keys never serialise, and two
/// workers racing on the *same* key compute it once.
type Slot<T> = Arc<Mutex<Option<T>>>;

fn get_or_compute<T: Clone>(
    map: &Mutex<FxHashMap<u64, Slot<T>>>,
    key: u64,
    f: impl FnOnce() -> T,
) -> T {
    let slot = map.lock().unwrap().entry(key).or_default().clone();
    let mut guard = slot.lock().unwrap();
    if guard.is_none() {
        *guard = Some(f());
    }
    guard.clone().unwrap()
}

/// Parallel experiment runner with shared compile/baseline caches and
/// an optional persistent result store (see
/// [`attach_store`](Campaign::attach_store)).
pub struct Campaign {
    workers: usize,
    compiled: Mutex<FxHashMap<u64, Slot<SharedCompile>>>,
    baselines: Mutex<FxHashMap<u64, Slot<u64>>>,
    store: Option<ResultStore>,
    sim_served: AtomicU64,
    sim_computed: AtomicU64,
}

/// Point-in-time cache counters of one campaign (satellite stats for
/// `BENCH_*.json` meta blocks).
#[derive(Clone, Copy, Debug, Default)]
pub struct CampaignCacheStats {
    /// Simulation cells served from the attached store.
    pub served: u64,
    /// Simulation cells actually simulated (store miss or no store).
    pub simulated: u64,
    /// The attached store's own counters, if a store is attached.
    pub store: Option<lightwsp_store::CacheStats>,
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign::new()
    }
}

impl Campaign {
    /// A campaign sized by `LIGHTWSP_THREADS` (env) or the machine's
    /// available parallelism.
    pub fn new() -> Campaign {
        let workers = std::env::var("LIGHTWSP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Campaign::with_workers(workers)
    }

    /// A campaign with an explicit worker count (≥ 1).
    pub fn with_workers(workers: usize) -> Campaign {
        Campaign {
            workers: workers.max(1),
            compiled: Mutex::new(FxHashMap::default()),
            baselines: Mutex::new(FxHashMap::default()),
            store: None,
            sim_served: AtomicU64::new(0),
            sim_computed: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent result store: subsequent
    /// [`run_one`](Campaign::run_one)/[`run_many`](Campaign::run_many)
    /// calls are served from the store when a record exists for the
    /// job's `(workload, scheme, config-digest, code-digest)` key, and
    /// record their result (including the measured wall-clock) when
    /// not. Baselines flow through the same cache, so a warm re-run of
    /// an unchanged evaluation simulates nothing.
    pub fn attach_store(&mut self, store: ResultStore) {
        self.store = Some(store);
    }

    /// The attached result store, if any (bins reuse the handle for
    /// their own record families).
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Cache counters: cells served from the store vs simulated.
    pub fn cache_stats(&self) -> CampaignCacheStats {
        CampaignCacheStats {
            served: self.sim_served.load(Ordering::Relaxed),
            simulated: self.sim_computed.load(Ordering::Relaxed),
            store: self.store.as_ref().map(|s| s.stats()),
        }
    }

    /// The worker count jobs fan out over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Thread count a job simulates (options override, else the spec's).
    fn threads_for(job: &Job) -> usize {
        job.opts.threads.unwrap_or(job.spec.threads)
    }

    /// Fingerprint of everything a compilation depends on.
    fn compile_key(job: &Job) -> u64 {
        let instrumented = job.scheme.is_instrumented();
        fx_hash(&format!(
            "{:?}|{}|{}|{:?}",
            job.spec,
            job.opts.insts_per_thread,
            instrumented,
            // Uninstrumented schemes all run the original binary; don't
            // fragment their cache entry by compiler config.
            if instrumented {
                Some(&job.opts.compiler)
            } else {
                None
            },
        ))
    }

    /// Fingerprint of everything a baseline run depends on.
    fn baseline_key(job: &Job) -> u64 {
        fx_hash(&format!(
            "{:?}|{}|{}|{:?}",
            job.spec,
            job.opts.insts_per_thread,
            Self::threads_for(job),
            job.opts.sim,
        ))
    }

    fn compiled_for(&self, job: &Job) -> SharedCompile {
        get_or_compute(&self.compiled, Self::compile_key(job), || {
            let program = job
                .spec
                .clone()
                .scaled_to(job.opts.insts_per_thread)
                .generate();
            if job.scheme.is_instrumented() {
                let c = instrument(&program, &job.opts.compiler);
                SharedCompile {
                    program: Arc::new(c.program),
                    recipes: Arc::new(c.recipes),
                }
            } else {
                SharedCompile {
                    program: Arc::new(program),
                    recipes: Arc::new(RecoveryRecipes::default()),
                }
            }
        })
    }

    /// The store coordinate of one run record: the config digest
    /// covers everything [`simulate`](Campaign::simulate) consumes —
    /// spec, budget, thread count, simulator config, and (for
    /// instrumented schemes only, mirroring
    /// [`compile_key`](Campaign::compile_key)) the compiler config —
    /// so a knob change invalidates exactly the cells it affects.
    fn run_key(code: u64, job: &Job) -> StoreKey {
        let instrumented = job.scheme.is_instrumented();
        let config = digest_debug(&(
            &job.spec,
            job.opts.insts_per_thread,
            Self::threads_for(job),
            &job.opts.sim,
            instrumented.then_some(&job.opts.compiler),
        ));
        StoreKey::new("run", job.spec.name, job.scheme.name(), config, 0, code)
    }

    /// Serialises a run result (+ measured wall-clock) for the store.
    fn encode_run(r: &RunResult, wall_ms: f64) -> String {
        format!(
            "completion={} threads={} wall_ms={:016x}\n{}",
            match r.completion {
                Completion::Finished => "F",
                Completion::MaxCycles => "M",
            },
            r.threads,
            wall_ms.to_bits(),
            r.stats.encode_record(),
        )
    }

    /// Parses [`encode_run`](Campaign::encode_run) output back into a
    /// result for `job` (workload/scheme come from the job, matching
    /// the key the record was stored under).
    fn decode_run(text: &str, job: &Job) -> Result<(RunResult, f64), String> {
        let (head, stats_line) = text.split_once('\n').ok_or("run record missing stats")?;
        let mut completion = None;
        let mut threads = None;
        let mut wall_bits = None;
        for pair in head.split_whitespace() {
            match pair.split_once('=') {
                Some(("completion", "F")) => completion = Some(Completion::Finished),
                Some(("completion", "M")) => completion = Some(Completion::MaxCycles),
                Some(("threads", v)) => threads = v.parse().ok(),
                Some(("wall_ms", v)) => wall_bits = u64::from_str_radix(v, 16).ok(),
                _ => return Err(format!("bad run field {pair:?}")),
            }
        }
        Ok((
            RunResult {
                workload: job.spec.name,
                scheme: job.scheme,
                threads: threads.ok_or("missing threads")?,
                completion: completion.ok_or("missing completion")?,
                stats: lightwsp_sim::SimStats::decode_record(stats_line)?,
            },
            f64::from_bits(wall_bits.ok_or("missing wall_ms")?),
        ))
    }

    /// The uncached simulation path (same semantics as
    /// `Experiment::run`, but through the shared compile cache).
    fn simulate(&self, job: &Job) -> RunResult {
        let threads = Self::threads_for(job);
        let sc = self.compiled_for(job);
        let mut cfg = job.opts.sim.clone();
        cfg.scheme = job.scheme;
        cfg.num_cores = threads;
        let window = job.spec.working_set.next_power_of_two();
        let heap = lightwsp_ir::layout::HEAP_BASE;
        cfg.warm_dram = vec![(heap - 0x8000, heap + window * threads as u64)];
        let mut machine = Machine::new(sc.program, sc.recipes, cfg, threads);
        let completion = machine.run();
        RunResult {
            workload: job.spec.name,
            scheme: job.scheme,
            threads,
            completion,
            stats: machine.stats().clone(),
        }
    }

    /// Runs one job, serving it from the attached store when a record
    /// for its digest key exists.
    pub fn run_one(&self, job: &Job) -> RunResult {
        self.run_one_timed(job).0
    }

    /// Like [`run_one`](Campaign::run_one), also returning the job's
    /// wall-clock milliseconds: measured on a simulate, served verbatim
    /// from the record on a store hit (warm re-runs reproduce the cold
    /// run's benchmark records byte-for-byte).
    pub fn run_one_timed(&self, job: &Job) -> (RunResult, f64) {
        let Some(store) = &self.store else {
            let t0 = std::time::Instant::now();
            let r = self.simulate(job);
            self.sim_computed.fetch_add(1, Ordering::Relaxed);
            return (r, t0.elapsed().as_secs_f64() * 1e3);
        };
        let key = Self::run_key(store.code(), job);
        if let Some(raw) = store.get(&key) {
            if let Ok(hit) = Self::decode_run(&raw, job) {
                self.sim_served.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        let t0 = std::time::Instant::now();
        let r = self.simulate(job);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        store.put(key, Self::encode_run(&r, wall_ms));
        self.sim_computed.fetch_add(1, Ordering::Relaxed);
        (r, wall_ms)
    }

    /// Baseline cycles for a job's (workload, options), cached.
    pub fn baseline_cycles(&self, job: &Job) -> u64 {
        get_or_compute(&self.baselines, Self::baseline_key(job), || {
            let base_job = Job {
                scheme: Scheme::Baseline,
                ..job.clone()
            };
            self.run_one(&base_job).cycles().max(1)
        })
    }

    /// Runs every job, fanning across the worker pool; results are in
    /// job order regardless of scheduling.
    pub fn run_many(&self, jobs: &[Job]) -> Vec<RunResult> {
        self.map_jobs(jobs, |job| self.run_one(job))
    }

    /// Like [`run_many`](Campaign::run_many) but returns each job's
    /// slowdown versus its cached baseline alongside the run result.
    pub fn slowdown_many(&self, jobs: &[Job]) -> Vec<(f64, RunResult)> {
        self.map_jobs(jobs, |job| {
            let base = self.baseline_cycles(job) as f64;
            let r = self.run_one(job);
            (r.cycles() as f64 / base, r)
        })
    }

    /// Slowdowns only (the common figure shape).
    pub fn slowdowns(&self, jobs: &[Job]) -> Vec<f64> {
        self.slowdown_many(jobs)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Like [`run_many`](Campaign::run_many), with each job's
    /// wall-clock milliseconds (measured inside the worker) attached —
    /// the machine-readable benchmark record `all_figures` emits.
    pub fn run_many_timed(&self, jobs: &[Job]) -> Vec<(RunResult, f64)> {
        self.map_jobs(jobs, |job| self.run_one_timed(job))
    }

    fn map_jobs<T, F>(&self, jobs: &[Job], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Job) -> T + Sync,
    {
        self.map_parallel(jobs, |job, _| f(job))
    }

    /// Fans `f` over arbitrary `items` on the campaign's worker pool
    /// (dynamic self-scheduling, results in item order) — the engine
    /// behind [`run_many`](Campaign::run_many), exposed so other sweeps
    /// (e.g. the crash auditor's per-crash-point fan-out) reuse the same
    /// pool and `LIGHTWSP_THREADS` sizing. `f` receives each item and
    /// its index.
    pub fn map_parallel<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I, usize) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, it)| f(it, i)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i], i);
                    results.lock().unwrap()[i] = Some(r);
                });
            }
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|o| o.expect("every item slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_workloads::workload;

    fn jobs3() -> Vec<Job> {
        let opts = ExperimentOptions::quick();
        ["bzip2", "hmmer", "xz"]
            .iter()
            .flat_map(|n| {
                let w = workload(n).unwrap();
                [
                    Job::new(&opts, &w, Scheme::LightWsp),
                    Job::new(&opts, &w, Scheme::Ppa),
                ]
            })
            .collect()
    }

    #[test]
    fn results_are_in_job_order() {
        let c = Campaign::with_workers(4);
        let jobs = jobs3();
        let rs = c.run_many(&jobs);
        assert_eq!(rs.len(), jobs.len());
        for (j, r) in jobs.iter().zip(&rs) {
            assert_eq!(j.spec.name, r.workload);
            assert_eq!(j.scheme, r.scheme);
        }
    }

    #[test]
    fn compile_cache_is_shared_across_schemes() {
        // Two instrumented schemes with the same compiler config share
        // one compilation; this is observational (timing-free): both
        // runs must succeed and agree with fresh-compile runs.
        let c = Campaign::with_workers(2);
        let opts = ExperimentOptions::quick();
        let w = workload("bzip2").unwrap();
        let jobs = vec![
            Job::new(&opts, &w, Scheme::LightWsp),
            Job::new(&opts, &w, Scheme::Capri),
        ];
        let rs = c.run_many(&jobs);
        let mut exp = crate::Experiment::new(opts);
        let a = exp.run(&w, Scheme::LightWsp);
        let b = exp.run(&w, Scheme::Capri);
        assert_eq!(rs[0].stats.cycles, a.stats.cycles);
        assert_eq!(rs[1].stats.cycles, b.stats.cycles);
    }

    #[test]
    fn store_serves_warm_runs_and_knob_change_invalidates_exactly() {
        let store = ResultStore::in_memory_with(0xC0DE);
        let opts = ExperimentOptions::quick();
        let w = workload("bzip2").unwrap();
        let jobs = vec![
            Job::new(&opts, &w, Scheme::LightWsp), // instrumented
            Job::new(&opts, &w, Scheme::Baseline), // uninstrumented
        ];

        let mut cold = Campaign::with_workers(2);
        cold.attach_store(store.clone());
        let cold_rs = cold.run_many_timed(&jobs);
        let cs = cold.cache_stats();
        assert_eq!((cs.served, cs.simulated), (0, 2));

        // Warm: same config digest — both cells served, results and
        // wall-clocks byte-identical to the cold run's records.
        let mut warm = Campaign::with_workers(2);
        warm.attach_store(store.clone());
        let warm_rs = warm.run_many_timed(&jobs);
        let ws = warm.cache_stats();
        assert_eq!((ws.served, ws.simulated), (2, 0));
        for ((cr, cw), (wr, ww)) in cold_rs.iter().zip(&warm_rs) {
            assert_eq!(cr.stats, wr.stats);
            assert_eq!(cr.completion, wr.completion);
            assert_eq!(cw.to_bits(), ww.to_bits());
        }

        // A compiler-knob change invalidates exactly the instrumented
        // cell; the uninstrumented baseline is still served.
        let mut tweaked_opts = opts.clone();
        tweaked_opts.compiler.store_threshold = tweaked_opts.compiler.store_threshold.max(2) * 2;
        let tweaked = vec![
            Job::new(&tweaked_opts, &w, Scheme::LightWsp),
            Job::new(&tweaked_opts, &w, Scheme::Baseline),
        ];
        let mut knob = Campaign::with_workers(2);
        knob.attach_store(store.clone());
        let _ = knob.run_many(&tweaked);
        let ks = knob.cache_stats();
        assert_eq!((ks.served, ks.simulated), (1, 1));

        // A code-digest change invalidates everything.
        let mut other_code = Campaign::with_workers(2);
        other_code.attach_store(ResultStore::in_memory_with(0xBEEF));
        // (fresh in-memory store: models the same directory under a
        // different code digest — every key differs in `code`)
        let _ = other_code.run_many(&jobs);
        let os = other_code.cache_stats();
        assert_eq!((os.served, os.simulated), (0, 2));
    }

    #[test]
    fn baseline_cache_matches_experiment() {
        let c = Campaign::with_workers(2);
        let opts = ExperimentOptions::quick();
        let w = workload("xz").unwrap();
        let job = Job::new(&opts, &w, Scheme::LightWsp);
        let mut exp = crate::Experiment::new(opts);
        assert_eq!(c.baseline_cycles(&job), exp.baseline_cycles(&w));
    }
}
