//! Parallel experiment campaigns.
//!
//! A [`Campaign`] fans a list of [`Job`]s — (workload, scheme, options)
//! triples — across scoped worker threads. Workers pull jobs from a
//! shared atomic cursor (dynamic self-scheduling, so a slow simulation
//! never leaves other workers idle), and two guarded caches are shared
//! by all workers:
//!
//! * a **compiled-program cache** keyed by (workload, instruction
//!   budget, instrumented?, compiler config) — a sweep like Fig. 11
//!   compiles each workload once per compiler configuration and every
//!   machine then shares the same [`Arc`]'d program;
//! * a **baseline-cycles cache** keyed by (workload, thread count,
//!   simulator config) — every slowdown normalisation reuses one
//!   baseline run per configuration, exactly like the serial
//!   [`Experiment`](crate::Experiment) but shared across schemes *and*
//!   across figures when one campaign drives the whole evaluation.
//!
//! **Determinism:** each job is an independent deterministic
//! simulation, results are written back by job index, and the caches
//! only ever deduplicate work whose output is bit-identical to an
//! uncached computation. `run_many` therefore returns byte-identical
//! results for any worker count, including 1 — the regression test in
//! `tests/` pins this against the serial `Experiment` path.
//!
//! Worker count: `LIGHTWSP_THREADS` env var if set, else
//! `std::thread::available_parallelism()`.

use crate::experiment::{ExperimentOptions, RunResult};
use lightwsp_compiler::instrument;
use lightwsp_compiler::prune::RecoveryRecipes;
use lightwsp_ir::fxhash::{fx_hash, FxHashMap};
use lightwsp_ir::Program;
use lightwsp_sim::{Machine, Scheme};
use lightwsp_workloads::WorkloadSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One unit of work: simulate `spec` under `scheme` with `opts`.
#[derive(Clone, Debug)]
pub struct Job {
    /// Experiment configuration for this job (sweeps vary it per job).
    pub opts: ExperimentOptions,
    /// The workload to run.
    pub spec: WorkloadSpec,
    /// The scheme to simulate.
    pub scheme: Scheme,
}

impl Job {
    /// Convenience constructor (clones the options and spec).
    pub fn new(opts: &ExperimentOptions, spec: &WorkloadSpec, scheme: Scheme) -> Job {
        Job {
            opts: opts.clone(),
            spec: spec.clone(),
            scheme,
        }
    }
}

/// A compilation shared between machines via `Arc` (see
/// [`Machine::new`]'s `impl Into<Arc<_>>` parameters).
#[derive(Clone)]
struct SharedCompile {
    program: Arc<Program>,
    recipes: Arc<RecoveryRecipes>,
}

/// Per-key once-cell: the outer map hands out the slot under a short
/// lock; the actual compile/simulate happens under the slot's own lock,
/// so two workers missing on *different* keys never serialise, and two
/// workers racing on the *same* key compute it once.
type Slot<T> = Arc<Mutex<Option<T>>>;

fn get_or_compute<T: Clone>(
    map: &Mutex<FxHashMap<u64, Slot<T>>>,
    key: u64,
    f: impl FnOnce() -> T,
) -> T {
    let slot = map.lock().unwrap().entry(key).or_default().clone();
    let mut guard = slot.lock().unwrap();
    if guard.is_none() {
        *guard = Some(f());
    }
    guard.clone().unwrap()
}

/// Parallel experiment runner with shared compile/baseline caches.
pub struct Campaign {
    workers: usize,
    compiled: Mutex<FxHashMap<u64, Slot<SharedCompile>>>,
    baselines: Mutex<FxHashMap<u64, Slot<u64>>>,
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign::new()
    }
}

impl Campaign {
    /// A campaign sized by `LIGHTWSP_THREADS` (env) or the machine's
    /// available parallelism.
    pub fn new() -> Campaign {
        let workers = std::env::var("LIGHTWSP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Campaign::with_workers(workers)
    }

    /// A campaign with an explicit worker count (≥ 1).
    pub fn with_workers(workers: usize) -> Campaign {
        Campaign {
            workers: workers.max(1),
            compiled: Mutex::new(FxHashMap::default()),
            baselines: Mutex::new(FxHashMap::default()),
        }
    }

    /// The worker count jobs fan out over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Thread count a job simulates (options override, else the spec's).
    fn threads_for(job: &Job) -> usize {
        job.opts.threads.unwrap_or(job.spec.threads)
    }

    /// Fingerprint of everything a compilation depends on.
    fn compile_key(job: &Job) -> u64 {
        let instrumented = job.scheme.is_instrumented();
        fx_hash(&format!(
            "{:?}|{}|{}|{:?}",
            job.spec,
            job.opts.insts_per_thread,
            instrumented,
            // Uninstrumented schemes all run the original binary; don't
            // fragment their cache entry by compiler config.
            if instrumented {
                Some(&job.opts.compiler)
            } else {
                None
            },
        ))
    }

    /// Fingerprint of everything a baseline run depends on.
    fn baseline_key(job: &Job) -> u64 {
        fx_hash(&format!(
            "{:?}|{}|{}|{:?}",
            job.spec,
            job.opts.insts_per_thread,
            Self::threads_for(job),
            job.opts.sim,
        ))
    }

    fn compiled_for(&self, job: &Job) -> SharedCompile {
        get_or_compute(&self.compiled, Self::compile_key(job), || {
            let program = job
                .spec
                .clone()
                .scaled_to(job.opts.insts_per_thread)
                .generate();
            if job.scheme.is_instrumented() {
                let c = instrument(&program, &job.opts.compiler);
                SharedCompile {
                    program: Arc::new(c.program),
                    recipes: Arc::new(c.recipes),
                }
            } else {
                SharedCompile {
                    program: Arc::new(program),
                    recipes: Arc::new(RecoveryRecipes::default()),
                }
            }
        })
    }

    /// Runs one job (same semantics as `Experiment::run`, but through
    /// the shared compile cache).
    pub fn run_one(&self, job: &Job) -> RunResult {
        let threads = Self::threads_for(job);
        let sc = self.compiled_for(job);
        let mut cfg = job.opts.sim.clone();
        cfg.scheme = job.scheme;
        cfg.num_cores = threads;
        let window = job.spec.working_set.next_power_of_two();
        let heap = lightwsp_ir::layout::HEAP_BASE;
        cfg.warm_dram = vec![(heap - 0x8000, heap + window * threads as u64)];
        let mut machine = Machine::new(sc.program, sc.recipes, cfg, threads);
        let completion = machine.run();
        RunResult {
            workload: job.spec.name,
            scheme: job.scheme,
            threads,
            completion,
            stats: machine.stats().clone(),
        }
    }

    /// Baseline cycles for a job's (workload, options), cached.
    pub fn baseline_cycles(&self, job: &Job) -> u64 {
        get_or_compute(&self.baselines, Self::baseline_key(job), || {
            let base_job = Job {
                scheme: Scheme::Baseline,
                ..job.clone()
            };
            self.run_one(&base_job).cycles().max(1)
        })
    }

    /// Runs every job, fanning across the worker pool; results are in
    /// job order regardless of scheduling.
    pub fn run_many(&self, jobs: &[Job]) -> Vec<RunResult> {
        self.map_jobs(jobs, |job| self.run_one(job))
    }

    /// Like [`run_many`](Campaign::run_many) but returns each job's
    /// slowdown versus its cached baseline alongside the run result.
    pub fn slowdown_many(&self, jobs: &[Job]) -> Vec<(f64, RunResult)> {
        self.map_jobs(jobs, |job| {
            let base = self.baseline_cycles(job) as f64;
            let r = self.run_one(job);
            (r.cycles() as f64 / base, r)
        })
    }

    /// Slowdowns only (the common figure shape).
    pub fn slowdowns(&self, jobs: &[Job]) -> Vec<f64> {
        self.slowdown_many(jobs)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Like [`run_many`](Campaign::run_many), with each job's
    /// wall-clock milliseconds (measured inside the worker) attached —
    /// the machine-readable benchmark record `all_figures` emits.
    pub fn run_many_timed(&self, jobs: &[Job]) -> Vec<(RunResult, f64)> {
        self.map_jobs(jobs, |job| {
            let t0 = std::time::Instant::now();
            let r = self.run_one(job);
            (r, t0.elapsed().as_secs_f64() * 1e3)
        })
    }

    fn map_jobs<T, F>(&self, jobs: &[Job], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Job) -> T + Sync,
    {
        self.map_parallel(jobs, |job, _| f(job))
    }

    /// Fans `f` over arbitrary `items` on the campaign's worker pool
    /// (dynamic self-scheduling, results in item order) — the engine
    /// behind [`run_many`](Campaign::run_many), exposed so other sweeps
    /// (e.g. the crash auditor's per-crash-point fan-out) reuse the same
    /// pool and `LIGHTWSP_THREADS` sizing. `f` receives each item and
    /// its index.
    pub fn map_parallel<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I, usize) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, it)| f(it, i)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i], i);
                    results.lock().unwrap()[i] = Some(r);
                });
            }
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|o| o.expect("every item slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_workloads::workload;

    fn jobs3() -> Vec<Job> {
        let opts = ExperimentOptions::quick();
        ["bzip2", "hmmer", "xz"]
            .iter()
            .flat_map(|n| {
                let w = workload(n).unwrap();
                [
                    Job::new(&opts, &w, Scheme::LightWsp),
                    Job::new(&opts, &w, Scheme::Ppa),
                ]
            })
            .collect()
    }

    #[test]
    fn results_are_in_job_order() {
        let c = Campaign::with_workers(4);
        let jobs = jobs3();
        let rs = c.run_many(&jobs);
        assert_eq!(rs.len(), jobs.len());
        for (j, r) in jobs.iter().zip(&rs) {
            assert_eq!(j.spec.name, r.workload);
            assert_eq!(j.scheme, r.scheme);
        }
    }

    #[test]
    fn compile_cache_is_shared_across_schemes() {
        // Two instrumented schemes with the same compiler config share
        // one compilation; this is observational (timing-free): both
        // runs must succeed and agree with fresh-compile runs.
        let c = Campaign::with_workers(2);
        let opts = ExperimentOptions::quick();
        let w = workload("bzip2").unwrap();
        let jobs = vec![
            Job::new(&opts, &w, Scheme::LightWsp),
            Job::new(&opts, &w, Scheme::Capri),
        ];
        let rs = c.run_many(&jobs);
        let mut exp = crate::Experiment::new(opts);
        let a = exp.run(&w, Scheme::LightWsp);
        let b = exp.run(&w, Scheme::Capri);
        assert_eq!(rs[0].stats.cycles, a.stats.cycles);
        assert_eq!(rs[1].stats.cycles, b.stats.cycles);
    }

    #[test]
    fn baseline_cache_matches_experiment() {
        let c = Campaign::with_workers(2);
        let opts = ExperimentOptions::quick();
        let w = workload("xz").unwrap();
        let job = Job::new(&opts, &w, Scheme::LightWsp);
        let mut exp = crate::Experiment::new(opts);
        assert_eq!(c.baseline_cycles(&job), exp.baseline_cycles(&w));
    }
}
