//! Campaign-parallel driver for the LRPO model oracle
//! ([`lightwsp_model`]): litmus sweeps, seeded fuzz sweeps, and the
//! gating-mutant kill matrix, fanned over [`Campaign::map_parallel`].
//!
//! The per-case work (trace, golden, per-point capture, model check)
//! is embarrassingly parallel — cases share nothing — so the sweep
//! scales with `LIGHTWSP_THREADS` exactly like the experiment harness.

use crate::cache::{
    digest_debug, memo_record, memo_value, CaseRecord, MutantKillRecord, SweepRecord,
};
use crate::campaign::Campaign;
use lightwsp_compiler::Compiled;
use lightwsp_model::harness::{run_case, CaseOutcome, CaseSpec, EnumMode, PointPolicy};
use lightwsp_model::{gen_case_biased, litmus_suite, ExtractError, FuzzBias, ModelMutant};
use lightwsp_sim::{GatingMutant, StepMode, SweepMode};
use lightwsp_store::{ResultStore, StoreKey};

/// Aggregate of one sweep (litmus suite or a fuzz batch).
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Cases run.
    pub cases: usize,
    /// Crash points requested across all cases.
    pub points: usize,
    /// Points that actually interrupted a run.
    pub audited: usize,
    /// Sum of admitted-set sizes (saturating).
    pub admitted: u128,
    /// Sum of exact admitted-set sizes (0 for over-approximate sweeps).
    pub exact_admitted: u128,
    /// Cases whose exact set was fully witnessed violation-free — the
    /// cases that pin the reachable set and arm mutant-model kills.
    pub exact_complete: usize,
    /// Distinct canonical images witnessed, summed over cases.
    pub witnessed: usize,
    /// Witnessed images realising a cross-thread prefix combination —
    /// executions inside the documented over-approximation envelope.
    pub witnessed_cross_thread: usize,
    /// Images outside the admitted set (must be empty for a clean run).
    pub model_violations: Vec<String>,
    /// Structural invariant violations (must be empty for a clean run).
    pub structural_violations: Vec<String>,
    /// Cases outside the model's extraction domain (generator bug if
    /// non-empty: both litmus and fuzz construct in-domain programs).
    pub extract_errors: Vec<String>,
}

impl SweepReport {
    fn absorb(&mut self, out: &CaseOutcome) {
        self.cases += 1;
        self.points += out.points;
        self.audited += out.audited;
        self.admitted = self.admitted.saturating_add(out.admitted);
        if let Some(e) = out.exact_admitted {
            self.exact_admitted = self.exact_admitted.saturating_add(e);
            if out.exact_fully_witnessed() {
                self.exact_complete += 1;
            }
        }
        self.witnessed += out.witnessed;
        self.witnessed_cross_thread += out.witnessed_cross_thread;
        self.model_violations.extend(out.model_violations.clone());
        self.structural_violations
            .extend(out.structural_violations.clone());
    }

    /// Total violations of either kind.
    pub fn violations(&self) -> usize {
        self.model_violations.len() + self.structural_violations.len()
    }

    /// Unwitnessed admitted images across the sweep (the documented
    /// over-approximation plus point-sampling gaps).
    pub fn overapprox(&self) -> u128 {
        self.admitted.saturating_sub(self.witnessed as u128)
    }
}

/// Runs the full litmus suite under `step_mode`/`sweep_mode` with a
/// per-cycle exhaustive crash sweep, in parallel, in the requested
/// enumeration mode. Returns the aggregate plus the per-litmus
/// outcomes (in suite order).
pub fn litmus_sweep(
    campaign: &Campaign,
    step_mode: StepMode,
    sweep_mode: SweepMode,
    enum_mode: EnumMode,
) -> (SweepReport, Vec<CaseOutcome>) {
    let suite = litmus_suite();
    let outcomes = campaign.map_parallel(&suite, |l, _| {
        let spec = CaseSpec {
            name: l.name.to_string(),
            threads: l.threads,
            num_mcs: l.num_mcs,
            wpq_entries: l.wpq_entries,
            step_mode,
            sweep_mode,
            enum_mode,
            mutant: None,
            policy: PointPolicy::Exhaustive { max_horizon: 4096 },
            seed: 0x11735,
        };
        run_case(&l.compiled, &spec)
    });
    let mut report = SweepReport::default();
    let mut per_case = Vec::with_capacity(outcomes.len());
    for (l, res) in suite.iter().zip(outcomes) {
        match res {
            Ok(out) => {
                report.absorb(&out);
                per_case.push(out);
            }
            Err(e) => report.extract_errors.push(format!("{}: {e}", l.name)),
        }
    }
    (report, per_case)
}

/// Runs `count` generated programs from the stream rooted at `seed`
/// under `step_mode`/`sweep_mode`, each audited at mechanism-derived
/// plus seeded crash points, in parallel. `bias` selects the generator
/// distribution and `enum_mode` the admitted-set enumeration.
pub fn fuzz_sweep(
    campaign: &Campaign,
    seed: u64,
    count: u64,
    step_mode: StepMode,
    sweep_mode: SweepMode,
    enum_mode: EnumMode,
    bias: FuzzBias,
) -> SweepReport {
    let indices: Vec<u64> = (0..count).collect();
    let outcomes = campaign.map_parallel(&indices, |&idx, _| {
        let case = gen_case_biased(seed, idx, bias);
        let spec = CaseSpec {
            name: format!("fuzz-{}-{seed:#x}-{idx}", bias.name()),
            threads: case.threads,
            num_mcs: case.num_mcs,
            wpq_entries: case.wpq_entries,
            step_mode,
            sweep_mode,
            enum_mode,
            mutant: None,
            policy: PointPolicy::Derived {
                cap_per_kind: 3,
                seeded: 4,
            },
            seed: seed ^ idx,
        };
        (spec.name.clone(), run_case(&case.compiled, &spec))
    });
    let mut report = SweepReport::default();
    for (name, res) in outcomes {
        match res {
            Ok(out) => report.absorb(&out),
            Err(e) => report.extract_errors.push(format!("{name}: {e}")),
        }
    }
    report
}

/// All gating mutants the kill matrix must cover.
pub const ALL_MUTANTS: [GatingMutant; 3] = [
    GatingMutant::FlushUnacked,
    GatingMutant::AnyMcBoundary,
    GatingMutant::FirstMcBoundary,
];

/// Stable display name for a mutant.
pub fn mutant_name(m: GatingMutant) -> &'static str {
    match m {
        GatingMutant::FlushUnacked => "flush-unacked",
        GatingMutant::AnyMcBoundary => "any-mc-boundary",
        GatingMutant::FirstMcBoundary => "first-mc-boundary",
    }
}

/// One mutant's fate under the litmus suite.
#[derive(Clone, Debug)]
pub struct MutantKill {
    /// The mutant.
    pub mutant: GatingMutant,
    /// `(litmus name, detector)` pairs that flagged it, where detector
    /// is `"model"` or `"structural"`.
    pub killed_by: Vec<(String, &'static str)>,
}

impl MutantKill {
    /// True if at least one litmus killed the mutant.
    pub fn killed(&self) -> bool {
        !self.killed_by.is_empty()
    }
}

/// Arms each mutant in turn and runs the whole litmus suite against it
/// (both detectors active), in parallel over `(mutant, litmus)` pairs.
/// Gating mutants perturb the simulated hardware, so `enum_mode`
/// chooses how tight the model-side detector is.
pub fn mutant_kill_matrix(
    campaign: &Campaign,
    step_mode: StepMode,
    sweep_mode: SweepMode,
    enum_mode: EnumMode,
) -> Vec<MutantKill> {
    let suite = litmus_suite();
    let pairs: Vec<(GatingMutant, usize)> = ALL_MUTANTS
        .iter()
        .flat_map(|&m| (0..suite.len()).map(move |i| (m, i)))
        .collect();
    let results = campaign.map_parallel(&pairs, |&(mutant, i), _| {
        let l = &suite[i];
        let spec = CaseSpec {
            name: format!("{}+{}", l.name, mutant_name(mutant)),
            threads: l.threads,
            num_mcs: l.num_mcs,
            wpq_entries: l.wpq_entries,
            step_mode,
            sweep_mode,
            enum_mode,
            mutant: Some(mutant),
            policy: PointPolicy::Exhaustive { max_horizon: 4096 },
            seed: 0xDEAD_5EED,
        };
        (mutant, i, run_case(&l.compiled, &spec))
    });
    ALL_MUTANTS
        .iter()
        .map(|&m| {
            let mut killed_by = Vec::new();
            for (mutant, i, res) in &results {
                if *mutant != m {
                    continue;
                }
                if let Ok(out) = res {
                    if !out.model_violations.is_empty() {
                        killed_by.push((suite[*i].name.to_string(), "model"));
                    }
                    if !out.structural_violations.is_empty() {
                        killed_by.push((suite[*i].name.to_string(), "structural"));
                    }
                }
            }
            MutantKill {
                mutant: m,
                killed_by,
            }
        })
        .collect()
}

/// Aggregates the per-case mutant-*model* verdicts of an exact-mode
/// litmus sweep into a kill matrix: one row per [`ModelMutant`], listing
/// the litmuses whose fully-witnessed sweeps falsified it (tagged with
/// the mutant's admitted-set size there). Pure aggregation — the
/// verdicts were computed by `run_case`, so this costs no simulation.
pub fn model_mutant_kill_matrix(outcomes: &[CaseRecord]) -> Vec<MutantKillRecord> {
    ModelMutant::ALL
        .iter()
        .map(|m| {
            let mut killed_by = Vec::new();
            for out in outcomes {
                for row in &out.model_mutants {
                    if row.name == m.name() && row.killed {
                        let count = row.count.map_or("-".to_string(), |c| c.to_string());
                        killed_by.push(format!("{}/{count}", out.name));
                    }
                }
            }
            MutantKillRecord {
                mutant: m.name().to_string(),
                killed_by,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Store-cached entry points
// ---------------------------------------------------------------------
//
// All four wrappers follow the same shape: build a [`StoreKey`] from
// the sweep's identity plus a digest of every input that shapes the
// result, serve the stored record on a hit, otherwise run the sweep
// and record it. The boolean is `true` on a cache hit; errors are
// never cached.

/// Store-cached [`run_case`] for a single model-oracle case.
///
/// `case_digest` must cover how `compiled` was constructed (program
/// identity plus compiler config) — `Compiled` carries no `Debug`
/// rendering, so the caller owns that part of the key. The spec is
/// digested here.
///
/// # Errors
///
/// Propagates [`ExtractError`] for out-of-domain programs.
pub fn run_case_cached(
    store: Option<&ResultStore>,
    compiled: &Compiled,
    spec: &CaseSpec,
    case_digest: u64,
) -> Result<(CaseRecord, bool), ExtractError> {
    let key = StoreKey::new(
        "case",
        &spec.name,
        format!("{:?}/{:?}", spec.step_mode, spec.sweep_mode),
        digest_debug(&(case_digest, spec)),
        0,
        store.map_or(0, ResultStore::code),
    );
    memo_record(store, &key, CaseRecord::decode, CaseRecord::encode, || {
        run_case(compiled, spec).map(|out| (&out).into())
    })
}

/// Store-cached [`litmus_sweep`]: one record holds the aggregate plus
/// every per-litmus outcome, keyed by the mode pair. The litmus suite
/// itself is source code, so its identity rides on the code digest.
pub fn litmus_sweep_cached(
    store: Option<&ResultStore>,
    campaign: &Campaign,
    step_mode: StepMode,
    sweep_mode: SweepMode,
    enum_mode: EnumMode,
) -> (SweepRecord, bool) {
    let key = StoreKey::new(
        "sweeprep",
        "litmus-suite",
        format!("{step_mode:?}/{sweep_mode:?}/{}", enum_mode.name()),
        digest_debug(&(step_mode, sweep_mode, enum_mode)),
        0,
        store.map_or(0, ResultStore::code),
    );
    memo_value(
        store,
        &key,
        SweepRecord::decode,
        SweepRecord::encode,
        || {
            let (rep, outcomes) = litmus_sweep(campaign, step_mode, sweep_mode, enum_mode);
            SweepRecord::new(&rep, &outcomes)
        },
    )
}

/// Store-cached [`fuzz_sweep`], keyed by the stream seed, case count
/// and mode pair. The record carries no per-case outcomes (the fuzz
/// aggregate is all the bins read).
#[allow(clippy::too_many_arguments)]
pub fn fuzz_sweep_cached(
    store: Option<&ResultStore>,
    campaign: &Campaign,
    seed: u64,
    count: u64,
    step_mode: StepMode,
    sweep_mode: SweepMode,
    enum_mode: EnumMode,
    bias: FuzzBias,
) -> (SweepRecord, bool) {
    let key = StoreKey::new(
        "sweeprep",
        format!("fuzz-{}", bias.name()),
        format!("{step_mode:?}/{sweep_mode:?}/{}", enum_mode.name()),
        digest_debug(&(seed, count, step_mode, sweep_mode, enum_mode, bias)),
        seed,
        store.map_or(0, ResultStore::code),
    );
    memo_value(
        store,
        &key,
        SweepRecord::decode,
        SweepRecord::encode,
        || {
            SweepRecord::new(
                &fuzz_sweep(
                    campaign, seed, count, step_mode, sweep_mode, enum_mode, bias,
                ),
                &[],
            )
        },
    )
}

/// Store-cached [`mutant_kill_matrix`]: one record holds the whole
/// matrix for a mode pair.
pub fn mutant_kill_matrix_cached(
    store: Option<&ResultStore>,
    campaign: &Campaign,
    step_mode: StepMode,
    sweep_mode: SweepMode,
    enum_mode: EnumMode,
) -> (Vec<MutantKillRecord>, bool) {
    let key = StoreKey::new(
        "killmatrix",
        "litmus-suite",
        format!("{step_mode:?}/{sweep_mode:?}/{}", enum_mode.name()),
        digest_debug(&(step_mode, sweep_mode, enum_mode)),
        0,
        store.map_or(0, ResultStore::code),
    );
    memo_value(
        store,
        &key,
        MutantKillRecord::decode_list,
        |rows| MutantKillRecord::encode_list(rows),
        || {
            mutant_kill_matrix(campaign, step_mode, sweep_mode, enum_mode)
                .iter()
                .map(MutantKillRecord::from)
                .collect()
        },
    )
}
