//! Digest-keyed result caching on top of [`lightwsp_store`].
//!
//! The store holds opaque string payloads; this module owns the codecs
//! that turn the evaluation's result types into those payloads and
//! back, plus the [`memo_record`] discipline every cached computation
//! follows:
//!
//! * **errors are never cached** — a failed golden run or extraction is
//!   recomputed every time;
//! * **corrupt records fall back to recompute** — a record that fails
//!   to decode (e.g. written by a future format) is treated as a miss
//!   and overwritten, never trusted;
//! * **wall-clock values are part of the record** — a warm run serves
//!   the cold run's measured timings verbatim, which is what makes
//!   `BENCH_*.json` byte-identical across warm re-runs.
//!
//! Record families (the `kind` field of [`StoreKey`]): `"run"` (whole
//! simulation runs, written by [`Campaign`](crate::Campaign)),
//! `"crashcell"` ([`CrashCellRecord`]), `"dscell"` ([`DsCellRecord`]),
//! `"case"` ([`CaseRecord`]), `"sweeprep"` ([`SweepRecord`]),
//! `"killmatrix"` ([`MutantKillRecord`] lists), `"section"` /
//! `"metawall"` ([`TextRecord`], used by the `all_figures` harness for
//! memoized timing sections and meta wall-clock fields).

use crate::dsaudit::DsAuditReport;
use lightwsp_model::harness::CaseOutcome;
use lightwsp_sim::CrashAuditReport;
use lightwsp_store::{ResultStore, StoreKey};
use std::collections::BTreeMap;

pub use lightwsp_store::{code_digest, code_digest_from_env, digest_debug, digest_str};

/// Escapes whitespace and backslashes, so escaped strings are safe
/// both as one-line list items and as `kv_line` values (which split on
/// whitespace).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            ' ' => out.push_str("\\s"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`].
fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('s') => out.push(' '),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Renders `name=value` pairs as one line (values must not contain
/// whitespace; strings go through [`esc`] plus their own field rules).
fn kv_line(pairs: &[(&str, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses a [`kv_line`].
fn parse_kv(line: &str) -> Result<BTreeMap<&str, &str>, String> {
    let mut map = BTreeMap::new();
    for pair in line.split_whitespace() {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed kv pair {pair:?}"))?;
        map.insert(k, v);
    }
    Ok(map)
}

fn kv_get<T: std::str::FromStr>(map: &BTreeMap<&str, &str>, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    map.get(name)
        .ok_or_else(|| format!("missing field {name}"))?
        .parse()
        .map_err(|e| format!("field {name}: {e}"))
}

/// Encodes an `f64` as its bit pattern (decoding is bit-exact; stored
/// wall-clocks must reproduce the cold run's rendering digit-for-digit).
pub fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_bits`].
pub fn f64_from_bits(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

/// The caching discipline: serve `key` from `store` when present and
/// decodable, otherwise compute, record on success, and return. The
/// boolean is `true` when the result came from the store. With no
/// store, always computes.
///
/// # Errors
///
/// Propagates `compute`'s error (errors are never cached).
pub fn memo_record<T, E>(
    store: Option<&ResultStore>,
    key: &StoreKey,
    decode: impl Fn(&str) -> Result<T, String>,
    encode: impl Fn(&T) -> String,
    compute: impl FnOnce() -> Result<T, E>,
) -> Result<(T, bool), E> {
    if let Some(store) = store {
        if let Some(raw) = store.get(key) {
            if let Ok(v) = decode(&raw) {
                return Ok((v, true));
            }
        }
        let v = compute()?;
        store.put(key.clone(), encode(&v));
        Ok((v, false))
    } else {
        compute().map(|v| (v, false))
    }
}

/// [`memo_record`] for infallible computations.
pub fn memo_value<T>(
    store: Option<&ResultStore>,
    key: &StoreKey,
    decode: impl Fn(&str) -> Result<T, String>,
    encode: impl Fn(&T) -> String,
    compute: impl FnOnce() -> T,
) -> (T, bool) {
    let r: Result<(T, bool), std::convert::Infallible> =
        memo_record(store, key, decode, encode, || Ok(compute()));
    match r {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

fn list_lines(out: &mut String, tag: &str, items: &[String]) {
    for item in items {
        out.push('\n');
        out.push_str(tag);
        out.push('\t');
        out.push_str(&esc(item));
    }
}

fn split_record(text: &str) -> (&str, Vec<(&str, String)>) {
    let mut lines = text.lines();
    let head = lines.next().unwrap_or("");
    let items = lines
        .filter_map(|l| l.split_once('\t').map(|(tag, v)| (tag, unesc(v))))
        .collect();
    (head, items)
}

fn take_list(items: &[(&str, String)], tag: &str) -> Vec<String> {
    items
        .iter()
        .filter(|(t, _)| *t == tag)
        .map(|(_, v)| v.clone())
        .collect()
}

// ---------------------------------------------------------------------
// Crash-audit cells
// ---------------------------------------------------------------------

/// The stored shape of one crash-audit cell: everything
/// `crash_audit`'s report/JSON emission reads from a
/// [`CrashAuditReport`], with violations flattened to display strings.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashCellRecord {
    /// Points requested.
    pub points: usize,
    /// Points that actually interrupted the run.
    pub audited: usize,
    /// Points past the end of the run.
    pub beyond_end: usize,
    /// Audited points per crash-point kind.
    pub audited_by_kind: [usize; 6],
    /// Rendered invariant violations (empty = contract held).
    pub violations: Vec<String>,
    /// WPQ entries battery-flushed across audited failures.
    pub entries_flushed: u64,
    /// WPQ entries discarded across audited failures.
    pub entries_discarded: u64,
    /// Undo-log rollbacks applied across audited failures.
    pub undo_rolled_back: u64,
    /// Cycles of the failure-free golden run.
    pub golden_cycles: u64,
}

impl From<&CrashAuditReport> for CrashCellRecord {
    fn from(r: &CrashAuditReport) -> CrashCellRecord {
        CrashCellRecord {
            points: r.points,
            audited: r.audited,
            beyond_end: r.beyond_end,
            audited_by_kind: r.audited_by_kind,
            violations: r.violations.iter().map(|v| v.to_string()).collect(),
            entries_flushed: r.entries_flushed,
            entries_discarded: r.entries_discarded,
            undo_rolled_back: r.undo_rolled_back,
            golden_cycles: r.golden_cycles,
        }
    }
}

impl CrashCellRecord {
    /// Serialises for the store.
    pub fn encode(&self) -> String {
        let mut out = kv_line(&[
            ("points", self.points.to_string()),
            ("audited", self.audited.to_string()),
            ("beyond_end", self.beyond_end.to_string()),
            (
                "by_kind",
                self.audited_by_kind
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            ("entries_flushed", self.entries_flushed.to_string()),
            ("entries_discarded", self.entries_discarded.to_string()),
            ("undo_rolled_back", self.undo_rolled_back.to_string()),
            ("golden_cycles", self.golden_cycles.to_string()),
        ]);
        list_lines(&mut out, "v", &self.violations);
        out
    }

    /// Parses [`CrashCellRecord::encode`] output.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn decode(text: &str) -> Result<CrashCellRecord, String> {
        let (head, items) = split_record(text);
        let map = parse_kv(head)?;
        let by_kind_raw: String = kv_get(&map, "by_kind")?;
        let mut audited_by_kind = [0usize; 6];
        let parts: Vec<&str> = by_kind_raw.split(',').collect();
        if parts.len() != 6 {
            return Err(format!("by_kind needs 6 entries, got {}", parts.len()));
        }
        for (slot, p) in audited_by_kind.iter_mut().zip(parts) {
            *slot = p.parse().map_err(|e| format!("by_kind: {e}"))?;
        }
        Ok(CrashCellRecord {
            points: kv_get(&map, "points")?,
            audited: kv_get(&map, "audited")?,
            beyond_end: kv_get(&map, "beyond_end")?,
            audited_by_kind,
            violations: take_list(&items, "v"),
            entries_flushed: kv_get(&map, "entries_flushed")?,
            entries_discarded: kv_get(&map, "entries_discarded")?,
            undo_rolled_back: kv_get(&map, "undo_rolled_back")?,
            golden_cycles: kv_get(&map, "golden_cycles")?,
        })
    }
}

// ---------------------------------------------------------------------
// Data-structure audit cells
// ---------------------------------------------------------------------

/// The stored shape of one recoverable-DS audit cell (see
/// [`DsAuditReport`]).
#[derive(Clone, Debug, PartialEq)]
pub struct DsCellRecord {
    /// Structure name.
    pub name: String,
    /// Points prepared.
    pub points: usize,
    /// Points audited.
    pub audited: usize,
    /// Points past the end of the run.
    pub beyond_end: usize,
    /// Audited points resumed to completion.
    pub resumed: usize,
    /// Cycles of the failure-free run.
    pub golden_cycles: u64,
    /// Generic recovery-contract violations, rendered.
    pub gate_violations: Vec<String>,
    /// Structure-invariant violations.
    pub ds_violations: Vec<String>,
}

impl From<&DsAuditReport> for DsCellRecord {
    fn from(r: &DsAuditReport) -> DsCellRecord {
        DsCellRecord {
            name: r.name.clone(),
            points: r.points,
            audited: r.audited,
            beyond_end: r.beyond_end,
            resumed: r.resumed,
            golden_cycles: r.golden_cycles,
            gate_violations: r.gate_violations.iter().map(|v| v.to_string()).collect(),
            ds_violations: r.ds_violations.clone(),
        }
    }
}

impl DsCellRecord {
    /// Total violation count (gate + structure).
    pub fn violations(&self) -> usize {
        self.gate_violations.len() + self.ds_violations.len()
    }

    /// Serialises for the store.
    pub fn encode(&self) -> String {
        let mut out = kv_line(&[
            ("name", esc(&self.name)),
            ("points", self.points.to_string()),
            ("audited", self.audited.to_string()),
            ("beyond_end", self.beyond_end.to_string()),
            ("resumed", self.resumed.to_string()),
            ("golden_cycles", self.golden_cycles.to_string()),
        ]);
        list_lines(&mut out, "g", &self.gate_violations);
        list_lines(&mut out, "d", &self.ds_violations);
        out
    }

    /// Parses [`DsCellRecord::encode`] output.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn decode(text: &str) -> Result<DsCellRecord, String> {
        let (head, items) = split_record(text);
        let map = parse_kv(head)?;
        Ok(DsCellRecord {
            name: unesc(map.get("name").ok_or("missing field name")?),
            points: kv_get(&map, "points")?,
            audited: kv_get(&map, "audited")?,
            beyond_end: kv_get(&map, "beyond_end")?,
            resumed: kv_get(&map, "resumed")?,
            golden_cycles: kv_get(&map, "golden_cycles")?,
            gate_violations: take_list(&items, "g"),
            ds_violations: take_list(&items, "d"),
        })
    }
}

// ---------------------------------------------------------------------
// Model-oracle cases and sweep reports
// ---------------------------------------------------------------------

/// The stored shape of one mutant-model verdict
/// ([`lightwsp_model::MutantModelRow`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MutantModelRecord {
    /// Mutant name (`drop_ack_order` & co).
    pub name: String,
    /// Size of the mutant's admitted set (`None` when its enumeration
    /// cap was exceeded).
    pub count: Option<u128>,
    /// True when the case's fully-witnessed sweep falsified the mutant.
    pub killed: bool,
}

impl MutantModelRecord {
    fn render(&self) -> String {
        format!(
            "{}/{}/{}",
            self.name,
            self.count.map_or("-".to_string(), |c| c.to_string()),
            if self.killed { "killed" } else { "alive" }
        )
    }

    fn parse(s: &str) -> Result<MutantModelRecord, String> {
        let mut it = s.split('/');
        let name = it.next().ok_or("empty mutant row")?.to_string();
        let count = match it.next().ok_or("mutant row missing count")? {
            "-" => None,
            c => Some(
                c.parse::<u128>()
                    .map_err(|e| format!("mutant count: {e}"))?,
            ),
        };
        let killed = match it.next().ok_or("mutant row missing verdict")? {
            "killed" => true,
            "alive" => false,
            other => return Err(format!("bad mutant verdict {other:?}")),
        };
        Ok(MutantModelRecord {
            name,
            count,
            killed,
        })
    }
}

/// Comma-joins a bucket vector for a kv value (no whitespace).
fn buckets_to_csv(v: &[u64]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Inverse of [`buckets_to_csv`]; an empty string is an empty vector.
fn csv_to_buckets(s: &str) -> Result<Vec<u64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|x| x.parse::<u64>().map_err(|e| format!("bucket: {e}")))
        .collect()
}

/// The stored shape of one model-harness [`CaseOutcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct CaseRecord {
    /// Case name.
    pub name: String,
    /// Crash points requested.
    pub points: usize,
    /// Points that actually interrupted the run.
    pub audited: usize,
    /// Size of the over-approximate admitted set.
    pub admitted: u128,
    /// Size of the exact admitted set (exact-mode sweeps only).
    pub exact_admitted: Option<u128>,
    /// Distinct canonical images observed.
    pub witnessed: usize,
    /// Witnessed images with a cross-thread prefix combination.
    pub witnessed_cross_thread: usize,
    /// Witnessed images per thread-count bucket.
    pub witnessed_buckets: Vec<u64>,
    /// Exact admitted images per thread-count bucket (exact mode only).
    pub exact_buckets: Option<Vec<u64>>,
    /// Mutant-model verdicts (exact mode only).
    pub model_mutants: Vec<MutantModelRecord>,
    /// Images outside the admitted set.
    pub model_violations: Vec<String>,
    /// Structural invariant violations.
    pub structural_violations: Vec<String>,
}

impl From<&CaseOutcome> for CaseRecord {
    fn from(o: &CaseOutcome) -> CaseRecord {
        CaseRecord {
            name: o.name.clone(),
            points: o.points,
            audited: o.audited,
            admitted: o.admitted,
            exact_admitted: o.exact_admitted,
            witnessed: o.witnessed,
            witnessed_cross_thread: o.witnessed_cross_thread,
            witnessed_buckets: o.witnessed_buckets.clone(),
            exact_buckets: o.exact_buckets.clone(),
            model_mutants: o
                .model_mutants
                .iter()
                .map(|m| MutantModelRecord {
                    name: m.name.clone(),
                    count: m.count,
                    killed: m.killed,
                })
                .collect(),
            model_violations: o.model_violations.clone(),
            structural_violations: o.structural_violations.clone(),
        }
    }
}

impl CaseRecord {
    /// Unwitnessed admitted images under the mode's own set (see
    /// [`CaseOutcome::overapprox`]).
    pub fn overapprox(&self) -> u128 {
        self.exact_admitted
            .unwrap_or(self.admitted)
            .saturating_sub(self.witnessed as u128)
    }

    /// Over-approximate images the exact mode excluded (0 when the
    /// sweep ran over-approximate).
    pub fn exact_delta(&self) -> u128 {
        self.exact_admitted
            .map_or(0, |e| self.admitted.saturating_sub(e))
    }

    /// True when the sweep witnessed the whole exact set cleanly.
    pub fn exact_fully_witnessed(&self) -> bool {
        self.model_violations.is_empty() && self.exact_admitted == Some(self.witnessed as u128)
    }

    /// Total violation count.
    pub fn violations(&self) -> usize {
        self.model_violations.len() + self.structural_violations.len()
    }

    /// Serialises for the store.
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("name", esc(&self.name)),
            ("points", self.points.to_string()),
            ("audited", self.audited.to_string()),
            ("admitted", self.admitted.to_string()),
            ("witnessed", self.witnessed.to_string()),
            ("cross", self.witnessed_cross_thread.to_string()),
            ("wbuckets", buckets_to_csv(&self.witnessed_buckets)),
        ];
        if let Some(e) = self.exact_admitted {
            pairs.push(("exact", e.to_string()));
        }
        if let Some(eb) = &self.exact_buckets {
            pairs.push(("ebuckets", buckets_to_csv(eb)));
        }
        let mut out = kv_line(&pairs);
        list_lines(
            &mut out,
            "mm",
            &self
                .model_mutants
                .iter()
                .map(MutantModelRecord::render)
                .collect::<Vec<_>>(),
        );
        list_lines(&mut out, "m", &self.model_violations);
        list_lines(&mut out, "s", &self.structural_violations);
        out
    }

    /// Parses [`CaseRecord::encode`] output.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn decode(text: &str) -> Result<CaseRecord, String> {
        let (head, items) = split_record(text);
        let map = parse_kv(head)?;
        Ok(CaseRecord {
            name: unesc(map.get("name").ok_or("missing field name")?),
            points: kv_get(&map, "points")?,
            audited: kv_get(&map, "audited")?,
            admitted: kv_get(&map, "admitted")?,
            exact_admitted: match map.get("exact") {
                Some(v) => Some(v.parse().map_err(|e| format!("field exact: {e}"))?),
                None => None,
            },
            witnessed: kv_get(&map, "witnessed")?,
            witnessed_cross_thread: kv_get(&map, "cross")?,
            witnessed_buckets: csv_to_buckets(map.get("wbuckets").copied().unwrap_or(""))?,
            exact_buckets: match map.get("ebuckets") {
                Some(v) => Some(csv_to_buckets(v)?),
                None => None,
            },
            model_mutants: take_list(&items, "mm")
                .iter()
                .map(|s| MutantModelRecord::parse(s))
                .collect::<Result<_, _>>()?,
            model_violations: take_list(&items, "m"),
            structural_violations: take_list(&items, "s"),
        })
    }

    /// Encodes a whole outcome list (one record per `#`-prefixed
    /// block) — litmus sweeps store their per-case outcomes alongside
    /// the aggregate.
    pub fn encode_list(records: &[CaseRecord]) -> String {
        records
            .iter()
            .map(|r| r.encode())
            .collect::<Vec<_>>()
            .join("\n#\n")
    }

    /// Parses [`CaseRecord::encode_list`] output.
    ///
    /// # Errors
    ///
    /// Propagates the first malformed block.
    pub fn decode_list(text: &str) -> Result<Vec<CaseRecord>, String> {
        if text.is_empty() {
            return Ok(Vec::new());
        }
        text.split("\n#\n").map(CaseRecord::decode).collect()
    }
}

/// The stored shape of an aggregate
/// [`SweepReport`](crate::SweepReport), with its per-case outcomes.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRecord {
    /// Cases run.
    pub cases: usize,
    /// Points requested across all cases.
    pub points: usize,
    /// Points audited.
    pub audited: usize,
    /// Sum of admitted-set sizes.
    pub admitted: u128,
    /// Sum of exact admitted-set sizes (0 for over-approximate sweeps).
    pub exact_admitted: u128,
    /// Cases whose exact set was fully witnessed violation-free.
    pub exact_complete: usize,
    /// Distinct images witnessed.
    pub witnessed: usize,
    /// Cross-thread witnessed images.
    pub witnessed_cross_thread: usize,
    /// Model violations across the sweep.
    pub model_violations: Vec<String>,
    /// Structural violations across the sweep.
    pub structural_violations: Vec<String>,
    /// Extraction errors across the sweep.
    pub extract_errors: Vec<String>,
    /// Per-case outcomes (litmus sweeps; empty for fuzz).
    pub outcomes: Vec<CaseRecord>,
}

impl SweepRecord {
    /// Builds from an aggregate report plus optional outcomes.
    pub fn new(rep: &crate::SweepReport, outcomes: &[CaseOutcome]) -> SweepRecord {
        SweepRecord {
            cases: rep.cases,
            points: rep.points,
            audited: rep.audited,
            admitted: rep.admitted,
            exact_admitted: rep.exact_admitted,
            exact_complete: rep.exact_complete,
            witnessed: rep.witnessed,
            witnessed_cross_thread: rep.witnessed_cross_thread,
            model_violations: rep.model_violations.clone(),
            structural_violations: rep.structural_violations.clone(),
            extract_errors: rep.extract_errors.clone(),
            outcomes: outcomes.iter().map(CaseRecord::from).collect(),
        }
    }

    /// Total violation count (model + structural).
    pub fn violations(&self) -> usize {
        self.model_violations.len() + self.structural_violations.len()
    }

    /// Unwitnessed admitted images.
    pub fn overapprox(&self) -> u128 {
        self.admitted.saturating_sub(self.witnessed as u128)
    }

    /// Serialises for the store.
    pub fn encode(&self) -> String {
        let mut out = kv_line(&[
            ("cases", self.cases.to_string()),
            ("points", self.points.to_string()),
            ("audited", self.audited.to_string()),
            ("admitted", self.admitted.to_string()),
            ("exact", self.exact_admitted.to_string()),
            ("excomplete", self.exact_complete.to_string()),
            ("witnessed", self.witnessed.to_string()),
            ("cross", self.witnessed_cross_thread.to_string()),
        ]);
        list_lines(&mut out, "m", &self.model_violations);
        list_lines(&mut out, "s", &self.structural_violations);
        list_lines(&mut out, "e", &self.extract_errors);
        out.push_str("\n##\n");
        out.push_str(&CaseRecord::encode_list(&self.outcomes));
        out
    }

    /// Parses [`SweepRecord::encode`] output.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn decode(text: &str) -> Result<SweepRecord, String> {
        let (head_part, outcome_part) = match text.split_once("\n##\n") {
            Some((h, o)) => (h, o),
            None => (text, ""),
        };
        let (head, items) = split_record(head_part);
        let map = parse_kv(head)?;
        Ok(SweepRecord {
            cases: kv_get(&map, "cases")?,
            points: kv_get(&map, "points")?,
            audited: kv_get(&map, "audited")?,
            admitted: kv_get(&map, "admitted")?,
            exact_admitted: kv_get(&map, "exact")?,
            exact_complete: kv_get(&map, "excomplete")?,
            witnessed: kv_get(&map, "witnessed")?,
            witnessed_cross_thread: kv_get(&map, "cross")?,
            model_violations: take_list(&items, "m"),
            structural_violations: take_list(&items, "s"),
            extract_errors: take_list(&items, "e"),
            outcomes: CaseRecord::decode_list(outcome_part)?,
        })
    }
}

/// One row of the stored mutant kill matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MutantKillRecord {
    /// Mutant name (see [`crate::oracle::mutant_name`]).
    pub mutant: String,
    /// `litmus/detector` strings that flagged it.
    pub killed_by: Vec<String>,
}

impl From<&crate::oracle::MutantKill> for MutantKillRecord {
    fn from(m: &crate::oracle::MutantKill) -> MutantKillRecord {
        MutantKillRecord {
            mutant: crate::oracle::mutant_name(m.mutant).to_string(),
            killed_by: m
                .killed_by
                .iter()
                .map(|(litmus, detector)| format!("{litmus}/{detector}"))
                .collect(),
        }
    }
}

impl MutantKillRecord {
    /// True if at least one litmus killed the mutant.
    pub fn killed(&self) -> bool {
        !self.killed_by.is_empty()
    }

    /// Serialises a whole matrix for the store.
    pub fn encode_list(rows: &[MutantKillRecord]) -> String {
        rows.iter()
            .map(|r| {
                let mut out = kv_line(&[("mutant", esc(&r.mutant))]);
                list_lines(&mut out, "k", &r.killed_by);
                out
            })
            .collect::<Vec<_>>()
            .join("\n#\n")
    }

    /// Parses [`MutantKillRecord::encode_list`] output.
    ///
    /// # Errors
    ///
    /// Propagates the first malformed row.
    pub fn decode_list(text: &str) -> Result<Vec<MutantKillRecord>, String> {
        if text.is_empty() {
            return Ok(Vec::new());
        }
        text.split("\n#\n")
            .map(|block| {
                let (head, items) = split_record(block);
                let map = parse_kv(head)?;
                Ok(MutantKillRecord {
                    mutant: unesc(map.get("mutant").ok_or("missing field mutant")?),
                    killed_by: take_list(&items, "k"),
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Free-form sections (memoized timing blocks, meta wall-clocks)
// ---------------------------------------------------------------------

/// A stored record pairing named scalar fields with a free-form text
/// body — the shape of `all_figures`' memoized timing sections (the
/// body is the pre-rendered JSON array, the fields the summary numbers
/// that feed `meta`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TextRecord {
    /// Named scalar fields (stored verbatim; use [`f64_bits`] for
    /// floats that must survive bit-exactly).
    pub fields: BTreeMap<String, String>,
    /// The text body.
    pub text: String,
}

impl TextRecord {
    /// Gets a field parsed via [`f64_from_bits`].
    ///
    /// # Errors
    ///
    /// Missing field or malformed bits.
    pub fn f64(&self, name: &str) -> Result<f64, String> {
        f64_from_bits(
            self.fields
                .get(name)
                .ok_or_else(|| format!("missing {name}"))?,
        )
    }

    /// Gets a field parsed with `FromStr`.
    ///
    /// # Errors
    ///
    /// Missing field or parse failure.
    pub fn num<T: std::str::FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.fields
            .get(name)
            .ok_or_else(|| format!("missing {name}"))?
            .parse()
            .map_err(|e| format!("field {name}: {e}"))
    }

    /// Sets a scalar field.
    pub fn set(&mut self, name: &str, value: impl ToString) {
        self.fields.insert(name.to_string(), value.to_string());
    }

    /// Sets an `f64` field bit-exactly.
    pub fn set_f64(&mut self, name: &str, value: f64) {
        self.set(name, f64_bits(value));
    }

    /// Serialises for the store.
    pub fn encode(&self) -> String {
        let pairs: Vec<(&str, String)> = self
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), esc(v)))
            .collect();
        format!("{}\n--\n{}", kv_line(&pairs), self.text)
    }

    /// Parses [`TextRecord::encode`] output.
    ///
    /// # Errors
    ///
    /// Malformed header line.
    pub fn decode(text: &str) -> Result<TextRecord, String> {
        let (head, body) = text
            .split_once("\n--\n")
            .ok_or("text record missing -- separator")?;
        let fields = parse_kv(head)?
            .into_iter()
            .map(|(k, v)| (k.to_string(), unesc(v)))
            .collect();
        Ok(TextRecord {
            fields,
            text: body.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_cell_roundtrip() {
        let r = CrashCellRecord {
            points: 10,
            audited: 8,
            beyond_end: 2,
            audited_by_kind: [1, 2, 3, 0, 1, 1],
            violations: vec!["bad\nnews".into(), "worse\ttabs".into()],
            entries_flushed: 100,
            entries_discarded: 7,
            undo_rolled_back: 3,
            golden_cycles: 123_456,
        };
        assert_eq!(CrashCellRecord::decode(&r.encode()).unwrap(), r);
        assert!(CrashCellRecord::decode("points=1").is_err());
    }

    #[test]
    fn ds_cell_roundtrip() {
        let r = DsCellRecord {
            name: "kv service".into(),
            points: 500,
            audited: 480,
            beyond_end: 20,
            resumed: 24,
            golden_cycles: 9_999_999,
            gate_violations: vec![],
            ds_violations: vec!["stack-lost-op @cycle 42".into()],
        };
        assert_eq!(DsCellRecord::decode(&r.encode()).unwrap(), r);
        assert_eq!(r.violations(), 1);
    }

    #[test]
    fn sweep_record_roundtrip_with_outcomes() {
        let case = CaseRecord {
            name: "mp+boundary".into(),
            points: 100,
            audited: 90,
            admitted: u128::from(u64::MAX) * 3,
            exact_admitted: Some(41),
            witnessed: 40,
            witnessed_cross_thread: 5,
            witnessed_buckets: vec![1, 30, 9],
            exact_buckets: Some(vec![1, 31, 9]),
            model_mutants: vec![
                MutantModelRecord {
                    name: "drop_ack_order".into(),
                    count: Some(u128::from(u64::MAX) * 3),
                    killed: false,
                },
                MutantModelRecord {
                    name: "unordered_prefixes".into(),
                    count: None,
                    killed: false,
                },
            ],
            model_violations: vec![],
            structural_violations: vec!["gate flushed early".into()],
        };
        assert_eq!(case.exact_delta(), u128::from(u64::MAX) * 3 - 41);
        assert!(!case.exact_fully_witnessed(), "41 exact vs 40 witnessed");
        let r = SweepRecord {
            cases: 1,
            points: 100,
            audited: 90,
            admitted: case.admitted,
            exact_admitted: 41,
            exact_complete: 0,
            witnessed: 40,
            witnessed_cross_thread: 5,
            model_violations: vec!["img outside set".into()],
            structural_violations: vec![],
            extract_errors: vec![],
            outcomes: vec![case],
        };
        let d = SweepRecord::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.violations(), 1);
        assert!(d.overapprox() > 0);
    }

    #[test]
    fn case_record_roundtrip_without_exact_fields() {
        // Over-approximate sweeps carry no exact fields; the record
        // must encode and decode without them.
        let case = CaseRecord {
            name: "plain".into(),
            points: 10,
            audited: 10,
            admitted: 7,
            exact_admitted: None,
            witnessed: 6,
            witnessed_cross_thread: 0,
            witnessed_buckets: vec![1, 5],
            exact_buckets: None,
            model_mutants: vec![],
            model_violations: vec![],
            structural_violations: vec![],
        };
        let d = CaseRecord::decode(&case.encode()).unwrap();
        assert_eq!(d, case);
        assert_eq!(d.exact_delta(), 0);
        assert_eq!(d.overapprox(), 1);
    }

    #[test]
    fn kill_matrix_roundtrip() {
        let rows = vec![
            MutantKillRecord {
                mutant: "FlushUnacked".into(),
                killed_by: vec!["mp/model".into(), "sb/structural".into()],
            },
            MutantKillRecord {
                mutant: "DropAck".into(),
                killed_by: vec![],
            },
        ];
        let d = MutantKillRecord::decode_list(&MutantKillRecord::encode_list(&rows)).unwrap();
        assert_eq!(d, rows);
        assert!(d[0].killed() && !d[1].killed());
    }

    #[test]
    fn text_record_roundtrip_and_f64() {
        let mut r = TextRecord::default();
        r.set_f64("wall_s", 1.234_567_8);
        r.set("cells", 42u32);
        r.text = "  {\"a\": 1},\n  {\"b\": 2}".into();
        let d = TextRecord::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.f64("wall_s").unwrap().to_bits(), 1.234_567_8f64.to_bits());
        assert_eq!(d.num::<u32>("cells").unwrap(), 42);
    }

    #[test]
    fn memo_value_serves_and_falls_back_on_corrupt() {
        let store = ResultStore::in_memory_with(1);
        let key = StoreKey::new("section", "x", "", 0, 0, 1);
        let (v, hit) = memo_value(
            Some(&store),
            &key,
            |s| Ok(s.to_string()),
            |v: &String| v.clone(),
            || "computed".to_string(),
        );
        assert!(!hit);
        assert_eq!(v, "computed");
        let (v, hit) = memo_value(
            Some(&store),
            &key,
            |s| Ok(s.to_string()),
            |v: &String| v.clone(),
            || unreachable!("served"),
        );
        assert!(hit);
        assert_eq!(v, "computed");
        // A record that fails decoding is recomputed and overwritten.
        store.put(key.clone(), "garbage".into());
        let (v, hit) = memo_value(
            Some(&store),
            &key,
            |s| {
                if s == "garbage" {
                    Err("corrupt".into())
                } else {
                    Ok(s.to_string())
                }
            },
            |v: &String| v.clone(),
            || "recomputed".to_string(),
        );
        assert!(!hit);
        assert_eq!(v, "recomputed");
        assert_eq!(store.get(&key).as_deref(), Some("recomputed"));
    }
}
