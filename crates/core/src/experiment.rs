//! Experiment orchestration: compile → simulate → normalise.
//!
//! Every figure of the evaluation reports *execution slowdown*
//! normalised to "the unmodified program … under Intel Optane's memory
//! mode" (§V-A) — i.e. [`Scheme::Baseline`] running the uninstrumented
//! binary. [`Experiment`] caches those baseline runs per workload so a
//! figure sweeping many schemes/configurations pays for each baseline
//! once.
//!
//! ## Experiment scale
//!
//! The paper simulates 5 × 10⁹ instructions per benchmark on gem5 with
//! the full Table I hierarchy (64 KB L1, 16 MB L2, 4 GB DRAM cache).
//! Runs of ~10⁵ instructions cannot exercise a 16 MB L2, so the
//! experiment configuration scales the cache hierarchy down 32× (16 KB
//! L1, 512 KB L2) while the workload roster scales its working sets by
//! the same factor — preserving the residency relationships that drive
//! every effect the paper measures. All latencies, queue sizes, persist
//! path parameters, WPQ sizes and protocol costs remain at their
//! Table I values.

use lightwsp_compiler::prune::RecoveryRecipes;
use lightwsp_compiler::{instrument, Compiled, CompilerConfig};
use lightwsp_ir::fxhash::FxHashMap;
use lightwsp_sim::{Completion, Machine, Scheme, SimConfig, SimStats};
use lightwsp_workloads::WorkloadSpec;

/// Configuration of an experiment campaign.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Simulator template; the `scheme` field is overwritten per run.
    pub sim: SimConfig,
    /// Compiler configuration for instrumented schemes.
    pub compiler: CompilerConfig,
    /// Target dynamic instructions per thread.
    pub insts_per_thread: u64,
    /// Overrides the workload's own thread count when set (Fig. 16).
    pub threads: Option<usize>,
}

impl ExperimentOptions {
    /// The paper's default evaluation configuration at experiment scale.
    pub fn paper_default() -> ExperimentOptions {
        let mut sim = SimConfig::new(Scheme::Baseline);
        sim.mem.l1_bytes = 16 * 1024;
        sim.mem.l2_bytes = 512 * 1024;
        ExperimentOptions {
            sim,
            compiler: CompilerConfig::default(),
            insts_per_thread: 60_000,
            threads: None,
        }
    }

    /// A faster variant for tests.
    pub fn quick() -> ExperimentOptions {
        let mut o = ExperimentOptions::paper_default();
        o.insts_per_thread = 12_000;
        o
    }
}

/// The outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme simulated.
    pub scheme: Scheme,
    /// Threads simulated.
    pub threads: usize,
    /// Whether the run finished before the cycle cap.
    pub completion: Completion,
    /// Full statistics.
    pub stats: SimStats,
}

impl RunResult {
    /// Cycles taken (the normalisation numerator/denominator).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Runs experiments with per-workload baseline caching.
pub struct Experiment {
    opts: ExperimentOptions,
    /// Keyed by (workload name, thread count); workload names are
    /// `&'static str` so the hot `slowdown` path never allocates a key.
    baseline_cycles: FxHashMap<(&'static str, usize), u64>,
}

impl Experiment {
    /// Creates a campaign with the given options.
    pub fn new(opts: ExperimentOptions) -> Experiment {
        Experiment {
            opts,
            baseline_cycles: FxHashMap::default(),
        }
    }

    /// The active options.
    pub fn options(&self) -> &ExperimentOptions {
        &self.opts
    }

    /// Mutable options (between runs; cached baselines are kept, so only
    /// change scheme-side knobs this way).
    pub fn options_mut(&mut self) -> &mut ExperimentOptions {
        &mut self.opts
    }

    /// Compiles `spec` for `scheme` (instrumented schemes get the full
    /// pass pipeline; hardware-only schemes run the original binary).
    pub fn compile(&self, spec: &WorkloadSpec, scheme: Scheme) -> Compiled {
        let program = spec
            .clone()
            .scaled_to(self.opts.insts_per_thread)
            .generate();
        if scheme.is_instrumented() {
            instrument(&program, &self.opts.compiler)
        } else {
            Compiled {
                program,
                recipes: RecoveryRecipes::default(),
                stats: Default::default(),
            }
        }
    }

    /// Thread count for `spec` under the current options.
    pub fn threads_for(&self, spec: &WorkloadSpec) -> usize {
        self.opts.threads.unwrap_or(spec.threads)
    }

    /// Builds the ready-to-run machine for `spec` under `scheme` — the
    /// same compilation, warm-DRAM window and core count
    /// [`Experiment::run`] uses — without running it. Benchmarks use
    /// this to time `Machine::run` in isolation, the way the campaign
    /// amortizes compilations across a figure's cells.
    pub fn machine_for(&self, spec: &WorkloadSpec, scheme: Scheme) -> Machine {
        let threads = self.threads_for(spec);
        let compiled = self.compile(spec, scheme);
        let mut cfg = self.opts.sim.clone();
        cfg.scheme = scheme;
        cfg.num_cores = threads;
        // Warm DRAM cache over the workload's data (shared counters,
        // scratch, and every thread's private window), emulating the
        // paper's fast-forward (§V-A).
        let window = spec.working_set.next_power_of_two();
        let heap = lightwsp_ir::layout::HEAP_BASE;
        cfg.warm_dram = vec![(heap - 0x8000, heap + window * threads as u64)];
        Machine::new(compiled.program, compiled.recipes, cfg, threads)
    }

    /// Runs `spec` under `scheme` and returns the result.
    pub fn run(&mut self, spec: &WorkloadSpec, scheme: Scheme) -> RunResult {
        let mut machine = self.machine_for(spec, scheme);
        let completion = machine.run();
        RunResult {
            workload: spec.name,
            scheme,
            threads: self.threads_for(spec),
            completion,
            stats: machine.stats().clone(),
        }
    }

    /// Baseline cycles for `spec` (cached).
    pub fn baseline_cycles(&mut self, spec: &WorkloadSpec) -> u64 {
        let key = (spec.name, self.threads_for(spec));
        if let Some(&c) = self.baseline_cycles.get(&key) {
            return c;
        }
        let r = self.run(spec, Scheme::Baseline);
        let c = r.cycles().max(1);
        self.baseline_cycles.insert(key, c);
        c
    }

    /// Execution slowdown of `scheme` on `spec`, normalised to the
    /// memory-mode baseline (the y-axis of Figs. 7, 9–13, 15–17).
    pub fn slowdown(&mut self, spec: &WorkloadSpec, scheme: Scheme) -> f64 {
        let base = self.baseline_cycles(spec) as f64;
        let r = self.run(spec, scheme);
        r.cycles() as f64 / base
    }

    /// Slowdown plus the full run result (when a figure needs both).
    pub fn slowdown_with_stats(&mut self, spec: &WorkloadSpec, scheme: Scheme) -> (f64, RunResult) {
        let base = self.baseline_cycles(spec) as f64;
        let r = self.run(spec, scheme);
        (r.cycles() as f64 / base, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_workloads::workload;

    #[test]
    fn baseline_is_cached() {
        let mut e = Experiment::new(ExperimentOptions::quick());
        let w = workload("hmmer").unwrap();
        let a = e.baseline_cycles(&w);
        let b = e.baseline_cycles(&w);
        assert_eq!(a, b);
        assert!(a > 1000);
    }

    #[test]
    fn slowdown_of_baseline_is_one() {
        let mut e = Experiment::new(ExperimentOptions::quick());
        let w = workload("hmmer").unwrap();
        let s = e.slowdown(&w, Scheme::Baseline);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn lightwsp_slowdown_plausible_on_compute_workload() {
        let mut e = Experiment::new(ExperimentOptions::quick());
        let w = workload("hmmer").unwrap();
        let s = e.slowdown(&w, Scheme::LightWsp);
        assert!((0.98..1.6).contains(&s), "hmmer LightWSP slowdown {s:.3}");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut e1 = Experiment::new(ExperimentOptions::quick());
        let mut e2 = Experiment::new(ExperimentOptions::quick());
        let w = workload("bzip2").unwrap();
        let a = e1.run(&w, Scheme::LightWsp);
        let b = e2.run(&w, Scheme::LightWsp);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.insts, b.stats.insts);
        assert_eq!(a.stats.regions, b.stats.regions);
    }

    #[test]
    fn thread_override_applies() {
        let mut o = ExperimentOptions::quick();
        o.threads = Some(2);
        let mut e = Experiment::new(o);
        let w = workload("vacation").unwrap();
        let r = e.run(&w, Scheme::Baseline);
        assert_eq!(r.threads, 2);
    }
}
