//! Crash-audit driver for the recoverable data-structure suite
//! (`lightwsp_workloads::ds`).
//!
//! [`audit_recoverable_ds`] runs one structure through the full
//! treatment: compile, golden run (whose final image must satisfy the
//! structure's `check_final`), then a fork-point crash sweep at
//! mechanism-derived plus seeded points. At **every** audited point it
//! cuts power, resolves the WPQ gate, and checks two independent
//! layers against the durable image:
//!
//! 1. the generic recovery contract of `RECOVERY.md` §3–§7
//!    ([`lightwsp_sim::crash::check_capture`]: survivable-prefix,
//!    gate-flush, gate-discard, resolution-exact, …), and
//! 2. the structure's own §8 invariants (`RecoverableDs::check_image`
//!    — `log-torn-tail`, `map-shard-prefix`, `queue-no-lost-ack`, …).
//!
//! Capture checks are cheap (pure functions of the image), so the
//! sweep runs them everywhere; *resume-to-completion* — restart the
//! machine at the recovered image, run to the end, and re-check
//! `check_final` (plus a byte-compare against the golden image when
//! the structure is deterministic) — costs a full run per point and is
//! sampled every [`DsAuditBudget::resume_every`]-th audited point.
//!
//! Points fan out across a [`Campaign`] in contiguous sorted chunks
//! (one fork-sweep mainline per worker), the same discipline as
//! [`crate::recovery::audit_workload_crashes`], so reports are
//! bit-identical regardless of worker count.

use crate::cache::{digest_debug, memo_record, DsCellRecord};
use crate::campaign::Campaign;
use lightwsp_compiler::{instrument, CompilerConfig};
use lightwsp_sim::consistency::{golden_run, ConsistencyError};
use lightwsp_sim::crash::check_capture;
use lightwsp_sim::{Completion, CrashInjector, CrashPoint, InvariantViolation, SimConfig};
use lightwsp_store::{ResultStore, StoreKey};
use lightwsp_workloads::ds::RecoverableDs;

/// Point budget and resume sampling for one structure's audit.
#[derive(Clone, Copy, Debug)]
pub struct DsAuditBudget {
    /// Seed for the pseudo-random point stream.
    pub seed: u64,
    /// Seeded (uniform over the run) crash points.
    pub seeded: usize,
    /// Cap on derived points per mechanism window.
    pub derived_per_kind: usize,
    /// Resume-to-completion every n-th audited point (0 = never).
    pub resume_every: usize,
}

impl DsAuditBudget {
    /// The `ds_service` bench's full budget: enough points for the
    /// headline ≥500-audit service sweep.
    pub fn full() -> DsAuditBudget {
        DsAuditBudget {
            seed: 0xD5_0001,
            seeded: 420,
            derived_per_kind: 24,
            resume_every: 25,
        }
    }

    /// A small fixed-seed budget for CI and `--quick` runs.
    pub fn quick() -> DsAuditBudget {
        DsAuditBudget {
            seed: 0xD5_0001,
            seeded: 12,
            derived_per_kind: 4,
            resume_every: 8,
        }
    }
}

/// What one structure's crash sweep found.
#[derive(Clone, Debug, Default)]
pub struct DsAuditReport {
    /// Structure name ([`RecoverableDs::name`]).
    pub name: String,
    /// Points prepared (sorted, deduplicated).
    pub points: usize,
    /// Points that landed inside the run and were audited.
    pub audited: usize,
    /// Points past the end of the run (nothing to cut).
    pub beyond_end: usize,
    /// Audited points that were also resumed to completion.
    pub resumed: usize,
    /// Cycles of the failure-free run.
    pub golden_cycles: u64,
    /// Generic recovery-contract violations (`RECOVERY.md` §3–§7).
    pub gate_violations: Vec<InvariantViolation>,
    /// Structure-invariant violations (`RECOVERY.md` §8), formatted
    /// with their crash point.
    pub ds_violations: Vec<String>,
}

impl DsAuditReport {
    /// Total violations across both layers.
    pub fn violations(&self) -> usize {
        self.gate_violations.len() + self.ds_violations.len()
    }

    fn merge(&mut self, other: &DsAuditReport) {
        self.points += other.points;
        self.audited += other.audited;
        self.beyond_end += other.beyond_end;
        self.resumed += other.resumed;
        self.gate_violations
            .extend(other.gate_violations.iter().cloned());
        self.ds_violations
            .extend(other.ds_violations.iter().cloned());
    }
}

/// Sweeps crash points over `ds` and checks both the generic recovery
/// contract and the structure's own invariants at every point; see the
/// module docs for the exact treatment.
///
/// `cfg.num_cores` is overridden by the structure's thread count; the
/// sweep mode comes from `cfg`/`LIGHTWSP_SWEEP_MODE` as usual.
///
/// # Errors
///
/// Returns a [`ConsistencyError`] if the golden (failure-free) run
/// itself cannot complete; violations are reported, not errors.
pub fn audit_recoverable_ds(
    ds: &dyn RecoverableDs,
    cfg: &SimConfig,
    ccfg: &CompilerConfig,
    budget: &DsAuditBudget,
    campaign: &Campaign,
) -> Result<DsAuditReport, ConsistencyError> {
    let program = ds.program();
    let compiled = instrument(&program, ccfg);
    let threads = ds.threads();
    let mut cfg = cfg.clone();
    cfg.num_cores = threads;

    let injector = CrashInjector::new(&compiled, cfg.clone(), threads);
    let (mut points, horizon) = injector.derived_points(budget.derived_per_kind);
    points.extend(injector.seeded_points(budget.seed, budget.seeded, horizon));
    let points = CrashInjector::prepare_points(&points);
    let (golden, golden_cycles) = golden_run(&compiled, &cfg, threads)?;

    let mut report = DsAuditReport {
        name: ds.name().to_string(),
        golden_cycles,
        ..DsAuditReport::default()
    };
    // The golden image anchors everything downstream: it must satisfy
    // the structure's completed-run checker before any point is swept.
    for v in ds.check_final(&golden) {
        report.ds_violations.push(format!("golden image: {v}"));
    }

    // Contiguous sorted chunks with global indices, one fork-sweep
    // mainline per worker; merging in chunk order keeps the report
    // independent of the worker count.
    let chunk_len = points.len().div_ceil(campaign.workers().max(1)).max(1);
    let chunks: Vec<(usize, &[CrashPoint])> = points
        .chunks(chunk_len)
        .enumerate()
        .map(|(i, c)| (i * chunk_len, c))
        .collect();
    let partials: Vec<DsAuditReport> = campaign.map_parallel(&chunks, |&(start, chunk), _| {
        audit_ds_chunk(ds, &injector, &cfg, &golden, budget, start, chunk)
    });
    for part in &partials {
        report.merge(part);
    }
    Ok(report)
}

/// Store-cached [`audit_recoverable_ds`]: serves the cell from `store`
/// when a record exists for the same structure name, scheme,
/// configuration digest and code digest; otherwise runs the audit and
/// records it. The boolean is `true` on a cache hit.
///
/// `ds_digest` must cover every construction parameter of `ds` that is
/// not implied by its name (operation counts, seeds) — trait objects
/// carry no `Debug` rendering, so the caller owns that part of the key.
/// The simulator config, compiler config and budget are digested here.
///
/// # Errors
///
/// Propagates [`ConsistencyError`] from the golden run; errors are
/// never cached.
pub fn audit_recoverable_ds_cached(
    store: Option<&ResultStore>,
    ds: &dyn RecoverableDs,
    cfg: &SimConfig,
    ccfg: &CompilerConfig,
    budget: &DsAuditBudget,
    campaign: &Campaign,
    ds_digest: u64,
) -> Result<(DsCellRecord, bool), ConsistencyError> {
    let key = StoreKey::new(
        "dscell",
        ds.name(),
        cfg.scheme.name(),
        digest_debug(&(ds_digest, ds.threads(), cfg, ccfg, budget)),
        0,
        store.map_or(0, ResultStore::code),
    );
    memo_record(
        store,
        &key,
        DsCellRecord::decode,
        DsCellRecord::encode,
        || audit_recoverable_ds(ds, cfg, ccfg, budget, campaign).map(|r| (&r).into()),
    )
}

/// Audits one sorted chunk with a dedicated sweeper. `start` is the
/// chunk's global index origin, which pins the resume-sampling pattern
/// across any chunking.
fn audit_ds_chunk(
    ds: &dyn RecoverableDs,
    injector: &CrashInjector<'_>,
    cfg: &SimConfig,
    golden: &lightwsp_ir::Memory,
    budget: &DsAuditBudget,
    start: usize,
    chunk: &[CrashPoint],
) -> DsAuditReport {
    let mut report = DsAuditReport {
        points: chunk.len(),
        ..DsAuditReport::default()
    };
    let mut sweeper = injector.sweeper();
    for (i, &p) in chunk.iter().enumerate() {
        let Some((cap, mut m)) = sweeper.cut_at(p) else {
            report.beyond_end += 1;
            continue;
        };
        report.audited += 1;
        check_capture(&cap, m.pm_contents(), p, &mut report.gate_violations);
        for v in ds.check_image(m.pm_contents()) {
            report
                .ds_violations
                .push(format!("{v} at cycle {} ({})", p.cycle, p.kind.name()));
        }

        let global = start + i;
        if budget.resume_every == 0 || !global.is_multiple_of(budget.resume_every) {
            continue;
        }
        // Resume to completion on a fresh cycle budget and hold the
        // recovered end state to the completed-run contract.
        report.resumed += 1;
        m.set_max_cycles(p.cycle.saturating_add(cfg.max_cycles));
        if m.run() != Completion::Finished {
            report.ds_violations.push(format!(
                "[resume-completes] recovered run stalled at cycle {} after crash at {} ({})",
                m.now(),
                p.cycle,
                p.kind.name()
            ));
            continue;
        }
        for v in ds.check_final(m.pm_contents()) {
            report.ds_violations.push(format!(
                "recovered run: {v} after crash at {} ({})",
                p.cycle,
                p.kind.name()
            ));
        }
        if ds.deterministic_final() {
            // Checkpoint/PC slots are timing-dependent recovery
            // metadata (forced closes dump the live register file);
            // convergence is only required of program state.
            if let Some((addr, want, got)) = golden.first_difference_where(m.pm_contents(), |a| {
                !lightwsp_ir::layout::is_checkpoint_addr(a)
            }) {
                report.ds_violations.push(format!(
                    "[recovery-converges] recovered image diverges at {addr:#x} \
                     (golden {want:#x}, got {got:#x}) after crash at {} ({})",
                    p.cycle,
                    p.kind.name()
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_sim::Scheme;
    use lightwsp_workloads::ds::log::DurableLogSpec;

    #[test]
    fn small_log_audit_is_clean() {
        let ds = DurableLogSpec {
            writers: 2,
            records: 48,
        };
        let cfg = SimConfig::new(Scheme::LightWsp);
        let budget = DsAuditBudget::quick();
        let campaign = Campaign::with_workers(2);
        let report =
            audit_recoverable_ds(&ds, &cfg, &CompilerConfig::default(), &budget, &campaign)
                .unwrap();
        assert!(report.audited > 0, "no point landed inside the run");
        assert_eq!(
            report.violations(),
            0,
            "gate: {:?}\nds: {:?}",
            report.gate_violations,
            report.ds_violations
        );
        assert!(report.resumed > 0);
    }
}
