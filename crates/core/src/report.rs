//! Result tables: serialisable records plus paper-style text rendering
//! used by every figure harness.

use lightwsp_workloads::{geomean, Suite};

/// Aggregates values for display: geometric mean when all values are
/// positive (slowdowns), arithmetic mean otherwise (rates that can be
/// zero, e.g. WPQ hits per million instructions).
fn aggregate(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if values.iter().all(|&v| v > 0.0) {
        geomean(values.iter().copied())
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// One (workload, series) cell of a figure.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name (x-axis position).
    pub workload: String,
    /// Suite the workload belongs to.
    pub suite: String,
    /// Series name (e.g. a scheme or a configuration).
    pub series: String,
    /// The value (slowdown, efficiency, rate …).
    pub value: f64,
}

/// A whole figure/table: a tagged collection of cells.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Figure identifier, e.g. `"fig7"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Unit of `value` (e.g. `"slowdown"`, `"%"`).
    pub unit: String,
    /// All cells.
    pub cells: Vec<Cell>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, unit: &str) -> Figure {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            cells: Vec::new(),
        }
    }

    /// Adds one cell.
    pub fn push(&mut self, suite: Suite, workload: &str, series: &str, value: f64) {
        self.cells.push(Cell {
            workload: workload.to_string(),
            suite: suite.name().to_string(),
            series: series.to_string(),
            value,
        });
    }

    /// Distinct series names in insertion order.
    pub fn series(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.series) {
                out.push(c.series.clone());
            }
        }
        out
    }

    /// Geometric mean of a series across all workloads.
    pub fn series_geomean(&self, series: &str) -> f64 {
        geomean(
            self.cells
                .iter()
                .filter(|c| c.series == series)
                .map(|c| c.value),
        )
    }

    /// Geometric mean of a series within one suite.
    pub fn suite_geomean(&self, series: &str, suite: Suite) -> f64 {
        geomean(
            self.cells
                .iter()
                .filter(|c| c.series == series && c.suite == suite.name())
                .map(|c| c.value),
        )
    }

    /// Renders the figure as an aligned text table, one row per
    /// workload, one column per series, with per-suite and overall
    /// geomean rows — the same rows/series the paper plots.
    pub fn render(&self) -> String {
        let series = self.series();
        let mut out = String::new();
        out.push_str(&format!(
            "== {} — {} ({}) ==\n",
            self.id, self.title, self.unit
        ));
        out.push_str(&format!("{:<22}", "workload"));
        for s in &series {
            out.push_str(&format!("{s:>14}"));
        }
        out.push('\n');

        // Rows in first-series insertion order.
        let mut seen: Vec<(String, String)> = Vec::new();
        for c in &self.cells {
            let key = (c.suite.clone(), c.workload.clone());
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        let mut last_suite = String::new();
        for (suite, workload) in &seen {
            if suite != &last_suite {
                if !last_suite.is_empty() {
                    self.render_suite_geomean(&mut out, &series, &last_suite);
                }
                out.push_str(&format!("-- {suite} --\n"));
                last_suite = suite.clone();
            }
            out.push_str(&format!("{workload:<22}"));
            for s in &series {
                let v = self
                    .cells
                    .iter()
                    .find(|c| &c.workload == workload && &c.series == s && &c.suite == suite)
                    .map(|c| c.value);
                match v {
                    Some(v) => out.push_str(&format!("{v:>14.3}")),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
        if !last_suite.is_empty() {
            self.render_suite_geomean(&mut out, &series, &last_suite);
        }
        out.push_str(&format!("{:<22}", "geomean(all)"));
        for s in &series {
            let vals: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| &c.series == s)
                .map(|c| c.value)
                .collect();
            out.push_str(&format!("{:>14.3}", aggregate(&vals)));
        }
        out.push('\n');
        out
    }

    fn render_suite_geomean(&self, out: &mut String, series: &[String], suite: &str) {
        out.push_str(&format!("{:<22}", format!("geomean({suite})")));
        for s in series {
            let vals: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| &c.series == s && c.suite == suite)
                .map(|c| c.value)
                .collect();
            out.push_str(&format!("{:>14.3}", aggregate(&vals)));
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "test", "slowdown");
        f.push(Suite::Cpu2006, "a", "S1", 1.1);
        f.push(Suite::Cpu2006, "a", "S2", 1.2);
        f.push(Suite::Cpu2006, "b", "S1", 1.3);
        f.push(Suite::Cpu2006, "b", "S2", 1.4);
        f.push(Suite::Stamp, "c", "S1", 2.0);
        f.push(Suite::Stamp, "c", "S2", 1.0);
        f
    }

    #[test]
    fn series_order_and_geomeans() {
        let f = sample();
        assert_eq!(f.series(), vec!["S1", "S2"]);
        let g = f.series_geomean("S1");
        assert!((g - (1.1f64 * 1.3 * 2.0).powf(1.0 / 3.0)).abs() < 1e-9);
        let sg = f.suite_geomean("S1", Suite::Cpu2006);
        assert!((sg - (1.1f64 * 1.3).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn render_contains_rows_and_geomeans() {
        let f = sample();
        let text = f.render();
        assert!(text.contains("figX"));
        assert!(text.contains("-- CPU2006 --"));
        assert!(text.contains("geomean(CPU2006)"));
        assert!(text.contains("geomean(all)"));
        assert!(text.contains("2.000"));
    }
}
