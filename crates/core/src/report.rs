//! Result tables: serialisable records plus paper-style text rendering
//! used by every figure harness, and the shared [`JsonWriter`] behind
//! every `BENCH_*.json` artifact.

use lightwsp_workloads::{geomean, Suite};

/// Minimal streaming JSON writer: tracks container nesting, commas and
/// two-space indentation so the bench bins stop hand-rolling both. The
/// output style matches the repo's benchmark artifacts — pretty-printed
/// containers, one-line objects for array elements.
///
/// ```
/// use lightwsp_core::report::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.object("meta");
/// w.field("threads", 8);
/// w.field_str("mode", "quick");
/// w.close();
/// w.array("runs");
/// w.elem("{\"workload\": \"bzip2\"}");
/// w.close();
/// let json = w.finish();
/// assert!(json.starts_with("{\n  \"meta\""));
/// assert!(json.ends_with("}\n"));
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: opener char, plus `true` once the
    /// container has a member (controls comma placement).
    stack: Vec<(char, bool)>,
}

impl JsonWriter {
    /// Starts the root object.
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::from("{"),
            stack: vec![('{', false)],
        }
    }

    /// Quotes and escapes a string as a JSON value (shared with
    /// callers that pre-render one-line elements).
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    fn member(&mut self, name: Option<&str>) {
        if let Some((_, populated)) = self.stack.last_mut() {
            if *populated {
                self.out.push(',');
            }
            *populated = true;
        }
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
        if let Some(name) = name {
            self.out.push_str(&Self::quote(name));
            self.out.push_str(": ");
        }
    }

    /// Opens a named nested object.
    pub fn object(&mut self, name: &str) {
        self.member(Some(name));
        self.out.push('{');
        self.stack.push(('{', false));
    }

    /// Opens a named array.
    pub fn array(&mut self, name: &str) {
        self.member(Some(name));
        self.out.push('[');
        self.stack.push(('[', false));
    }

    /// Closes the innermost container.
    pub fn close(&mut self) {
        let (opener, populated) = self.stack.pop().unwrap_or(('{', false));
        if populated {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
        self.out.push(if opener == '[' { ']' } else { '}' });
    }

    /// Writes a field with a raw (pre-rendered) JSON value — numbers
    /// with caller-controlled formatting, booleans, or whole inline
    /// objects.
    pub fn field(&mut self, name: &str, raw: impl std::fmt::Display) {
        self.member(Some(name));
        self.out.push_str(&raw.to_string());
    }

    /// Writes a string field (quoted and escaped).
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.field(name, Self::quote(value));
    }

    /// Writes one array element from raw (pre-rendered) JSON — the
    /// bins' one-line cell objects.
    pub fn elem(&mut self, raw: &str) {
        self.member(None);
        self.out.push_str(raw);
    }

    /// Writes a raw pre-rendered *block* of array elements (already
    /// comma-joined and indented) — the shape memoized sections are
    /// stored in. No-op on an empty block.
    pub fn elems_block(&mut self, block: &str) {
        if block.is_empty() {
            return;
        }
        if let Some((_, populated)) = self.stack.last_mut() {
            if *populated {
                self.out.push(',');
            }
            *populated = true;
        }
        self.out.push('\n');
        self.out.push_str(block.trim_end_matches('\n'));
    }

    /// Closes every open container and returns the document (with a
    /// trailing newline, matching the artifacts' existing style).
    pub fn finish(mut self) -> String {
        while !self.stack.is_empty() {
            self.close();
        }
        self.out.push('\n');
        self.out
    }
}

/// Aggregates values for display: geometric mean when all values are
/// positive (slowdowns), arithmetic mean otherwise (rates that can be
/// zero, e.g. WPQ hits per million instructions).
fn aggregate(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if values.iter().all(|&v| v > 0.0) {
        geomean(values.iter().copied())
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// One (workload, series) cell of a figure.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name (x-axis position).
    pub workload: String,
    /// Suite the workload belongs to.
    pub suite: String,
    /// Series name (e.g. a scheme or a configuration).
    pub series: String,
    /// The value (slowdown, efficiency, rate …).
    pub value: f64,
}

/// A whole figure/table: a tagged collection of cells.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Figure identifier, e.g. `"fig7"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Unit of `value` (e.g. `"slowdown"`, `"%"`).
    pub unit: String,
    /// All cells.
    pub cells: Vec<Cell>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, unit: &str) -> Figure {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            cells: Vec::new(),
        }
    }

    /// Adds one cell.
    pub fn push(&mut self, suite: Suite, workload: &str, series: &str, value: f64) {
        self.cells.push(Cell {
            workload: workload.to_string(),
            suite: suite.name().to_string(),
            series: series.to_string(),
            value,
        });
    }

    /// Distinct series names in insertion order.
    pub fn series(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.series) {
                out.push(c.series.clone());
            }
        }
        out
    }

    /// Geometric mean of a series across all workloads.
    pub fn series_geomean(&self, series: &str) -> f64 {
        geomean(
            self.cells
                .iter()
                .filter(|c| c.series == series)
                .map(|c| c.value),
        )
    }

    /// Geometric mean of a series within one suite.
    pub fn suite_geomean(&self, series: &str, suite: Suite) -> f64 {
        geomean(
            self.cells
                .iter()
                .filter(|c| c.series == series && c.suite == suite.name())
                .map(|c| c.value),
        )
    }

    /// Renders the figure as an aligned text table, one row per
    /// workload, one column per series, with per-suite and overall
    /// geomean rows — the same rows/series the paper plots.
    pub fn render(&self) -> String {
        let series = self.series();
        let mut out = String::new();
        out.push_str(&format!(
            "== {} — {} ({}) ==\n",
            self.id, self.title, self.unit
        ));
        out.push_str(&format!("{:<22}", "workload"));
        for s in &series {
            out.push_str(&format!("{s:>14}"));
        }
        out.push('\n');

        // Rows in first-series insertion order.
        let mut seen: Vec<(String, String)> = Vec::new();
        for c in &self.cells {
            let key = (c.suite.clone(), c.workload.clone());
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        let mut last_suite = String::new();
        for (suite, workload) in &seen {
            if suite != &last_suite {
                if !last_suite.is_empty() {
                    self.render_suite_geomean(&mut out, &series, &last_suite);
                }
                out.push_str(&format!("-- {suite} --\n"));
                last_suite = suite.clone();
            }
            out.push_str(&format!("{workload:<22}"));
            for s in &series {
                let v = self
                    .cells
                    .iter()
                    .find(|c| &c.workload == workload && &c.series == s && &c.suite == suite)
                    .map(|c| c.value);
                match v {
                    Some(v) => out.push_str(&format!("{v:>14.3}")),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
        if !last_suite.is_empty() {
            self.render_suite_geomean(&mut out, &series, &last_suite);
        }
        out.push_str(&format!("{:<22}", "geomean(all)"));
        for s in &series {
            let vals: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| &c.series == s)
                .map(|c| c.value)
                .collect();
            out.push_str(&format!("{:>14.3}", aggregate(&vals)));
        }
        out.push('\n');
        out
    }

    fn render_suite_geomean(&self, out: &mut String, series: &[String], suite: &str) {
        out.push_str(&format!("{:<22}", format!("geomean({suite})")));
        for s in series {
            let vals: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| &c.series == s && c.suite == suite)
                .map(|c| c.value)
                .collect();
            out.push_str(&format!("{:>14.3}", aggregate(&vals)));
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "test", "slowdown");
        f.push(Suite::Cpu2006, "a", "S1", 1.1);
        f.push(Suite::Cpu2006, "a", "S2", 1.2);
        f.push(Suite::Cpu2006, "b", "S1", 1.3);
        f.push(Suite::Cpu2006, "b", "S2", 1.4);
        f.push(Suite::Stamp, "c", "S1", 2.0);
        f.push(Suite::Stamp, "c", "S2", 1.0);
        f
    }

    #[test]
    fn series_order_and_geomeans() {
        let f = sample();
        assert_eq!(f.series(), vec!["S1", "S2"]);
        let g = f.series_geomean("S1");
        assert!((g - (1.1f64 * 1.3 * 2.0).powf(1.0 / 3.0)).abs() < 1e-9);
        let sg = f.suite_geomean("S1", Suite::Cpu2006);
        assert!((sg - (1.1f64 * 1.3).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn json_writer_nests_commas_and_indent() {
        let mut w = JsonWriter::new();
        w.object("meta");
        w.field("threads", 8);
        w.field_str("label", "a \"b\"\n");
        w.close();
        w.array("cells");
        w.elem("{\"x\": 1}");
        w.elem("{\"x\": 2}");
        w.close();
        w.array("empty");
        w.close();
        let json = w.finish();
        assert_eq!(
            json,
            "{\n  \"meta\": {\n    \"threads\": 8,\n    \"label\": \"a \\\"b\\\"\\n\"\n  },\n  \
             \"cells\": [\n    {\"x\": 1},\n    {\"x\": 2}\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn json_writer_elems_block_joins_prerendered_sections() {
        let mut w = JsonWriter::new();
        w.array("rows");
        w.elems_block("    {\"a\": 1},\n    {\"a\": 2}\n");
        w.elems_block("");
        w.elems_block("    {\"a\": 3}");
        w.close();
        let json = w.finish();
        assert_eq!(
            json,
            "{\n  \"rows\": [\n    {\"a\": 1},\n    {\"a\": 2},\n    {\"a\": 3}\n  ]\n}\n"
        );
    }

    #[test]
    fn render_contains_rows_and_geomeans() {
        let f = sample();
        let text = f.render();
        assert!(text.contains("figX"));
        assert!(text.contains("-- CPU2006 --"));
        assert!(text.contains("geomean(CPU2006)"));
        assert!(text.contains("geomean(all)"));
        assert!(text.contains("2.000"));
    }
}
