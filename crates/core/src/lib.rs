//! # lightwsp-core — the public facade of the LightWSP reproduction
//!
//! Ties the compiler ([`lightwsp_compiler`]), the simulator
//! ([`lightwsp_sim`]) and the workload roster ([`lightwsp_workloads`])
//! into the experiment API the evaluation harness and downstream users
//! consume:
//!
//! * [`ExperimentOptions`] — the evaluation configuration (experiment-
//!   scaled cache hierarchy, instruction budget, every sensitivity
//!   knob);
//! * [`Experiment`] — runs workloads under schemes, normalises against
//!   cached baseline runs, and aggregates per-suite geomeans;
//! * [`report`] — serialisable result tables with paper-style
//!   formatting;
//! * [`recovery`] — the public crash-consistency test API (golden run
//!   vs fail-and-recover run) and the recovery-contract auditor
//!   ([`recovery::audit_workload_crashes`]), which sweeps seeded and
//!   derived crash points and checks the named invariants of
//!   `RECOVERY.md` at each one;
//! * [`oracle`] — campaign-parallel driver for the executable LRPO
//!   persistency model ([`lightwsp_model`]): litmus sweeps, fuzz
//!   sweeps, and the gating-mutant kill matrix.
//!
//! ```no_run
//! use lightwsp_core::{Experiment, ExperimentOptions};
//! use lightwsp_sim::Scheme;
//! use lightwsp_workloads::workload;
//!
//! let mut exp = Experiment::new(ExperimentOptions::paper_default());
//! let lbm = workload("lbm").unwrap();
//! let slowdown = exp.slowdown(&lbm, Scheme::LightWsp);
//! println!("lbm LightWSP slowdown: {slowdown:.3}");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod dsaudit;
pub mod experiment;
pub mod oracle;
pub mod recovery;
pub mod report;

pub use cache::{
    memo_record, memo_value, CaseRecord, CrashCellRecord, DsCellRecord, MutantKillRecord,
    SweepRecord, TextRecord,
};
pub use campaign::{Campaign, CampaignCacheStats, Job};
pub use dsaudit::{
    audit_recoverable_ds, audit_recoverable_ds_cached, DsAuditBudget, DsAuditReport,
};
pub use experiment::{Experiment, ExperimentOptions, RunResult};
pub use lightwsp_compiler::{instrument, Compiled, CompilerConfig};
pub use lightwsp_model::harness::CaseOutcome;
pub use lightwsp_sim::{Completion, Machine, Scheme, SimConfig, SimStats};
pub use lightwsp_store::{
    code_digest, code_digest_from_env, digest_debug, digest_str, CacheStats, ResultStore, StoreKey,
};
pub use lightwsp_workloads::{Suite, WorkloadSpec};
pub use oracle::{
    fuzz_sweep, fuzz_sweep_cached, litmus_sweep, litmus_sweep_cached, model_mutant_kill_matrix,
    mutant_kill_matrix, mutant_kill_matrix_cached, run_case_cached, MutantKill, SweepReport,
};
pub use recovery::{
    audit_workload_crashes, audit_workload_crashes_cached, check_workload_recovery, AuditBudget,
};
pub use report::JsonWriter;
