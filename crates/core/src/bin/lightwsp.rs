//! `lightwsp` — command-line driver for the reproduction.
//!
//! ```text
//! lightwsp list                         # the 39 workload entries
//! lightwsp run <workload> [scheme]      # run one workload, print stats
//! lightwsp compare <workload>           # all schemes side by side
//! lightwsp recover <workload> [cycles]  # crash-consistency check
//! lightwsp trace <workload> [n]         # region lifetimes through LRPO
//! lightwsp regions <workload>           # static region structure
//! ```

use lightwsp_core::recovery::check_workload_recovery;
use lightwsp_core::{Experiment, ExperimentOptions, Scheme};
use lightwsp_workloads::{all_workloads, workload};
use std::process::ExitCode;

const SCHEMES: [Scheme; 6] = [
    Scheme::Baseline,
    Scheme::LightWsp,
    Scheme::PspIdeal,
    Scheme::Capri,
    Scheme::Ppa,
    Scheme::Cwsp,
];

fn parse_scheme(s: &str) -> Option<Scheme> {
    SCHEMES
        .into_iter()
        .find(|x| x.name().eq_ignore_ascii_case(s))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lightwsp list\n  lightwsp run <workload> [scheme]\n  \
         lightwsp compare <workload>\n  lightwsp recover <workload> [failure-cycle...]\n  \
         lightwsp trace <workload> [n]\n  lightwsp regions <workload>\n\
         schemes: {}",
        SCHEMES.map(|s| s.name()).join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOptions::paper_default();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<14}{:<10}{:>9}{:>12}{:>8}",
                "name", "suite", "threads", "working-set", "store%"
            );
            for w in all_workloads() {
                println!(
                    "{:<14}{:<10}{:>9}{:>11}K{:>7.1}%",
                    w.name,
                    w.suite.name(),
                    w.threads,
                    w.working_set / 1024,
                    w.store_fraction() * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = workload(name) else {
                eprintln!("unknown workload '{name}' (try `lightwsp list`)");
                return ExitCode::FAILURE;
            };
            let scheme = match args.get(2) {
                None => Scheme::LightWsp,
                Some(s) => match parse_scheme(s) {
                    Some(s) => s,
                    None => return usage(),
                },
            };
            let mut exp = Experiment::new(opts);
            let (sd, r) = exp.slowdown_with_stats(&w, scheme);
            let s = &r.stats;
            println!(
                "{} under {} ({} threads):",
                w.name,
                scheme.name(),
                r.threads
            );
            println!("  slowdown vs baseline : {sd:.3}");
            println!(
                "  cycles / insts / IPC : {} / {} / {:.2}",
                s.cycles,
                s.insts,
                s.ipc()
            );
            println!(
                "  regions (committed)  : {} ({})",
                s.regions, s.regions_committed
            );
            println!("  insts/region         : {:.1}", s.insts_per_region());
            println!("  stores/region        : {:.1}", s.stores_per_region());
            println!(
                "  instrumentation      : {:.2}%",
                s.instrumentation_fraction() * 100.0
            );
            println!(
                "  persistence efficiency: {:.1}%",
                s.persistence_efficiency()
            );
            println!(
                "  stalls (sb/load/bdry/spin): {} / {} / {} / {}",
                s.stall_sb_full, s.stall_load_miss, s.stall_boundary_wait, s.stall_lock_spin
            );
            println!(
                "  WPQ occupancy mean/max: {:.1} / {} of {}",
                s.wpq_mean_occupancy,
                s.wpq_max_occupancy,
                exp.options().sim.mem.wpq_entries
            );
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = workload(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let mut exp = Experiment::new(opts);
            println!(
                "{:<12}{:>10}{:>10}{:>14}",
                "scheme", "slowdown", "IPC", "persist-eff"
            );
            for scheme in SCHEMES {
                let (sd, r) = exp.slowdown_with_stats(&w, scheme);
                let eff = if scheme.uses_persist_path() {
                    format!("{:.1}%", r.stats.persistence_efficiency())
                } else {
                    "-".into()
                };
                println!(
                    "{:<12}{:>10.3}{:>10.2}{:>14}",
                    scheme.name(),
                    sd,
                    r.stats.ipc(),
                    eff
                );
            }
            ExitCode::SUCCESS
        }
        Some("recover") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = workload(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let points: Vec<u64> = if args.len() > 2 {
                args[2..].iter().filter_map(|a| a.parse().ok()).collect()
            } else {
                (1..10).map(|i| i * 3_000).collect()
            };
            match check_workload_recovery(&w, &opts, &points) {
                Ok(rep) => {
                    println!(
                        "{name}: crash-consistent across {} failure(s); {} durable words \
                         compared; golden {} cycles, recovered {} cycles",
                        rep.failures, rep.words_compared, rep.golden_cycles, rep.recovery_cycles
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{name}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("regions") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = workload(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let exp = Experiment::new(opts.clone());
            let compiled = exp.compile(&w, Scheme::LightWsp);
            print!(
                "{}",
                lightwsp_compiler::regions::render_report(&compiled.program)
            );
            ExitCode::SUCCESS
        }
        Some("trace") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = workload(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let n: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(24);
            let exp = Experiment::new(opts.clone());
            let compiled = exp.compile(&w, Scheme::LightWsp);
            let mut cfg = opts.sim.clone();
            cfg.scheme = Scheme::LightWsp;
            cfg.num_cores = w.threads;
            cfg.trace_regions = n.max(256);
            let mut m =
                lightwsp_core::Machine::new(compiled.program, compiled.recipes, cfg, w.threads);
            m.run();
            print!("{}", m.region_trace().render(n));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
