//! Public crash-consistency testing API.
//!
//! Wraps [`lightwsp_sim::consistency`] for workload-level use: pick a
//! benchmark, pick failure points, and verify that power failure plus
//! the §IV-F recovery protocol reproduces the failure-free durable
//! state byte-for-byte.

use crate::experiment::{Experiment, ExperimentOptions};
use lightwsp_sim::consistency::{check_crash_consistency, ConsistencyError, ConsistencyReport};
use lightwsp_sim::Scheme;
use lightwsp_workloads::WorkloadSpec;

/// Runs the crash-consistency oracle on `spec` with failures injected
/// at the given cycles.
///
/// # Errors
///
/// Returns the underlying [`ConsistencyError`] if the recovered durable
/// state diverges from the golden run or a run fails to complete.
pub fn check_workload_recovery(
    spec: &WorkloadSpec,
    opts: &ExperimentOptions,
    failure_cycles: &[u64],
) -> Result<ConsistencyReport, ConsistencyError> {
    let exp = Experiment::new(opts.clone());
    let compiled = exp.compile(spec, Scheme::LightWsp);
    let mut cfg = opts.sim.clone();
    cfg.scheme = Scheme::LightWsp;
    let threads = opts.threads.unwrap_or(spec.threads);
    cfg.num_cores = threads;
    check_crash_consistency(&compiled, &cfg, threads, failure_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_workloads::workload;

    #[test]
    fn single_threaded_workload_recovers() {
        let w = workload("hmmer").unwrap();
        let opts = ExperimentOptions::quick();
        let report = check_workload_recovery(&w, &opts, &[2_000, 9_000]).unwrap();
        assert!(report.words_compared > 100);
    }

    #[test]
    fn multithreaded_workload_recovers() {
        let mut w = workload("vacation").unwrap();
        w.threads = 4;
        let mut opts = ExperimentOptions::quick();
        opts.insts_per_thread = 6_000;
        let report = check_workload_recovery(&w, &opts, &[1_500]).unwrap();
        assert!(report.failures <= 1);
    }
}
