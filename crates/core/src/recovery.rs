//! Public crash-consistency testing and recovery-audit API.
//!
//! Two layers, both workload-level (pick a benchmark, pick failure
//! points, no simulator plumbing):
//!
//! * [`check_workload_recovery`] wraps the end-to-end oracle of
//!   [`lightwsp_sim::consistency`]: power failure plus the §IV-F
//!   recovery protocol must reproduce the failure-free durable state
//!   byte-for-byte.
//! * [`audit_workload_crashes`] wraps the step-by-step auditor of
//!   [`lightwsp_sim::crash`]: a [`CrashInjector`] sweeps derived and
//!   seeded crash points and asserts every named invariant of
//!   `RECOVERY.md` (gate-flush, gate-discard, resolution-exact, …)
//!   against the captured resolution, fanning points across a
//!   [`Campaign`] worker pool. `cargo run -p lightwsp-bench --bin
//!   crash_audit` drives it over the full workload×scheme matrix.

use crate::cache::{digest_debug, memo_record, CrashCellRecord};
use crate::campaign::Campaign;
use crate::experiment::{Experiment, ExperimentOptions};
use lightwsp_sim::consistency::{
    check_crash_consistency, golden_run, ConsistencyError, ConsistencyReport,
};
use lightwsp_sim::{CrashAuditReport, CrashInjector, CrashPoint, Scheme, SimConfig};
use lightwsp_store::{ResultStore, StoreKey};
use lightwsp_workloads::WorkloadSpec;

/// Runs the crash-consistency oracle on `spec` with failures injected
/// at the given cycles.
///
/// # Errors
///
/// Returns the underlying [`ConsistencyError`] if the recovered durable
/// state diverges from the golden run or a run fails to complete.
pub fn check_workload_recovery(
    spec: &WorkloadSpec,
    opts: &ExperimentOptions,
    failure_cycles: &[u64],
) -> Result<ConsistencyReport, ConsistencyError> {
    let exp = Experiment::new(opts.clone());
    let compiled = exp.compile(spec, Scheme::LightWsp);
    let mut cfg = opts.sim.clone();
    cfg.scheme = Scheme::LightWsp;
    let threads = opts.threads.unwrap_or(spec.threads);
    cfg.num_cores = threads;
    check_crash_consistency(&compiled, &cfg, threads, failure_cycles)
}

/// How many crash points [`audit_workload_crashes`] sweeps.
#[derive(Clone, Copy, Debug)]
pub struct AuditBudget {
    /// Seed for the pseudo-random point stream.
    pub seed: u64,
    /// Number of seeded (uniform over the run) crash points.
    pub seeded: usize,
    /// Cap on derived points *per mechanism window* (mid-region,
    /// boundary-broadcast, mc-skew, between-acks, mid-wpq-drain).
    pub derived_per_kind: usize,
}

impl AuditBudget {
    /// The `crash_audit` binary's full-mode budget: 100 seeded points
    /// plus up to 5×16 derived points per workload×scheme.
    pub fn full() -> AuditBudget {
        AuditBudget {
            seed: 0x11A5_0001,
            seeded: 100,
            derived_per_kind: 16,
        }
    }

    /// A small fixed-seed budget for CI and `--quick` runs.
    pub fn quick() -> AuditBudget {
        AuditBudget {
            seed: 0x11A5_0001,
            seeded: 8,
            derived_per_kind: 3,
        }
    }
}

/// Sweeps crash points over `spec` under `cfg` and audits the recovery
/// contract at each one, fanning points across `campaign`'s workers.
///
/// `cfg` carries the scheme and memory system (e.g. a 4-MC NUMA layout
/// or a disabled-LRPO ablation); its core count is overridden by the
/// workload's thread count. The workload is compiled once, the golden
/// run executes once, and each crash point then replays, cuts power,
/// checks the structural invariants, and resumes to completion.
///
/// # Errors
///
/// Returns a [`ConsistencyError`] if the golden (failure-free) run
/// itself cannot complete; invariant violations are *reported*, not
/// errors.
pub fn audit_workload_crashes(
    spec: &WorkloadSpec,
    opts: &ExperimentOptions,
    cfg: &SimConfig,
    budget: &AuditBudget,
    campaign: &Campaign,
) -> Result<CrashAuditReport, ConsistencyError> {
    let exp = Experiment::new(opts.clone());
    let compiled = exp.compile(spec, cfg.scheme);
    let mut cfg = cfg.clone();
    let threads = opts.threads.unwrap_or(spec.threads);
    cfg.num_cores = threads;
    let injector = CrashInjector::new(&compiled, cfg.clone(), threads);
    let (mut points, horizon) = injector.derived_points(budget.derived_per_kind);
    points.extend(injector.seeded_points(budget.seed, budget.seeded, horizon));
    let points = CrashInjector::prepare_points(&points);
    let (golden, golden_cycles) = golden_run(&compiled, &cfg, threads)?;
    // Contiguous sorted chunks, one per worker: each chunk's sweeper
    // advances its own mainline monotonically (fork mode), and merging
    // in chunk order reproduces the serial sweep's report bit-for-bit
    // regardless of the worker count.
    let chunk_len = points.len().div_ceil(campaign.workers().max(1)).max(1);
    let chunks: Vec<&[CrashPoint]> = points.chunks(chunk_len).collect();
    let partials: Vec<CrashAuditReport> = campaign.map_parallel(&chunks, |c: &&[CrashPoint], _| {
        injector.audit_chunk(&golden, c)
    });
    let mut report = CrashAuditReport {
        golden_cycles,
        ..CrashAuditReport::default()
    };
    for part in &partials {
        report.merge(part);
    }
    Ok(report)
}

/// Store-cached [`audit_workload_crashes`]: serves the cell from
/// `store` when a record exists for the same workload, scheme `label`,
/// configuration digest (every audit input: workload spec, experiment
/// options, simulator config, budget) and code digest; otherwise runs
/// the audit and records it. The boolean is `true` on a cache hit.
///
/// # Errors
///
/// Propagates [`ConsistencyError`] from the golden run; errors are
/// never cached.
pub fn audit_workload_crashes_cached(
    store: Option<&ResultStore>,
    label: &str,
    spec: &WorkloadSpec,
    opts: &ExperimentOptions,
    cfg: &SimConfig,
    budget: &AuditBudget,
    campaign: &Campaign,
) -> Result<(CrashCellRecord, bool), ConsistencyError> {
    let key = StoreKey::new(
        "crashcell",
        spec.name,
        label,
        digest_debug(&(spec, opts, cfg, budget)),
        0,
        store.map_or(0, ResultStore::code),
    );
    memo_record(
        store,
        &key,
        CrashCellRecord::decode,
        CrashCellRecord::encode,
        || audit_workload_crashes(spec, opts, cfg, budget, campaign).map(|r| (&r).into()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwsp_workloads::workload;

    #[test]
    fn single_threaded_workload_recovers() {
        let w = workload("hmmer").unwrap();
        let opts = ExperimentOptions::quick();
        let report = check_workload_recovery(&w, &opts, &[2_000, 9_000]).unwrap();
        assert!(report.words_compared > 100);
    }

    #[test]
    fn multithreaded_workload_recovers() {
        let mut w = workload("vacation").unwrap();
        w.threads = 4;
        let mut opts = ExperimentOptions::quick();
        opts.insts_per_thread = 6_000;
        let report = check_workload_recovery(&w, &opts, &[1_500]).unwrap();
        assert!(report.failures <= 1);
    }

    #[test]
    fn quick_audit_is_clean() {
        let w = workload("hmmer").unwrap();
        let opts = ExperimentOptions::quick();
        let mut cfg = opts.sim.clone();
        cfg.scheme = Scheme::LightWsp;
        let campaign = Campaign::with_workers(2);
        let report =
            audit_workload_crashes(&w, &opts, &cfg, &AuditBudget::quick(), &campaign).unwrap();
        assert!(report.audited > 0, "no point interrupted the run");
        assert!(
            report.violations.is_empty(),
            "recovery contract violated: {:?}",
            report.violations
        );
    }
}
